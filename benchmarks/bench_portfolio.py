"""Ordering-portfolio economics: cold race vs warm order-cache hit.

The portfolio's claim is asymmetric: the first check of a design pays
for K racing workers, and every later check of the same design skips
the race entirely because the winning order is remembered per design
digest in ``.hsis-orders/``.  This bench runs both paths on a gallery
design and records the cold race time, the warm (order-cache-hit)
time, and the resulting speedup for ``compare.py`` to gate against
``benchmarks/baseline.json``.  The acceptance bar — the warm path hit
the cache and was measurably faster than the cold race — is asserted
here outright, not just recorded.
"""

import time

from repro.models import get_spec
from repro.ordering_portfolio import OrderCache, run_portfolio_check
from repro.perf import EngineStats

#: Candidate orders raced on the cold path.
PORTFOLIO_K = 4
#: Warm repeats averaged to steady the cache-hit timing.
WARM_REPEATS = 3


def test_cold_race_vs_warm_order_cache(tmp_path, results_collector):
    spec = get_spec("traffic")
    flat = spec.flat()
    pif = spec.pif
    cache = OrderCache(str(tmp_path / "orders"))

    start = time.perf_counter()
    cold, cold_prov = run_portfolio_check(
        flat, pif.ctl_props, pif.fairness, k=PORTFOLIO_K, cache=cache,
    )
    cold_s = time.perf_counter() - start
    assert cold_prov["source"] == "race"
    assert not cold_prov["cache_hit"]

    warm_stats = EngineStats()
    start = time.perf_counter()
    for _ in range(WARM_REPEATS):
        warm, warm_prov = run_portfolio_check(
            flat, pif.ctl_props, pif.fairness, k=PORTFOLIO_K, cache=cache,
            stats=warm_stats,
        )
    warm_s = (time.perf_counter() - start) / WARM_REPEATS

    # The acceptance bar: every repeat skipped the race on an order-cache
    # hit and the warm path is measurably faster than the cold race.
    assert warm_prov["source"] == "cache" and warm_prov["cache_hit"]
    assert warm_stats.counters["portfolio_cache_hits"] == WARM_REPEATS
    assert "portfolio_races" not in warm_stats.counters
    assert [(v.name, v.holds) for v in warm] == [
        (v.name, v.holds) for v in cold
    ]
    assert warm_s < cold_s, (
        f"warm order-cache path ({warm_s * 1e3:.1f}ms) not faster than "
        f"cold race ({cold_s * 1e3:.1f}ms)"
    )

    results_collector(
        "portfolio",
        "race_vs_warm",
        {
            "design": spec.name,
            "candidates": cold_prov["candidates"],
            "cold_s": round(cold_s, 3),
            "warm_s": round(warm_s, 3),
            "speedup_x": round(cold_s / warm_s, 1),
        },
    )
