"""Ablation E: variable ordering for interacting FSMs (paper footnote 1).

HSIS's variable order comes from the structure of the interacting FSM
network (Aziz-Tasiran-Brayton, DAC 1994): latches of communicating
machines are placed close together and present/next bits interleaved.
This bench compares the affinity heuristic against naive first-use
("declared") order on the designs where communication structure matters,
reporting transition-relation size and reachability time.
"""

import pytest

from repro.models import gigamax, mdlc, scheduler
from repro.network import SymbolicFsm

CASES = {
    "gigamax": lambda: gigamax.spec(3),
    "scheduler(n=10)": lambda: scheduler.spec(10),
    "2mdlc(w=4)": lambda: mdlc.spec(width=4),
}

ORDERS = ("affinity", "declared")


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("order", ORDERS)
def test_order_effect(benchmark, case, order, results_collector):
    spec = CASES[case]()
    flat = spec.flat()

    def run():
        fsm = SymbolicFsm(flat, order_method=order)
        fsm.build_transition()
        reach = fsm.reachable()
        return fsm, reach

    fsm, reach = benchmark.pedantic(run, rounds=1, iterations=1)
    results_collector("ordering", f"{case}/{order}", {
        "t_nodes": fsm.bdd.size(fsm.trans),
        "reached_nodes": fsm.bdd.size(reach.reached),
        "states": fsm.count_states(reach.reached),
        "seconds": benchmark.stats["mean"],
    })


def test_orders_agree_on_states():
    """Sanity: ordering cannot change the reachable state count."""
    spec = gigamax.spec(2)
    flat = spec.flat()
    counts = set()
    for order in ORDERS:
        fsm = SymbolicFsm(flat, order_method=order)
        fsm.build_transition()
        counts.add(fsm.count_states(fsm.reachable().reached))
    assert len(counts) == 1
