"""The paper's Table 1 (DAC 1994), for paper-vs-measured comparison.

Times are seconds on a DECsystem 5900/260 with 440MB of memory, running
the original C implementation; our measurements come from a pure-Python
reimplementation, so only the *shape* (which designs are big/slow, rough
ratios) is expected to transfer.
"""

PAPER_TABLE1 = {
    "philos": {
        "verilog_lines": 120, "blifmv_lines": 549, "read_s": 0.0,
        "states": 18, "lc_props": 2, "lc_s": 0.1, "ctl_props": 2, "mc_s": 0.1,
    },
    "ping pong": {
        "verilog_lines": 69, "blifmv_lines": 163, "read_s": 0.1,
        "states": 3, "lc_props": 6, "lc_s": 0.0, "ctl_props": 6, "mc_s": 0.0,
    },
    "gigamax": {
        "verilog_lines": 269, "blifmv_lines": 1650, "read_s": 4.2,
        "states": 630, "lc_props": 1, "lc_s": 3.1, "ctl_props": 9, "mc_s": 5.3,
    },
    "scheduler": {
        "verilog_lines": 207, "blifmv_lines": 909, "read_s": 3.7,
        "states": 2706604, "lc_props": 2, "lc_s": 8.4, "ctl_props": 1,
        "mc_s": 4.3,
    },
    "dcnew": {
        "verilog_lines": 325, "blifmv_lines": 2618, "read_s": 5.3,
        "states": 213841, "lc_props": 1, "lc_s": 0.3, "ctl_props": 7,
        "mc_s": 1.8,
    },
    "2mdlc": {
        "verilog_lines": 355, "blifmv_lines": 18498, "read_s": 105.9,
        "states": 65958, "lc_props": 1, "lc_s": 21.5, "ctl_props": 1,
        "mc_s": 521.4,
    },
}

COLUMNS = [
    "verilog_lines", "blifmv_lines", "read_s", "states",
    "lc_props", "lc_s", "ctl_props", "mc_s",
]
