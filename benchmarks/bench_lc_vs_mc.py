"""Ablation D: language containment vs CTL model checking (paper §5.2).

The paper's experience: "it appears that language containment is faster
in general.  However, CTL model checking is more efficient for
invariance properties, since we have optimized the model checker with
respect to these properties."  This bench states the same safety
property both ways on each Table-1 design and times the two engines.
"""

import pytest

from repro.automata import Automaton
from repro.ctl import ModelChecker, parse_ctl
from repro.lc import check_containment
from repro.models import dcnew, gigamax, philos, pingpong
from repro.network import SymbolicFsm
from repro.pif import formula_to_guard

# design -> the invariance body checked both ways
CASES = {
    "philos": (philos.spec, {"n": 2}, "!(phil0=eating & phil1=eating)"),
    "pingpong": (pingpong.spec, {}, "!(ping_now=1 & pong_now=1)"),
    "gigamax": (gigamax.spec, {"n": 3}, "!(cache0=own & cache1=own)"),
    "dcnew": (dcnew.spec, {"n": 3, "width": 4},
              "!(node0=master & node1=master)"),
}


def invariance_automaton(body: str) -> Automaton:
    good = formula_to_guard(parse_ctl(body))
    aut = Automaton(name="inv", states=["A", "B"], initial=["A"])
    aut.add_edge("A", "A", good)
    aut.add_edge("A", "B", ~good)
    aut.add_edge("B", "B")
    aut.accept_invariance(["A"])
    return aut


@pytest.mark.parametrize("case", sorted(CASES))
def test_mc_invariance(benchmark, case, results_collector):
    builder, kwargs, body = CASES[case]
    spec = builder(**kwargs)
    flat = spec.flat()

    def run():
        fsm = SymbolicFsm(flat)
        fsm.build_transition()
        return ModelChecker(fsm).check(f"AG ({body})")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.holds
    results_collector("lc_vs_mc", f"{case}/mc", {
        "seconds": benchmark.stats["mean"],
    })


@pytest.mark.parametrize("case", sorted(CASES))
def test_lc_invariance(benchmark, case, results_collector):
    builder, kwargs, body = CASES[case]
    spec = builder(**kwargs)
    flat = spec.flat()
    automaton = invariance_automaton(body)

    def run():
        return check_containment(SymbolicFsm(flat), automaton)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.holds
    results_collector("lc_vs_mc", f"{case}/lc", {
        "seconds": benchmark.stats["mean"],
    })
