#!/usr/bin/env python
"""Regression differ for benchmark ``results.json`` payloads.

Compares two result files (``{experiment: {case: {column: value}}}``, as
written by ``benchmarks/conftest.py``) and reports per-column changes:

* **timing columns** (``*_s``, ``seconds``) are tolerance-gated: a value
  is a regression only when it exceeds ``baseline * (1 + tolerance)``;
  improvements are reported but never fail.  Rate columns (``*per_s``,
  higher is better) are gated in the opposite direction.
* **paper_*** columns are transcribed constants and are skipped.
* **node-count columns** (``nodes``, ``*_nodes``) are lower-is-better
  and tolerance-gated like timing; unlike other counters they stay
  fatal under ``--lax-counters``.
* **other numeric columns** (node counts, iterations, cache hit rates)
  come from deterministic pure-Python runs, so any change is reported;
  by default a change fails the comparison (use ``--lax-counters`` to
  make them informational).
* cases or experiments present in the baseline but missing from the
  current payload are failures; brand-new cases are informational.

Exit status: 0 — no regressions; 1 — regressions found; 2 — bad usage
or unreadable input.

Examples::

    python benchmarks/compare.py baseline.json results.json
    python benchmarks/compare.py a.json b.json --tolerance 0.5 \
        --tolerance table1=1.0
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

DEFAULT_TOLERANCE = 0.25  # 25% — generous; CI boxes are noisy.


def is_timing_column(name: str) -> bool:
    return (name.endswith("_s") or name == "seconds") and not is_rate_column(name)


def is_rate_column(name: str) -> bool:
    return name.endswith("per_s")


def is_node_column(name: str) -> bool:
    """Node-count columns (``*_nodes``, ``peak_nodes``...): lower is better.

    They come from deterministic runs but legitimately shift whenever the
    kernel's GC or reordering schedule changes, so they are
    tolerance-gated like timing rather than compared exactly — and they
    stay *fatal* under ``--lax-counters``: a peak-node blow-up is exactly
    the regression the kernel benchmarks exist to catch.
    """
    return name == "nodes" or name.endswith("_nodes")


def is_paper_column(name: str) -> bool:
    return name.startswith("paper_")


@dataclass
class Finding:
    """One observed difference between baseline and current."""

    experiment: str
    case: str
    column: str
    kind: str  # regression | improvement | drift | missing | new
    detail: str
    fatal: bool

    def format(self) -> str:
        marker = "FAIL" if self.fatal else "info"
        return (
            f"[{marker}] {self.experiment}/{self.case}"
            + (f".{self.column}" if self.column else "")
            + f": {self.kind} — {self.detail}"
        )


@dataclass
class Comparison:
    findings: List[Finding] = field(default_factory=list)
    cells: int = 0

    @property
    def failed(self) -> bool:
        return any(f.fatal for f in self.findings)

    def add(self, *args, **kwargs) -> None:
        self.findings.append(Finding(*args, **kwargs))


def _tolerance_for(
    experiment: str, default: float, overrides: Dict[str, float]
) -> float:
    return overrides.get(experiment, default)


def compare_results(
    baseline: Dict,
    current: Dict,
    tolerance: float = DEFAULT_TOLERANCE,
    per_experiment: Optional[Dict[str, float]] = None,
    lax_counters: bool = False,
) -> Comparison:
    """Diff two results payloads; see the module docstring for rules."""
    per_experiment = per_experiment or {}
    out = Comparison()
    for experiment, base_rows in sorted(baseline.items()):
        cur_rows = current.get(experiment)
        if cur_rows is None:
            out.add(experiment, "*", "", "missing",
                    "experiment absent from current payload", True)
            continue
        tol = _tolerance_for(experiment, tolerance, per_experiment)
        for case, base_cols in sorted(base_rows.items()):
            cur_cols = cur_rows.get(case)
            if cur_cols is None:
                out.add(experiment, case, "", "missing",
                        "case absent from current payload", True)
                continue
            for column, base_val in sorted(base_cols.items()):
                if is_paper_column(column):
                    continue
                if column not in cur_cols:
                    out.add(experiment, case, column, "missing",
                            "column absent from current payload", True)
                    continue
                cur_val = cur_cols[column]
                out.cells += 1
                _compare_cell(
                    out, experiment, case, column,
                    base_val, cur_val, tol, lax_counters,
                )
    for experiment, cur_rows in sorted(current.items()):
        base_rows = baseline.get(experiment)
        if base_rows is None:
            out.add(experiment, "*", "", "new",
                    "experiment not in baseline", False)
            continue
        for case in sorted(set(cur_rows) - set(base_rows)):
            out.add(experiment, case, "", "new", "case not in baseline", False)
    return out


def _compare_cell(
    out: Comparison,
    experiment: str,
    case: str,
    column: str,
    base_val,
    cur_val,
    tol: float,
    lax_counters: bool,
) -> None:
    if not isinstance(base_val, (int, float)) or isinstance(base_val, bool):
        if base_val != cur_val:
            out.add(experiment, case, column, "drift",
                    f"{base_val!r} -> {cur_val!r}", not lax_counters)
        return
    if not isinstance(cur_val, (int, float)):
        out.add(experiment, case, column, "drift",
                f"{base_val!r} -> non-numeric {cur_val!r}", True)
        return
    if is_timing_column(column):
        if base_val > 0 and cur_val > base_val * (1.0 + tol):
            out.add(
                experiment, case, column, "regression",
                f"{base_val:.4g}s -> {cur_val:.4g}s "
                f"(+{(cur_val / base_val - 1.0) * 100.0:.0f}%, "
                f"tolerance {tol * 100.0:.0f}%)",
                True,
            )
        elif base_val > 0 and cur_val < base_val / (1.0 + tol):
            out.add(
                experiment, case, column, "improvement",
                f"{base_val:.4g}s -> {cur_val:.4g}s", False,
            )
        return
    if is_rate_column(column):
        if base_val > 0 and cur_val < base_val / (1.0 + tol):
            out.add(
                experiment, case, column, "regression",
                f"{base_val:.4g}/s -> {cur_val:.4g}/s "
                f"(tolerance {tol * 100.0:.0f}%)",
                True,
            )
        elif base_val > 0 and cur_val > base_val * (1.0 + tol):
            out.add(
                experiment, case, column, "improvement",
                f"{base_val:.4g}/s -> {cur_val:.4g}/s", False,
            )
        return
    if is_node_column(column):
        if base_val > 0 and cur_val > base_val * (1.0 + tol):
            out.add(
                experiment, case, column, "regression",
                f"{base_val} -> {cur_val} nodes "
                f"(+{(cur_val / base_val - 1.0) * 100.0:.0f}%, "
                f"tolerance {tol * 100.0:.0f}%)",
                True,
            )
        elif base_val > 0 and cur_val < base_val / (1.0 + tol):
            out.add(
                experiment, case, column, "improvement",
                f"{base_val} -> {cur_val} nodes", False,
            )
        return
    # Deterministic counter (iterations, hit rates, state counts, ...).
    if base_val != cur_val:
        out.add(
            experiment, case, column, "drift",
            f"{base_val} -> {cur_val}", not lax_counters,
        )


def _parse_tolerances(
    values: List[str],
) -> Tuple[float, Dict[str, float]]:
    default = DEFAULT_TOLERANCE
    per_experiment: Dict[str, float] = {}
    for text in values:
        if "=" in text:
            name, _, raw = text.partition("=")
            per_experiment[name] = float(raw)
        else:
            default = float(text)
    return default, per_experiment


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="compare.py",
        description="Diff two benchmark results.json payloads.",
    )
    parser.add_argument("baseline", help="baseline results.json")
    parser.add_argument("current", help="current results.json")
    parser.add_argument(
        "--tolerance", action="append", default=[], metavar="VAL|EXP=VAL",
        help=(
            "relative tolerance for timing/rate columns, as a fraction "
            "(0.25 = 25%%, the default); EXPERIMENT=VAL sets a "
            "per-experiment override; may repeat"
        ),
    )
    parser.add_argument(
        "--lax-counters", action="store_true",
        help="report counter drift without failing on it",
    )
    parser.add_argument(
        "--only", action="append", default=[], metavar="EXPERIMENT",
        help=(
            "restrict the comparison to the named experiment(s); other "
            "experiments are ignored on both sides; may repeat"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="print only the final summary line",
    )
    opts = parser.parse_args(argv)
    try:
        with open(opts.baseline) as handle:
            baseline = json.load(handle)
        with open(opts.current) as handle:
            current = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if opts.only:
        wanted = set(opts.only)
        unknown = wanted - set(baseline) - set(current)
        if unknown:
            print(
                f"error: --only names unknown experiment(s): "
                f"{', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        baseline = {k: v for k, v in baseline.items() if k in wanted}
        current = {k: v for k, v in current.items() if k in wanted}
    try:
        default, per_experiment = _parse_tolerances(opts.tolerance)
    except ValueError as exc:
        print(f"error: bad --tolerance: {exc}", file=sys.stderr)
        return 2
    result = compare_results(
        baseline, current,
        tolerance=default,
        per_experiment=per_experiment,
        lax_counters=opts.lax_counters,
    )
    if not opts.quiet:
        for finding in result.findings:
            print(finding.format())
    regressions = sum(1 for f in result.findings if f.fatal)
    print(
        f"compare: {result.cells} cells, "
        f"{len(result.findings)} finding(s), {regressions} fatal"
    )
    return 1 if result.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
