"""Ablation F: native synchrony trees vs hand-encoded interleaving.

Paper §4: "Although interleaved (or asynchronous) behavior can be
modeled using synchronous c/s, it may be computationally advantageous to
directly model it.  Therefore, we have extended the c/s model to
directly support interleaved semantics."

This bench builds an N-process asynchronous token ring both ways —
(a) a plain synchronous model with an explicit ``$ND`` selector and a
hold-mux per latch (the manual encoding), and (b) the same processes
with a ``.synchrony (A ...)`` tree — checks that the two machines reach
the same states, and compares model sizes and build/reach times.
"""

import pytest

from repro.blifmv import flatten, parse
from repro.network import SymbolicFsm
from repro.verilog import compile_verilog


def manual_interleaving(n: int) -> str:
    """Synchronous Verilog with an explicit who-moves selector."""
    width = max(1, (n - 1).bit_length())
    regs = ", ".join(f"p{i}" for i in range(n))
    lines = [
        "module ring;",
        f"  reg {regs};",
        f"  wire [{width - 1}:0] sel;",
        f"  assign sel = $ND({', '.join(str(i) for i in range(n))});",
    ]
    for i in range(n):
        lines.append(f"  initial p{i} = {1 if i == 0 else 0};")
    for i in range(n):
        prev = (i - 1) % n
        lines += [
            "  always @(posedge clk)",
            f"    p{i} <= (sel == {i}) ? p{prev} : p{i};",
        ]
    lines.append("endmodule")
    return "\n".join(lines)


def synchrony_tree_model(n: int) -> str:
    """The same ring in BLIF-MV with an asynchronous synchrony tree."""
    parts = []
    for i in range(n):
        prev = (i - 1) % n
        parts.append(f"""\
.table p{prev} -> n{i}
- =p{prev}
.latch n{i} p{i}
.reset p{i}
{1 if i == 0 else 0}""")
    body = "\n".join(parts)
    leaves = " ".join(f"p{i}" for i in range(n))
    return f""".model ring
{body}
.synchrony (A {leaves})
.end
"""


N = 8


@pytest.fixture(scope="module")
def machines():
    manual = flatten(compile_verilog(manual_interleaving(N)))
    native = flatten(parse(synchrony_tree_model(N)))
    return manual, native


def test_same_reachable_states(machines):
    manual, native = machines
    counts = []
    for model in machines:
        fsm = SymbolicFsm(model)
        fsm.build_transition()
        counts.append(fsm.count_states(fsm.reachable().reached))
    assert counts[0] == counts[1]


@pytest.mark.parametrize("which", ["manual", "native"])
def test_async_modeling_cost(benchmark, which, machines, results_collector):
    manual, native = machines
    model = manual if which == "manual" else native

    def run():
        fsm = SymbolicFsm(model)
        fsm.build_transition()
        reach = fsm.reachable()
        return fsm, reach

    fsm, reach = benchmark.pedantic(run, rounds=3, iterations=1)
    results_collector("synchrony", f"ring(n={N})/{which}", {
        "seconds": benchmark.stats["mean"],
        "t_nodes": fsm.bdd.size(fsm.trans),
        "tables": len(model.tables),
        "states": fsm.count_states(reach.reached),
    })
