"""Figure 1 reproduction: the end-to-end HSIS flow as one measured unit.

Verilog -> (vl2mv) -> BLIF-MV -> flatten -> encode -> PIF -> model
checking + language containment -> bug report -> debugger.  The bench
measures each stage separately on the gigamax design so the cost profile
of the pipeline (the paper's Figure 1) is visible.
"""

import pytest

from repro.blifmv import flatten, parse, write
from repro.ctl import ModelChecker
from repro.debug import lc_counterexample
from repro.lc import check_containment
from repro.models import gigamax, philos
from repro.network import SymbolicFsm
from repro.pif import parse_pif
from repro.verilog import compile_verilog


@pytest.fixture(scope="module")
def sources():
    return gigamax.verilog(3), gigamax.pif(3)


def test_stage_vl2mv(benchmark, sources, results_collector):
    verilog_text, _ = sources
    design = benchmark(compile_verilog, verilog_text)
    assert design.root == "gigamax"
    results_collector("pipeline", "1:vl2mv", {"seconds": benchmark.stats["mean"]})


def test_stage_blifmv_roundtrip(benchmark, sources, results_collector):
    verilog_text, _ = sources
    text = write(compile_verilog(verilog_text))

    design = benchmark(parse, text)
    assert design.root_model()
    results_collector("pipeline", "2:parse_blifmv",
                      {"seconds": benchmark.stats["mean"]})


def test_stage_encode_and_tr(benchmark, sources, results_collector):
    verilog_text, _ = sources
    flat = flatten(compile_verilog(verilog_text))

    def encode():
        fsm = SymbolicFsm(flat)
        fsm.build_transition()
        return fsm

    fsm = benchmark.pedantic(encode, rounds=3, iterations=1)
    assert fsm.trans is not None
    results_collector("pipeline", "3:encode+tr",
                      {"seconds": benchmark.stats["mean"]})


def test_stage_pif(benchmark, sources, results_collector):
    _, pif_text = sources
    pif = benchmark(parse_pif, pif_text)
    assert pif.ctl_props
    results_collector("pipeline", "4:parse_pif",
                      {"seconds": benchmark.stats["mean"]})


def test_stage_verify(benchmark, sources, results_collector):
    verilog_text, pif_text = sources
    flat = flatten(compile_verilog(verilog_text))
    pif = parse_pif(pif_text)

    def verify():
        fsm = SymbolicFsm(flat)
        fsm.build_transition()
        reach = fsm.reachable()
        checker = ModelChecker(fsm, reached=reach.reached)
        mc = [checker.check(f).holds for _n, f in pif.ctl_props]
        lc_fsm = SymbolicFsm(flat)
        lc = check_containment(lc_fsm, pif.automata[0])
        return mc, lc

    mc, lc = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert all(mc) and lc.holds
    results_collector("pipeline", "5:verify",
                      {"seconds": benchmark.stats["mean"]})


def test_stage_debugger_on_failure(benchmark, results_collector):
    """Bug report + debugger stage, on a philosopher liveness failure."""
    spec = philos.spec(2)
    # the liveness property below fails (starvation is possible without
    # fairness), producing a debugger trace
    from repro.automata import Automaton, atom
    recur = Automaton(name="eats", states=["W", "E"], initial=["W"])
    recur.add_edge("W", "E", atom("phil0", "eating"))
    recur.add_edge("W", "W", ~atom("phil0", "eating"))
    recur.add_edge("E", "E", atom("phil0", "eating"))
    recur.add_edge("E", "W", ~atom("phil0", "eating"))
    recur.accept_recurrence([("W", "E"), ("E", "E")])
    result = check_containment(SymbolicFsm(spec.flat()), recur)
    assert not result.holds

    trace = benchmark.pedantic(
        lambda: lc_counterexample(result), rounds=3, iterations=1)
    assert trace.cycle
    results_collector("pipeline", "6:debugger",
                      {"seconds": benchmark.stats["mean"],
                       "trace_len": len(trace)})
