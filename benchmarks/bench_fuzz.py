"""Throughput of the differential fuzz harness.

Measures how many cross-check trials per second the oracle sustains —
the number that decides how long a CI sweep can afford to be — and
breaks one sweep down into its phases (generation, explicit oracle,
symbolic reachability, CTL, containment, kernel-op round).
"""

from repro.oracle import run_sweep
from repro.perf import EngineStats

TRIALS = 40


def test_fuzz_sweep_throughput(benchmark, results_collector):
    def run():
        stats = EngineStats()
        sweep = run_sweep(TRIALS, seed0=0, stats=stats)
        return sweep, stats

    sweep, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sweep.ok, sweep.summary()
    mean = benchmark.stats["mean"]
    row = {
        "seconds": mean,
        "trials_per_s": round(TRIALS / mean, 1),
    }
    for phase in ("fuzz.gen", "fuzz.bddops", "fuzz.oracle",
                  "fuzz.reach", "fuzz.mc", "fuzz.lc"):
        row[phase.split(".")[1]] = round(stats.phase_seconds(phase), 3)
    results_collector("fuzz_harness", f"sweep/{TRIALS}", row)
