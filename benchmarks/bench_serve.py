"""Serving-layer throughput: cold jobs vs cache hits.

The job server's economics rest on one claim — a repeated submission
is answered from the content-addressed cache orders of magnitude
faster than a cold verification — plus reasonable cold-job throughput
through the bounded queue.  This bench boots a real in-process
:class:`HsisServer`, measures jobs/s for a batch of distinct cold
submissions and for the same batch resubmitted (all cache hits), and
records both rates so ``compare.py`` gates the cached path against
``benchmarks/baseline.json``.  The ≥10x cached-speedup acceptance bar
is asserted here outright, not just recorded.
"""

import asyncio
import time

from repro.serve import HsisServer, ServeClient

#: Distinct cold submissions per measured batch (mixed check + fuzz).
COLD_JOBS = 8
#: Cache-hit submissions per measured batch (same requests, round-robin).
CACHED_JOBS = 64


def _batch(count):
    """A deterministic mixed batch of ``count`` distinct submissions."""
    designs = ["traffic", "elevator", "rrarbiter", "vending"]
    jobs = []
    for i in range(count):
        if i % 2 == 0:
            jobs.append(
                ("check", {"design": {"gallery": designs[(i // 2) % 4]},
                           "knobs": {"auto_reorder": 10_000 + i}})
            )
        else:
            jobs.append(("fuzz", {"knobs": {"trials": 1, "seed": i}}))
    return jobs


async def _submit_all(port, jobs):
    async def one(kind, kwargs):
        async with ServeClient(port=port) as client:
            return await client.submit(kind, **kwargs)

    return await asyncio.gather(*[one(kind, kw) for kind, kw in jobs])


async def _measure(tmp_dir):
    server = HsisServer(
        host="127.0.0.1", port=0, jobs=4, timeout=120.0,
        cache_dir=str(tmp_dir / "cache"),
    )
    await server.start()
    try:
        cold_jobs = _batch(COLD_JOBS)
        start = time.perf_counter()
        cold = await _submit_all(server.port, cold_jobs)
        cold_s = time.perf_counter() - start

        cached_jobs = [
            cold_jobs[i % COLD_JOBS] for i in range(CACHED_JOBS)
        ]
        start = time.perf_counter()
        cached = await _submit_all(server.port, cached_jobs)
        cached_s = time.perf_counter() - start
        return cold, cold_s, cached, cached_s, dict(server.stats.counters)
    finally:
        await server.stop()


def test_cold_vs_cached_throughput(tmp_path, results_collector):
    cold, cold_s, cached, cached_s, counters = asyncio.run(
        _measure(tmp_path)
    )
    assert all(r["ok"] and not r["cached"] for r in cold)
    assert all(r["ok"] and r["cached"] for r in cached)
    assert counters["serve.jobs"] == COLD_JOBS, "cache missed a repeat"

    cold_per_job = cold_s / COLD_JOBS
    cached_per_job = cached_s / CACHED_JOBS
    speedup = cold_per_job / cached_per_job
    # The acceptance bar: a repeat answer is >=10x faster than cold.
    assert speedup >= 10.0, (
        f"cached path only {speedup:.1f}x faster "
        f"({cold_per_job * 1e3:.1f}ms cold vs "
        f"{cached_per_job * 1e3:.1f}ms cached)"
    )

    results_collector(
        "serve",
        "mixed_batch",
        {
            "cold_jobs": COLD_JOBS,
            "cold_s": round(cold_s, 3),
            "cold_jobs_per_s": round(COLD_JOBS / cold_s, 2),
            "cached_jobs": CACHED_JOBS,
            "cached_jobs_per_s": round(CACHED_JOBS / cached_s, 2),
            "speedup_x": round(speedup, 1),
        },
    )
