"""Shared infrastructure for the benchmark harness.

Each bench module measures one experiment of DESIGN.md's index and
registers its rows with the collector below; at the end of the session
the reproduced tables are printed and written to
``benchmarks/results.json`` (EXPERIMENTS.md is curated from that file).
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

_RESULTS = {}


def record(experiment: str, key: str, values: dict) -> None:
    """Register (merge) one measured row for an experiment table."""
    _RESULTS.setdefault(experiment, {}).setdefault(key, {}).update(values)


def engine_columns(fsm) -> dict:
    """Kernel telemetry columns every bench table can merge in."""
    bdd = fsm.bdd
    return {
        "cache_hit": round(bdd.cache_hit_rate(), 3),
        "peak_nodes": bdd.peak_live_nodes,
        "gc_runs": bdd.gc_count,
        "cache_evict": bdd.cache_evictions,
    }


@pytest.fixture(scope="session")
def results_collector():
    return record


def pytest_sessionfinish(session, exitstatus):
    if not _RESULTS:
        return
    # benchmarks/run.py redirects each concurrent session's rows to a
    # private file via HSIS_BENCH_RESULTS and merges them itself.
    path = os.environ.get("HSIS_BENCH_RESULTS") or os.path.join(
        os.path.dirname(__file__), "results.json"
    )
    # Merge with previous runs so partial bench invocations accumulate.
    previous = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                previous = json.load(handle)
        except (ValueError, OSError):
            previous = {}
    for experiment, rows in _RESULTS.items():
        for key, values in rows.items():
            previous.setdefault(experiment, {}).setdefault(key, {}).update(values)
    # Atomic write: an interrupted run must not truncate the history.
    from repro.parallel.atomic import atomic_write_json

    atomic_write_json(path, previous)

    out = session.config.get_terminal_writer()
    for experiment in sorted(_RESULTS):
        rows = _RESULTS[experiment]
        out.line("")
        out.sep("=", f"reproduced results: {experiment}")
        keys = sorted(rows)
        columns = sorted({c for row in rows.values() for c in row})
        header = f"{'case':<24}" + "".join(f"{c:>16}" for c in columns)
        out.line(header)
        for key in keys:
            row = rows[key]
            cells = "".join(
                f"{_fmt(row.get(c, '')):>16}" for c in columns
            )
            out.line(f"{key:<24}" + cells)
    out.line("")
    out.line(f"(rows merged into {path})")


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
