"""Table 1 reproduction: the six designs through the full HSIS pipeline.

For every design the paper reports: Verilog lines, BLIF-MV lines, time
to read the BLIF-MV (parse + build the transition-relation BDDs),
reached states, number of LC properties + total LC time, number of CTL
formulas + total model-checking time.  One pytest-benchmark per design
per phase regenerates the full row; the session summary prints the
reproduced table next to the paper's numbers (see EXPERIMENTS.md for the
shape discussion).

Absolute times are not comparable (pure Python vs 1994 C on a DEC 5900),
but the orderings — which design has the most states, which LC/MC runs
dominate — should match.
"""

import os

import pytest

from conftest import engine_columns
from paper_data import PAPER_TABLE1
from repro.ctl import ModelChecker
from repro.lc import check_containment
from repro.models import TABLE1, get_spec
from repro.network import SymbolicFsm

_SPECS = {}
_PREP = {}

# Kernel knobs, settable from the environment so the cache-limit /
# auto-GC ablations run against the same bench without code edits:
#   HSIS_CACHE_LIMIT=5000 HSIS_AUTO_GC=100000 pytest benchmarks/bench_table1.py
_CACHE_LIMIT = int(os.environ["HSIS_CACHE_LIMIT"]) if "HSIS_CACHE_LIMIT" in os.environ else None
_AUTO_GC = int(os.environ["HSIS_AUTO_GC"]) if "HSIS_AUTO_GC" in os.environ else None


def make_fsm(flat):
    return SymbolicFsm(flat, auto_gc=_AUTO_GC, cache_limit=_CACHE_LIMIT)


def spec_for(name):
    if name not in _SPECS:
        _SPECS[name] = get_spec(name)
    return _SPECS[name]


def prepared(name):
    """Built machine + reached states, shared by the mc/lc phases."""
    if name not in _PREP:
        spec = spec_for(name)
        fsm = make_fsm(spec.flat())
        fsm.build_transition(method="greedy")
        reach = fsm.reachable()
        _PREP[name] = (fsm, reach)
    return _PREP[name]


@pytest.mark.parametrize("name", TABLE1)
def test_read_design(benchmark, name, results_collector):
    """'read blif_mv' column: encode the network and build T(x, y)."""
    spec = spec_for(name)
    flat = spec.flat()

    def read():
        fsm = make_fsm(flat)
        fsm.build_transition(method="greedy")
        return fsm

    fsm = benchmark.pedantic(read, rounds=1, iterations=1)
    columns = {
        "vl_lines": spec.verilog_lines,
        "mv_lines": spec.blifmv_lines,
        "read_s": benchmark.stats["mean"],
        "paper_mv_lines": PAPER_TABLE1[name]["blifmv_lines"],
    }
    columns.update(engine_columns(fsm))
    results_collector("table1", name, columns)


@pytest.mark.parametrize("name", TABLE1)
def test_reached_states(benchmark, name, results_collector):
    """'# reached states' column."""
    fsm, _ = prepared(name)

    def reach():
        return fsm.reachable()

    result = benchmark.pedantic(reach, rounds=1, iterations=1)
    _PREP[name] = (fsm, result)
    columns = {
        "states": fsm.count_states(result.reached),
        "reach_iters": result.iterations,
        "paper_states": PAPER_TABLE1[name]["states"],
    }
    columns.update(engine_columns(fsm))
    results_collector("table1", name, columns)


@pytest.mark.parametrize("name", TABLE1)
def test_language_containment(benchmark, name, results_collector):
    """'# lc props' and 'time lc' columns: all automata properties."""
    spec = spec_for(name)

    def run_all():
        verdicts = []
        for automaton in spec.pif.automata:
            fsm = make_fsm(spec.flat())
            fairness = spec.pif.bind_fairness(fsm)
            result = check_containment(fsm, automaton, system_fairness=fairness)
            verdicts.append(result.holds)
        return verdicts

    verdicts = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(verdicts), f"{name}: an LC property failed"
    results_collector("table1", name, {
        "lc_props": len(spec.pif.automata),
        "lc_s": benchmark.stats["mean"],
        "paper_lc_s": PAPER_TABLE1[name]["lc_s"],
    })


@pytest.mark.parametrize("name", TABLE1)
def test_model_checking(benchmark, name, results_collector):
    """'# CTL formulas' and 'time mc' columns: all CTL properties."""
    spec = spec_for(name)
    fsm, reach = prepared(name)

    def run_all():
        checker = ModelChecker(
            fsm, fairness=spec.pif.bind_fairness(fsm), reached=reach.reached)
        return [checker.check(f).holds for _n, f in spec.pif.ctl_props]

    verdicts = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(verdicts), f"{name}: a CTL property failed"
    results_collector("table1", name, {
        "ctl_props": len(spec.pif.ctl_props),
        "mc_s": benchmark.stats["mean"],
        "paper_mc_s": PAPER_TABLE1[name]["mc_s"],
    })
