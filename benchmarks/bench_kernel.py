"""Kernel micro-benches: node economy on negation-heavy workloads.

Complemented edges exist to make negation free: CTL's ``not``/``->``
connectives, Streett edge-removal and containment products all negate
state sets constantly, and a kernel that stores ``f`` and ``~f`` as
disjoint subgraphs pays for every one of them twice.  These benches pin
that cost down with deterministic workloads and record the numbers the
complemented-edge kernel is supposed to move:

* ``peak_nodes`` / ``final_nodes`` — node economy (the headline),
* ``cache_hit`` and per-op hit rates — standardized ITE triples turn
  equivalent ``and``/``or``/``ite`` calls into one cache line,
* ``not_per_node`` style throughput columns for the O(1) negation path.

All node-count columns are deterministic, so ``compare.py`` gates them
as regressions (see ``is_node_column``), not as timing noise.
"""

import random
import time

import numpy as np

from repro.bdd import BDD
from repro.blifmv import flatten, parse
from repro.ctl import check_ctl, parse_ctl
from repro.models import get_spec, pingpong
from repro.network import SymbolicFsm
from repro.network.encode import encode

# ----------------------------------------------------------------------
# Workload builders
# ----------------------------------------------------------------------

N_VARS = 16
N_OPS = 140


def _random_pool(bdd: BDD, rng: random.Random, negation_heavy: bool):
    """Grow a deterministic random operation DAG over ``N_VARS`` inputs.

    The negation-heavy mix mirrors CTL evaluation (lots of ``not``,
    ``implies`` and ``diff``); the positive mix uses only monotone
    connectives as the control group.
    """
    pool = [bdd.var(j) for j in range(N_VARS)]
    if negation_heavy:
        ops = ("not", "not", "implies", "diff", "xnor", "and", "or")
    else:
        ops = ("and", "or", "and", "or", "ite")
    for _ in range(N_OPS):
        op = ops[rng.randrange(len(ops))]
        f = pool[rng.randrange(len(pool))]
        g = pool[rng.randrange(len(pool))]
        h = pool[rng.randrange(len(pool))]
        if op == "not":
            pool.append(bdd.not_(f))
        elif op == "implies":
            pool.append(bdd.implies(f, g))
        elif op == "diff":
            pool.append(bdd.diff(f, g))
        elif op == "xnor":
            pool.append(bdd.xnor(f, g))
        elif op == "and":
            pool.append(bdd.and_(f, g))
        elif op == "or":
            pool.append(bdd.or_(f, g))
        else:
            pool.append(bdd.ite(f, g, h))
    return pool


def _fresh_manager() -> BDD:
    bdd = BDD()
    for j in range(N_VARS):
        bdd.add_var(f"v{j}")
    return bdd


def _kernel_columns(bdd: BDD) -> dict:
    stats = bdd.stats()
    ite_like = [
        d for op, d in bdd.cache_stats().items()
        if op in ("ite", "and", "or", "xor") and d["lookups"]
    ]
    lookups = sum(d["lookups"] for d in ite_like)
    hits = sum(d["hits"] for d in ite_like)
    return {
        "peak_nodes": stats["peak_live_nodes"],
        "final_nodes": len(bdd),
        "cache_hit": round(bdd.cache_hit_rate(), 3),
        "ite_hit": round(hits / lookups, 3) if lookups else 0.0,
    }


# ----------------------------------------------------------------------
# Benches
# ----------------------------------------------------------------------


def test_negation_heavy_dag(benchmark, results_collector):
    """Random op DAG dominated by not/implies/diff (the CTL op mix)."""

    def run():
        bdd = _fresh_manager()
        _random_pool(bdd, random.Random(7), negation_heavy=True)
        return bdd

    bdd = benchmark.pedantic(run, rounds=3, iterations=1)
    row = {"seconds": benchmark.stats["mean"]}
    row.update(_kernel_columns(bdd))
    results_collector("kernel", "negation_dag", row)


def test_monotone_dag(benchmark, results_collector):
    """Control group: the same DAG shape with monotone connectives only."""

    def run():
        bdd = _fresh_manager()
        _random_pool(bdd, random.Random(7), negation_heavy=False)
        return bdd

    bdd = benchmark.pedantic(run, rounds=3, iterations=1)
    row = {"seconds": benchmark.stats["mean"]}
    row.update(_kernel_columns(bdd))
    results_collector("kernel", "monotone_dag", row)


def test_negation_throughput(benchmark, results_collector):
    """Raw not_ calls over a large function: must allocate nothing."""
    bdd = _fresh_manager()
    pool = _random_pool(bdd, random.Random(11), negation_heavy=False)
    f = pool[-1]
    live_before = len(bdd)
    reps = 20_000

    def run():
        g = f
        for _ in range(reps):
            g = bdd.not_(g)
        return g

    benchmark.pedantic(run, rounds=3, iterations=1)
    results_collector("kernel", "not_throughput", {
        "seconds": benchmark.stats["mean"],
        "not_per_s": round(reps / benchmark.stats["mean"], 0),
        "alloc_nodes": len(bdd) - live_before,
    })


def test_gc_sweep_throughput(benchmark, results_collector):
    """Vectorized mark/sweep over a ~120k-node heap of dead xor junk.

    Nothing is rooted, so the collector frees nearly the whole heap; the
    ``swept_per_s`` column is the flat-array store's headline win (the
    old per-node dict sweep ran an order of magnitude slower here).
    """
    meta = {}

    def setup():
        bdd = BDD()
        for j in range(24):
            bdd.add_var(f"s{j}")
        rng = random.Random(3)
        pool = [bdd.var(j) for j in range(24)]
        while len(bdd) < 120_000:
            f = pool[rng.randrange(len(pool))]
            g = pool[rng.randrange(len(pool))]
            pool.append(bdd.xor(f, g))
        meta["heap"] = len(bdd)
        return (bdd,), {}

    def run(bdd):
        meta["freed"] = bdd.gc()

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    results_collector("kernel", "gc_sweep", {
        "seconds": benchmark.stats["mean"],
        "swept_per_s": round(meta["heap"] / benchmark.stats["mean"], 0),
        "heap_nodes": meta["heap"],
    })


def test_eval_batch_throughput(benchmark, results_collector):
    """Vectorized lockstep evaluation of all 2^16 assignments at once."""
    bdd = _fresh_manager()
    pool = _random_pool(bdd, random.Random(11), negation_heavy=False)
    f = pool[-1]
    rows = ((np.arange(1 << N_VARS)[:, None] >> np.arange(N_VARS)) & 1).astype(bool)

    def run():
        return bdd.eval_batch(f, rows)

    got = benchmark.pedantic(run, rounds=3, iterations=1)
    # Spot-check against the scalar walker so the bench can't drift wrong.
    for a in (0, 1, 4097, (1 << N_VARS) - 1):
        env = {f"v{j}": bool((a >> j) & 1) for j in range(N_VARS)}
        assert bool(got[a]) == bdd.eval(f, env)
    results_collector("kernel", "eval_batch", {
        "seconds": benchmark.stats["mean"],
        "evals_per_s": round(rows.shape[0] / benchmark.stats["mean"], 0),
    })


COUNTER_N = """
.model counter
.mv s,n 16
.table s -> n
{rows}
.latch n s
.reset s
0
.end
"""


def _counter_model():
    rows = "\n".join(f"{i} {(i + 1) % 16}" for i in range(16))
    return flatten(parse(COUNTER_N.format(rows=rows)))


def test_ctl_negation_mc(benchmark, results_collector):
    """Negation-heavy CTL on a counter: nested ->/! over fixpoints."""
    formula = parse_ctl(
        "AG (!(s=3) -> !(EX (s=5 -> EX s=7)))"
    )

    def run():
        fsm = SymbolicFsm(_counter_model())
        fsm.build_transition()
        check_ctl(fsm, formula)
        return fsm

    fsm = benchmark.pedantic(run, rounds=3, iterations=1)
    row = {"seconds": benchmark.stats["mean"]}
    row.update(_kernel_columns(fsm.bdd))
    results_collector("kernel", "ctl_negation", row)


# ----------------------------------------------------------------------
# Frontier-batched apply: scalar-vs-batched construction rows
# ----------------------------------------------------------------------
#
# Two workloads from the batched-apply engine's target consumers:
# table-row conjunct construction (``encode``) and fused relational
# products (``and_exists_many``).  Each workload is measured once per
# ``batch_apply`` setting on otherwise identical inputs; the node
# columns are deterministic and *must* agree between the paired rows
# (``compare.py`` gates them, and the batched rows assert parity with a
# scalar rerun inline so a divergence fails the bench itself).


def _encode_workload(batch_apply: bool):
    flat = get_spec("gcd").flat()
    n_rows = sum(len(t.rows) for t in flat.tables)

    def run():
        return encode(flat, batch_apply=batch_apply)

    return flat, n_rows, run


def test_table_encode_scalar(benchmark, results_collector):
    """Table-row conjunct construction with the scalar apply path."""
    _flat, n_rows, run = _encode_workload(False)
    run()  # warm-up: lazy imports and allocator pools skew round one
    enc = benchmark.pedantic(run, rounds=3, iterations=1)
    results_collector("kernel", "table_encode_scalar", {
        "seconds": benchmark.stats["mean"],
        "rows_per_s": round(n_rows / benchmark.stats["mean"], 0),
        "final_nodes": len(enc.bdd),
    })


def test_table_encode_batched(benchmark, results_collector):
    """The same encode through the frontier-batched apply engine."""
    _flat, n_rows, run = _encode_workload(True)
    run()  # warm-up: lazy imports and allocator pools skew round one
    enc = benchmark.pedantic(run, rounds=3, iterations=1)
    # Construction-order independence: batched and scalar encodes build
    # the same canonical functions, hence the same node count.
    _f2, _n2, run_scalar = _encode_workload(False)
    assert len(run_scalar().bdd) == len(enc.bdd)
    results_collector("kernel", "table_encode_batched", {
        "seconds": benchmark.stats["mean"],
        "rows_per_s": round(n_rows / benchmark.stats["mean"], 0),
        "final_nodes": len(enc.bdd),
    })


ANDEX_VARS = 22
ANDEX_OPS = 300
ANDEX_REQS = 128


def _andex_workload(batch_apply: bool):
    """A fresh manager plus ``ANDEX_REQS`` relational-product requests.

    The request pool is grown with scalar connectives only (identical
    handles under either knob); ``and_exists_many`` then either runs
    the batched wave engine or loops the scalar recursion, which is
    exactly the knob under measurement.
    """
    bdd = BDD(batch_apply=batch_apply)
    for j in range(ANDEX_VARS):
        bdd.add_var(f"v{j}")
    rng = random.Random(11)
    pool = [bdd.var(j) for j in range(ANDEX_VARS)]
    ops = ("and", "or", "and", "or", "ite")
    for _ in range(ANDEX_OPS):
        op = ops[rng.randrange(len(ops))]
        f = pool[rng.randrange(len(pool))]
        g = pool[rng.randrange(len(pool))]
        h = pool[rng.randrange(len(pool))]
        if op == "and":
            pool.append(bdd.and_(f, g))
        elif op == "or":
            pool.append(bdd.or_(f, g))
        else:
            pool.append(bdd.ite(f, g, h))
    funcs = pool[-ANDEX_REQS:]
    cube = bdd.cube({f"v{j}": 1 for j in range(0, ANDEX_VARS, 2)})
    requests = [
        (funcs[i], funcs[(i * 7 + 3) % len(funcs)], cube)
        for i in range(ANDEX_REQS)
    ]
    return bdd, requests


def _andex_result_nodes(bdd: BDD, results) -> int:
    return sum(bdd.size(r) for r in results)


def test_andexists_scalar(benchmark, results_collector):
    """128 relational products through the scalar recursion."""
    meta = {}

    def setup():
        # A fresh manager per round: a warm computed cache would turn
        # later rounds into pure lookups and fake the throughput.
        bdd, requests = _andex_workload(False)
        meta["bdd"] = bdd
        return (bdd, requests), {}

    def run(bdd, requests):
        meta["results"] = bdd.and_exists_many(requests)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    results_collector("kernel", "andexists_scalar", {
        "seconds": benchmark.stats["mean"],
        "andex_per_s": round(ANDEX_REQS / benchmark.stats["mean"], 0),
        "result_nodes": _andex_result_nodes(meta["bdd"], meta["results"]),
    })


def test_andexists_batched(benchmark, results_collector):
    """The same 128 products as one frontier-batched wave.

    Inline acceptance gates: the batched results must match the scalar
    rerun node for node, and the wave engine must clear a 1.5x
    throughput margin over the scalar loop on identical inputs (both
    sides timed in this same process, so machine speed cancels out).
    """
    meta = {}

    def setup():
        bdd, requests = _andex_workload(True)
        meta["bdd"] = bdd
        return (bdd, requests), {}

    def run(bdd, requests):
        meta["results"] = bdd.and_exists_many(requests)

    benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    batched_nodes = _andex_result_nodes(meta["bdd"], meta["results"])

    scalar_seconds = []
    for _ in range(3):
        bdd, requests = _andex_workload(False)
        t0 = time.perf_counter()
        results = bdd.and_exists_many(requests)
        scalar_seconds.append(time.perf_counter() - t0)
    assert _andex_result_nodes(bdd, results) == batched_nodes
    speedup = min(scalar_seconds) / min(benchmark.stats["data"])
    assert speedup >= 1.5, (
        f"batched and-exists only {speedup:.2f}x over scalar"
    )
    results_collector("kernel", "andexists_batched", {
        "seconds": benchmark.stats["mean"],
        "andex_per_s": round(ANDEX_REQS / benchmark.stats["mean"], 0),
        "result_nodes": batched_nodes,
    })


def _invariance_automaton(body: str):
    from repro.automata import Automaton
    from repro.pif import formula_to_guard

    good = formula_to_guard(parse_ctl(body))
    aut = Automaton(name="inv", states=["A", "B"], initial=["A"])
    aut.add_edge("A", "A", good)
    aut.add_edge("A", "B", ~good)
    aut.add_edge("B", "B")
    aut.accept_invariance(["A"])
    return aut


def test_containment_product(benchmark, results_collector):
    """Language-containment product on a gallery design (edge-removal
    negates fair sets repeatedly)."""
    from repro.lc import check_containment

    spec = pingpong.spec()
    flat = spec.flat()
    automaton = _invariance_automaton("!(ping_now=1 & pong_now=1)")

    def run():
        fsm = SymbolicFsm(flat)
        result = check_containment(fsm, automaton)
        return fsm, result

    fsm, _result = benchmark.pedantic(run, rounds=3, iterations=1)
    row = {"seconds": benchmark.stats["mean"]}
    row.update(_kernel_columns(fsm.bdd))
    results_collector("kernel", "containment", row)
