"""Figure 2 reproduction: the invariance property, LC vs CTL.

Figure 2 of the paper shows the automaton checking "out1 and out2 are
never asserted at the same time"; §5.2 states the same property as the
CTL formula AG !(out1 & out2) and observes (item 3) that the model
checker is *faster for invariance properties* because of the dedicated
fast path, while language containment is faster in general.

This bench builds the two-writer bus from the figure's discussion and
measures the same property both ways, in passing and failing variants.
"""

import pytest

from repro import SymbolicFsm, compile_verilog, flatten
from repro.automata import Automaton, atom
from repro.ctl import ModelChecker, parse_ctl
from repro.lc import check_containment

GOOD = """
module bus;
  reg tok; initial tok = 0;
  wire out1, out2, pass;
  assign pass = $ND(0, 1);
  always @(posedge clk) tok <= pass ? !tok : tok;
  assign out1 = !tok;
  assign out2 = tok;
endmodule
"""

BAD = """
module bus;
  reg o1, o2; initial o1 = 0; initial o2 = 0;
  wire r1, r2;
  assign r1 = $ND(0, 1);
  assign r2 = $ND(0, 1);
  always @(posedge clk) o1 <= r1;
  always @(posedge clk) o2 <= r2;
  wire out1, out2;
  assign out1 = o1;
  assign out2 = o2;
endmodule
"""


def figure2_automaton():
    violation = atom("out1", "1") & atom("out2", "1")
    aut = Automaton(name="fig2", states=["A", "B"], initial=["A"])
    aut.add_edge("A", "A", ~violation)
    aut.add_edge("A", "B", violation)
    aut.add_edge("B", "B")
    aut.accept_invariance(["A"])  # the dotted box around state A
    return aut


FORMULA = "AG !(out1=1 & out2=1)"


@pytest.mark.parametrize("variant,source,expected", [
    ("holds", GOOD, True),
    ("fails", BAD, False),
], ids=["holds", "fails"])
def test_lc_figure2(benchmark, variant, source, expected, results_collector):
    model = flatten(compile_verilog(source))

    def run():
        return check_containment(SymbolicFsm(model), figure2_automaton())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.holds is expected
    results_collector("fig2_invariance", f"lc/{variant}", {
        "seconds": benchmark.stats["mean"],
        "verdict": "pass" if result.holds else "FAIL",
    })


@pytest.mark.parametrize("variant,source,expected", [
    ("holds", GOOD, True),
    ("fails", BAD, False),
], ids=["holds", "fails"])
def test_mc_figure2(benchmark, variant, source, expected, results_collector):
    model = flatten(compile_verilog(source))

    def run():
        fsm = SymbolicFsm(model)
        fsm.build_transition()
        return ModelChecker(fsm).check(FORMULA)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.holds is expected
    assert result.used_fast_path
    results_collector("fig2_invariance", f"mc/{variant}", {
        "seconds": benchmark.stats["mean"],
        "verdict": "pass" if result.holds else "FAIL",
    })
