"""Ablation A: early quantification schedules (paper §4, §1 item 5).

Building the product transition relation means conjoining many relation
BDDs and quantifying out the non-state variables.  The paper's claim:
scheduling quantification *early* keeps the peak intermediate BDD small
(their example: ~1600 relations, ~1500 variables, scheduled and built in
seconds).  This bench compares the three shipped schedulers on the
designs with the most conjuncts — scheduler and 2mdlc — reporting build
time and peak intermediate size.
"""

import pytest

from repro.models import mdlc, scheduler
from repro.network import SymbolicFsm

# Configurations where the monolithic baseline is slow but feasible —
# at scheduler n=8 the greedy/monolithic peak-size gap is already three
# orders of magnitude (118 vs ~164k nodes); larger n only times out the
# baseline without adding information.
CASES = {
    "scheduler(n=8)": lambda: scheduler.spec(8),
    "2mdlc(w=3)": lambda: mdlc.spec(width=3),
}

METHODS = ("greedy", "linear", "monolithic")


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("method", METHODS)
def test_build_transition(benchmark, case, method, results_collector):
    spec = CASES[case]()
    flat = spec.flat()

    def build():
        fsm = SymbolicFsm(flat)
        fsm.build_transition(method=method)
        return fsm

    fsm = benchmark.pedantic(build, rounds=1, iterations=1)
    assert fsm.quantify_result is not None
    results_collector("early_quantification", f"{case}/{method}", {
        "seconds": benchmark.stats["mean"],
        "peak_nodes": fsm.quantify_result.peak_size,
        "final_nodes": fsm.bdd.size(fsm.trans),
        "conjuncts": len(fsm.conjuncts),
    })


def test_schedulers_equivalent():
    """All schedules must produce the same relation (sanity anchor)."""
    spec = scheduler.spec(6)
    flat = spec.flat()
    images = set()
    for method in METHODS:
        fsm = SymbolicFsm(flat)
        fsm.build_transition(method=method)
        reach = fsm.reachable()
        images.add(fsm.count_states(reach.reached))
    assert len(images) == 1
