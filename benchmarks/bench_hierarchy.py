"""Shared-shape encoding economics: encode once, substitute N-1 times.

The hierarchy tentpole's claim (docs/hierarchy.md): on a design that
instantiates one module shape N times, the shape-aware encoder builds
the representative's conjunct BDDs once and produces every other
instance by variable substitution, so encode time stops scaling with
the *table* work per instance.  This bench times the full encode of a
hierarchical gallery design both ways at paper-scale N, asserts the
substitution counters and the reachability parity outright, and
records the timings for ``compare.py`` to gate against
``benchmarks/baseline.json``.
"""

import time

from repro.models import get_spec
from repro.network.fsm import SymbolicFsm

#: Replica count: large enough that per-instance table encoding
#: dominates and the substitution win is well clear of timer noise.
N = 12


def test_shared_shapes_beat_plain_flatten(results_collector):
    spec = get_spec("philos_hier", n=N)
    elab = spec.elaborate()
    flat = spec.flat()

    start = time.perf_counter()
    shared = SymbolicFsm(elab)
    shared_s = time.perf_counter() - start

    start = time.perf_counter()
    plain = SymbolicFsm(flat)
    plain_s = time.perf_counter() - start

    # The acceptance bar: both shapes (top + cell) table-encoded exactly
    # once, the other N-1 cells substituted, and the shared encode
    # measurably faster than encoding every instance from scratch.
    assert shared.network.shapes_encoded == 2
    assert shared.network.instances_substituted == N - 1
    assert shared_s < plain_s, (
        f"shared-shape encode ({shared_s * 1e3:.1f}ms) not faster than "
        f"plain flatten encode ({plain_s * 1e3:.1f}ms)"
    )

    reach_s = shared.reachable()
    reach_p = plain.reachable()
    assert shared.count_states(reach_s.reached) == \
        plain.count_states(reach_p.reached)

    results_collector(
        "hierarchy",
        "encode_shared_vs_flat",
        {
            "design": spec.name,
            "replicas": N,
            "shapes_encoded": shared.network.shapes_encoded,
            "substituted": shared.network.instances_substituted,
            "shared_s": round(shared_s, 3),
            "plain_s": round(plain_s, 3),
            "speedup_x": round(plain_s / shared_s, 1),
        },
    )
