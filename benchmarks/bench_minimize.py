"""Ablation C: don't-care BDD minimization (paper §1 item 3).

"Don't care information can be used to substantially improve the
performance of algorithms by minimizing the BDDs in intermediate
computations ... One source of don't cares comes from state
equivalences, such as bisimulation.  Initial experiments indicate that
significant reduction in BDD size can be achieved."

Measured here: transition-relation node counts before/after
reached-state restrict and bisimulation-representative restrict on
gigamax and dcnew, plus model checking with reached-state don't cares
enabled vs disabled.
"""

import pytest

from repro.ctl import ModelChecker
from repro.minimize import (
    bisimulation_partition,
    minimize_with_equivalence,
    minimize_with_reached,
    quotient_size,
)
from repro.models import dcnew, gigamax
from repro.network import SymbolicFsm

CASES = {
    "gigamax": lambda: gigamax.spec(3),
    "dcnew(w=4)": lambda: dcnew.spec(width=4),
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_reached_dc_minimization(benchmark, case, results_collector):
    spec = CASES[case]()
    fsm = SymbolicFsm(spec.flat())
    fsm.build_transition()
    reached = fsm.reachable().reached

    minimized, report = benchmark.pedantic(
        lambda: minimize_with_reached(fsm, reached), rounds=3, iterations=1)
    results_collector("minimize", f"{case}/reached-dc", {
        "t_nodes": report.original_nodes,
        "t_minimized": report.minimized_nodes,
        "reduction": report.reduction,
        "seconds": benchmark.stats["mean"],
    })


@pytest.mark.parametrize("case", sorted(CASES))
def test_bisimulation_dc_minimization(benchmark, case, results_collector):
    spec = CASES[case]()
    fsm = SymbolicFsm(spec.flat())
    fsm.build_transition()
    reached = fsm.reachable().reached
    checker = ModelChecker(fsm, reached=reached)
    observables = [checker.eval(f"{fsm.latches[0].name}={v}")
                   for v in fsm.latches[0].x.values[:2]]

    def run():
        partition = bisimulation_partition(fsm, observables, within=reached)
        return partition, minimize_with_equivalence(fsm, partition)

    partition, (minimized, report) = benchmark.pedantic(
        run, rounds=1, iterations=1)
    results_collector("minimize", f"{case}/bisim-dc", {
        "classes": quotient_size(partition),
        "t_nodes": report.original_nodes,
        "t_minimized": report.minimized_nodes,
        "reduction": report.reduction,
        "seconds": benchmark.stats["mean"],
    })


@pytest.mark.parametrize("use_dc", [False, True], ids=["dc-off", "dc-on"])
def test_mc_with_reached_dc(benchmark, use_dc, results_collector):
    """Model checking with reached-state don't cares on intermediate sets."""
    spec = gigamax.spec(3)
    flat = spec.flat()

    def run():
        fsm = SymbolicFsm(flat)
        fsm.build_transition()
        reached = fsm.reachable().reached
        checker = ModelChecker(fsm, use_dc=use_dc, reached=reached)
        return [checker.check(f).holds for _n, f in spec.pif.ctl_props]

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(verdicts)
    results_collector("minimize", f"gigamax/mc-{'dc' if use_dc else 'plain'}", {
        "seconds": benchmark.stats["mean"],
    })
