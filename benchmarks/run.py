#!/usr/bin/env python
"""Run the benchmark matrix, optionally fanned across worker processes.

Each ``bench_*.py`` file executes as its own pytest session (a fresh
interpreter, so sessions cannot distort each other's timings); with
``--jobs N`` up to N sessions run concurrently through
``repro.parallel``.  All measured rows are merged in sorted-file order
and written to ``results.json`` atomically, so an interrupted run never
truncates the accumulated history.

    python benchmarks/run.py                       # everything, serially
    python benchmarks/run.py --jobs 4              # whole matrix, 4 workers
    python benchmarks/run.py --jobs 2 bench_fuzz.py bench_ordering.py
"""

import argparse
import os
import sys

SUITE_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(SUITE_DIR), "src"))

from repro.parallel.bench import run_benchmarks  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", metavar="BENCH",
        help="bench files to run (default: every bench_*.py in the suite)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N bench sessions concurrently (default 1)",
    )
    parser.add_argument(
        "--suite", default=SUITE_DIR, metavar="DIR",
        help="directory holding the bench files (default: this directory)",
    )
    parser.add_argument(
        "--results", default=None, metavar="PATH",
        help="results file to accumulate into (default: SUITE/results.json)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore the accumulated history instead of merging into it",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-session deadline; an overrunning bench file is reaped",
    )
    opts = parser.parse_args(argv)
    files = None
    if opts.files:
        files = [
            path if os.path.isabs(path) else os.path.join(opts.suite, path)
            for path in opts.files
        ]
    report = run_benchmarks(
        files=files,
        suite_dir=opts.suite,
        jobs=opts.jobs,
        results_path=opts.results,
        fresh=opts.fresh,
        timeout=opts.timeout,
    )
    for outcome in report.outcomes:
        print(f"{outcome.file}: {outcome.status}")
        if outcome.detail:
            print(f"  {outcome.detail}")
    print(
        f"bench matrix: {len(report.outcomes)} session(s), "
        f"{sum(1 for o in report.outcomes if o.ok)} ok, "
        f"results -> {report.results_path}"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
