"""Ablation B: early failure detection (paper §5.4).

HSIS assumes verification runs mostly on *failing* properties and checks
for violations on reachability frontiers before the full fair-path
computation.  This bench seeds safety bugs of increasing depth into a
pipeline design and measures language containment with early failure
detection on vs off, plus the invariance fast path of the model checker
(technique 1 applied to CTL).
"""

import pytest

from repro import SymbolicFsm, compile_verilog, flatten
from repro.automata import Automaton, atom
from repro.ctl import ModelChecker
from repro.lc import check_containment


def pipeline_with_bug(depth: int) -> str:
    """A token pipeline that raises 'alarm' when the token reaches the
    last stage — a bug 'depth' reachability steps deep."""
    regs = ", ".join(f"st{i}" for i in range(depth + 1))
    lines = [
        "module pipe;",
        f"  reg {regs};",
        "  wire alarm;",
        "  initial st0 = 1;",
    ]
    for i in range(1, depth + 1):
        lines.append(f"  initial st{i} = 0;")
    lines.append("  always @(posedge clk) st0 <= 0;")
    for i in range(1, depth + 1):
        lines.append(f"  always @(posedge clk) st{i} <= st{i - 1};")
    lines.append(f"  assign alarm = st{depth};")
    lines.append("endmodule")
    return "\n".join(lines)


def no_alarm_automaton() -> Automaton:
    aut = Automaton(name="no_alarm", states=["A", "B"], initial=["A"])
    aut.add_edge("A", "A", ~atom("alarm", "1"))
    aut.add_edge("A", "B", atom("alarm", "1"))
    aut.add_edge("B", "B")
    aut.accept_invariance(["A"])
    return aut


DEPTHS = (4, 10, 16)


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize("early", [True, False], ids=["efd-on", "efd-off"])
def test_lc_early_failure(benchmark, depth, early, results_collector):
    model = flatten(compile_verilog(pipeline_with_bug(depth)))

    def run():
        return check_containment(
            SymbolicFsm(model), no_alarm_automaton(),
            early_fail=early, early_fail_interval=1)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.holds
    assert result.early_failure is early
    results_collector("early_failure", f"depth={depth}/{'on' if early else 'off'}", {
        "seconds": benchmark.stats["mean"],
        "found_early": result.early_failure,
    })


@pytest.mark.parametrize("depth", DEPTHS)
def test_mc_frontier_check(benchmark, depth, results_collector):
    """Technique 1 for model checking: the AG fast path stops at the
    first frontier containing a violation."""
    model = flatten(compile_verilog(pipeline_with_bug(depth)))

    def run():
        fsm = SymbolicFsm(model)
        fsm.build_transition()
        return ModelChecker(fsm).check("AG !(alarm=1)")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.holds
    assert result.used_fast_path
    assert result.counterexample_depth == depth
    results_collector("early_failure", f"depth={depth}/mc-fast-path", {
        "seconds": benchmark.stats["mean"],
        "cex_depth": result.counterexample_depth,
    })
