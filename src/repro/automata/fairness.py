"""Fairness constraints: the edge-Streett/edge-Rabin environment (paper §5.1).

HSIS distinguishes:

* **Negative fairness constraints** — behaviours satisfying them are
  removed.  The canonical one is the *negative state-subset* constraint:
  a run that eventually stays inside the subset forever is excluded
  (models "indefinite but finite delay").
* **Positive fairness constraints** — only behaviours satisfying them are
  kept, e.g. *positive fair edges* that must be taken infinitely often
  (Büchi on edges), and Streett pairs ``inf(E) -> inf(F)``.

The paper notes that edge-Streett (for the system/environment) combined
with edge-Rabin (for property acceptance, complemented into Streett) is
the most expressive environment for which language containment stays
polynomial; the next natural extension makes it NP-complete.

Everything normalizes to two lists consumed by the fair-cycle engine
(:mod:`repro.lc.faircycle`):

* ``buchi``  — edge sets that a fair run takes infinitely often,
* ``streett`` — pairs ``(E, F)`` meaning ``inf(E) -> inf(F)``.

Edge sets are BDDs over present-state *and* next-state variables; a
state set ``S(x)`` used as a Büchi condition is normalized to the edge
set of all transitions leaving ``S``-states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class BuchiState:
    """Positive constraint: visit ``states`` infinitely often."""

    states: int
    label: str = ""


@dataclass(frozen=True)
class BuchiEdge:
    """Positive constraint: take an edge of ``edges`` infinitely often."""

    edges: int
    label: str = ""


@dataclass(frozen=True)
class NegativeStateSet:
    """Negative constraint: runs staying in ``states`` forever are excluded.

    Equivalent to the Büchi condition "infinitely often outside".
    """

    states: int
    label: str = ""


@dataclass(frozen=True)
class StreettPair:
    """``inf(e) -> inf(f)`` over edge sets (edge-Streett environment)."""

    e: int
    f: int
    label: str = ""


@dataclass(frozen=True)
class RabinPair:
    """Acceptance pair: finitely many ``fin`` edges AND infinitely many
    ``inf`` edges.  A run is accepted if *some* pair holds (edge-Rabin)."""

    fin: int
    inf: int
    label: str = ""


@dataclass
class NormalizedFairness:
    """Engine-ready form: conjunction of Büchi and Streett conditions."""

    buchi: List[Tuple[int, str]] = field(default_factory=list)
    streett: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def trivial(self) -> bool:
        return not self.buchi and not self.streett

    def nodes(self):
        """Iterate every BDD node referenced by the conditions.

        Engines register these as GC roots: fairness constraints live for
        the whole run of a fair-cycle computation.
        """
        for node, _label in self.buchi:
            yield node
        for e, f, _label in self.streett:
            yield e
            yield f


class FairnessSpec:
    """A collection of fairness constraints on one machine."""

    def __init__(self, constraints: Sequence = ()):
        self.constraints: List = list(constraints)

    def add(self, constraint) -> "FairnessSpec":
        self.constraints.append(constraint)
        return self

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def nodes(self):
        """Every raw BDD handle held by the constraints.

        Engines that run GC/reorder safe points between receiving a spec
        and normalizing it must register these as roots first — the
        constraint dataclasses hold bare integer handles that a sweep
        would otherwise free and recycle.
        """
        for c in self.constraints:
            for attr in ("states", "edges", "e", "f", "fin", "inf"):
                node = getattr(c, attr, None)
                if node is not None:
                    yield node

    def normalize(self, bdd, true_node: int) -> NormalizedFairness:
        """Normalize all constraints to edge-level Büchi/Streett conditions.

        State sets become source-state edge predicates (the engine always
        intersects with the transition relation, so ``S(x)`` as an edge
        set means "an edge leaving an S-state").
        """
        out = NormalizedFairness()
        for i, c in enumerate(self.constraints):
            label = getattr(c, "label", "") or f"fair{i}"
            if isinstance(c, BuchiState):
                out.buchi.append((c.states, label))
            elif isinstance(c, BuchiEdge):
                out.buchi.append((c.edges, label))
            elif isinstance(c, NegativeStateSet):
                out.buchi.append((bdd.not_(c.states), label))
            elif isinstance(c, StreettPair):
                out.streett.append((c.e, c.f, label))
            elif isinstance(c, RabinPair):
                raise TypeError(
                    "RabinPair is a property acceptance condition, not a "
                    "system fairness constraint; complement it with "
                    "complement_rabin() first"
                )
            else:
                raise TypeError(f"unknown fairness constraint {c!r}")
        return out


def complement_rabin(pairs: Sequence[RabinPair]) -> List[StreettPair]:
    """Complement an edge-Rabin acceptance into edge-Streett constraints.

    A run violates ``exists pair: fin(F) and inf(I)`` iff for every pair
    ``inf(I) -> inf(F)``.  Language containment therefore reduces to a
    fair-cycle search under the system fairness plus these Streett pairs
    (paper §5.2/§5.3).
    """
    return [
        StreettPair(e=p.inf, f=p.fin, label=f"~{p.label}" if p.label else "~rabin")
        for p in pairs
    ]
