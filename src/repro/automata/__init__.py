"""Property automata and fairness constraints (the edge-Streett/edge-Rabin
environment of HSIS §5.1-5.2)."""

from repro.automata.automaton import (
    AttachedMonitor,
    Automaton,
    AutomatonError,
    Edge,
    GAnd,
    GAtom,
    GNot,
    GOr,
    GTrue,
    Guard,
    TRUE_GUARD,
    atom,
    attach,
)
from repro.automata.fairness import (
    BuchiEdge,
    BuchiState,
    FairnessSpec,
    NegativeStateSet,
    NormalizedFairness,
    RabinPair,
    StreettPair,
    complement_rabin,
)

__all__ = [
    "AttachedMonitor",
    "Automaton",
    "AutomatonError",
    "Edge",
    "GAnd",
    "GAtom",
    "GNot",
    "GOr",
    "GTrue",
    "Guard",
    "TRUE_GUARD",
    "atom",
    "attach",
    "BuchiEdge",
    "BuchiState",
    "FairnessSpec",
    "NegativeStateSet",
    "NormalizedFairness",
    "RabinPair",
    "StreettPair",
    "complement_rabin",
]
