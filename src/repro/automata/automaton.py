"""Property automata (edge-Rabin acceptors) for language containment.

A property is a deterministic, complete automaton whose edges are guarded
by predicates over system nets; acceptance is an edge-Rabin condition
(paper §5.2).  The classic invariance property of Figure 2 — "out1 and
out2 are never asserted together" — is the automaton::

    good --[!(out1=1 & out2=1)]--> good      (accepting: stay in good)
    good --[  out1=1 & out2=1 ]--> bad
    bad  --[ true ]--> bad

with acceptance "remain in ``good`` forever" (the dotted box of the
figure), i.e. the Rabin pair (fin = edges leaving/outside good,
inf = edges inside good).

Guards form a tiny boolean expression language over multi-valued atoms
``var in {values}``; they are compiled to BDDs against the system's
encoded network, so automata can watch latches *and* combinational nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.automata.fairness import RabinPair
from repro.bdd.mdd import MvVar


class AutomatonError(Exception):
    """Raised on ill-formed automata (bad states, nondeterminism, ...)."""


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------


class Guard:
    """Boolean expression over multi-valued atoms; compiled per-FSM."""

    def to_bdd(self, fsm) -> int:
        raise NotImplementedError

    def __and__(self, other: "Guard") -> "Guard":
        return GAnd((self, other))

    def __or__(self, other: "Guard") -> "Guard":
        return GOr((self, other))

    def __invert__(self) -> "Guard":
        return GNot(self)


@dataclass(frozen=True)
class GTrue(Guard):
    def to_bdd(self, fsm) -> int:
        return fsm.bdd.true

    def __repr__(self) -> str:
        return "true"


TRUE_GUARD = GTrue()


@dataclass(frozen=True)
class GAtom(Guard):
    """``var in values`` over a system net."""

    var: str
    values: Tuple[str, ...]

    def to_bdd(self, fsm) -> int:
        return fsm.var(self.var).literal(self.values)

    def __repr__(self) -> str:
        if len(self.values) == 1:
            return f"{self.var}={self.values[0]}"
        return f"{self.var}in{{{','.join(self.values)}}}"


@dataclass(frozen=True)
class GAnd(Guard):
    parts: Tuple[Guard, ...]

    def to_bdd(self, fsm) -> int:
        return fsm.bdd.conj(p.to_bdd(fsm) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class GOr(Guard):
    parts: Tuple[Guard, ...]

    def to_bdd(self, fsm) -> int:
        return fsm.bdd.disj(p.to_bdd(fsm) for p in self.parts)

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class GNot(Guard):
    part: Guard

    def to_bdd(self, fsm) -> int:
        return fsm.bdd.not_(self.part.to_bdd(fsm))

    def __repr__(self) -> str:
        return f"!{self.part!r}"


def atom(var: str, values) -> GAtom:
    """Guard atom ``var in values`` (single value or iterable)."""
    if isinstance(values, (str, int)):
        values = (str(values),)
    return GAtom(var, tuple(str(v) for v in values))


# ----------------------------------------------------------------------
# Automaton structure
# ----------------------------------------------------------------------


@dataclass
class Edge:
    """A guarded transition ``src --guard--> dst``."""

    src: str
    dst: str
    guard: Guard = TRUE_GUARD


EdgeKey = Tuple[str, str]


@dataclass
class Automaton:
    """A property automaton with edge-Rabin acceptance.

    ``rabin_pairs`` lists acceptance pairs as sets of ``(src, dst)`` state
    pairs: a run is accepted iff for some pair it takes ``fin`` edges
    finitely often and ``inf`` edges infinitely often.  Helper
    constructors cover the common shapes (invariance, recurrence).
    """

    name: str
    states: List[str]
    initial: List[str]
    edges: List[Edge] = field(default_factory=list)
    rabin_pairs: List[Tuple[FrozenSet[EdgeKey], FrozenSet[EdgeKey]]] = field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        state_set = set(self.states)
        if len(state_set) != len(self.states):
            raise AutomatonError(f"{self.name}: duplicate states")
        for s in self.initial:
            if s not in state_set:
                raise AutomatonError(f"{self.name}: unknown initial state {s!r}")
        for e in self.edges:
            if e.src not in state_set or e.dst not in state_set:
                raise AutomatonError(
                    f"{self.name}: edge {e.src}->{e.dst} uses unknown state"
                )

    # -- construction helpers ------------------------------------------

    def add_edge(self, src: str, dst: str, guard: Guard = TRUE_GUARD) -> "Automaton":
        if src not in self.states or dst not in self.states:
            raise AutomatonError(f"{self.name}: edge {src}->{dst} uses unknown state")
        self.edges.append(Edge(src, dst, guard))
        return self

    def edges_within(self, states: Iterable[str]) -> FrozenSet[EdgeKey]:
        """All (src, dst) pairs with both endpoints in ``states``."""
        inside = set(states)
        return frozenset(
            (e.src, e.dst) for e in self.edges if e.src in inside and e.dst in inside
        )

    def edges_leaving(self, states: Iterable[str]) -> FrozenSet[EdgeKey]:
        """All (src, dst) pairs not fully inside ``states``."""
        inside = set(states)
        return frozenset(
            (e.src, e.dst)
            for e in self.edges
            if not (e.src in inside and e.dst in inside)
        )

    def accept_invariance(self, good_states: Iterable[str]) -> "Automaton":
        """Acceptance "stay inside ``good_states`` forever" (Figure 2)."""
        good = list(good_states)
        self.rabin_pairs.append(
            (self.edges_leaving(good), self.edges_within(good))
        )
        return self

    def accept_recurrence(self, recur_edges: Iterable[EdgeKey]) -> "Automaton":
        """Acceptance "take ``recur_edges`` infinitely often" (Buchi)."""
        self.rabin_pairs.append((frozenset(), frozenset(recur_edges)))
        return self

    def accept_rabin(
        self, fin: Iterable[EdgeKey], inf: Iterable[EdgeKey]
    ) -> "Automaton":
        """Raw Rabin pair: finitely many ``fin``, infinitely many ``inf``."""
        self.rabin_pairs.append((frozenset(fin), frozenset(inf)))
        return self

    # -- semantic checks -------------------------------------------------

    def check_deterministic(self, fsm) -> List[str]:
        """Return messages for guard overlaps (HSIS requires determinism)."""
        problems = []
        by_src: Dict[str, List[Edge]] = {}
        for e in self.edges:
            by_src.setdefault(e.src, []).append(e)
        bdd = fsm.bdd
        for src, edges in by_src.items():
            for i, a in enumerate(edges):
                ga = a.guard.to_bdd(fsm)
                for b in edges[i + 1:]:
                    if a.dst == b.dst:
                        continue
                    if bdd.and_(ga, b.guard.to_bdd(fsm)) != bdd.false:
                        problems.append(
                            f"{self.name}: state {src}: guards to {a.dst} and "
                            f"{b.dst} overlap"
                        )
        if len(self.initial) > 1:
            problems.append(f"{self.name}: more than one initial state")
        return problems

    def check_complete(self, fsm) -> List[str]:
        """Return messages for states whose outgoing guards miss inputs."""
        problems = []
        bdd = fsm.bdd
        by_src: Dict[str, List[Edge]] = {s: [] for s in self.states}
        for e in self.edges:
            by_src[e.src].append(e)
        for src, edges in by_src.items():
            cover = bdd.disj(e.guard.to_bdd(fsm) for e in edges)
            # Completeness is relative to valid input encodings.
            space = bdd.true
            for e in edges:
                for v in _guard_vars(e.guard):
                    space = bdd.and_(space, fsm.var(v).domain_constraint)
            if bdd.diff(space, cover) != bdd.false:
                problems.append(f"{self.name}: state {src} is incomplete")
        return problems

    def completed(self, trap: str = "_trap") -> "Automaton":
        """Copy with a rejecting trap state catching unmatched inputs.

        Each state gets an else-edge to ``trap`` guarded by the negation
        of its guard disjunction; the trap self-loops and belongs to no
        accepting pair, so trapped runs are rejected.
        """
        if trap in self.states:
            raise AutomatonError(f"{self.name}: state {trap!r} already exists")
        out = Automaton(
            name=self.name,
            states=self.states + [trap],
            initial=list(self.initial),
            edges=list(self.edges),
            rabin_pairs=list(self.rabin_pairs),
        )
        by_src: Dict[str, List[Edge]] = {s: [] for s in self.states}
        for e in self.edges:
            by_src[e.src].append(e)
        for src, edges in by_src.items():
            if edges:
                cover = GOr(tuple(e.guard for e in edges))
                out.add_edge(src, trap, GNot(cover))
            else:
                out.add_edge(src, trap, TRUE_GUARD)
        out.add_edge(trap, trap, TRUE_GUARD)
        return out


def _guard_vars(guard: Guard) -> Set[str]:
    if isinstance(guard, GAtom):
        return {guard.var}
    if isinstance(guard, (GAnd, GOr)):
        out: Set[str] = set()
        for p in guard.parts:
            out |= _guard_vars(p)
        return out
    if isinstance(guard, GNot):
        return _guard_vars(guard.part)
    return set()


# ----------------------------------------------------------------------
# Attachment to a symbolic FSM (product machine construction)
# ----------------------------------------------------------------------


@dataclass
class AttachedMonitor:
    """An automaton woven into a :class:`~repro.network.fsm.SymbolicFsm`.

    Provides the symbolic edge sets the containment checker needs, plus
    decoding of the monitor state out of product-machine states.
    """

    automaton: Automaton
    fsm: object
    x: MvVar
    y: MvVar

    def state_bdd(self, states: Iterable[str]) -> int:
        return self.x.literal(list(states))

    def edge_bdd(self, keys: Iterable[EdgeKey]) -> int:
        bdd = self.fsm.bdd
        return bdd.disj(
            bdd.and_(self.x.literal(src), self.y.literal(dst)) for src, dst in keys
        )

    def rabin_pairs_bdd(self) -> List[RabinPair]:
        """Acceptance pairs as symbolic edge sets (over x, y)."""
        pairs = []
        for i, (fin, inf) in enumerate(self.automaton.rabin_pairs):
            pairs.append(
                RabinPair(
                    fin=self.edge_bdd(fin),
                    inf=self.edge_bdd(inf),
                    label=f"{self.automaton.name}.pair{i}",
                )
            )
        return pairs

    def decode(self, assignment: Dict[int, bool]) -> str:
        return str(self.x.decode(assignment))


def attach(fsm, automaton: Automaton, check: bool = True) -> AttachedMonitor:
    """Attach ``automaton`` as a monitor on ``fsm`` (before build_transition).

    Adds a state-variable pair and a transition conjunct
    ``OR over edges (x=src & guard & y=dst)`` to the product.  With
    ``check`` (default) the automaton must be deterministic; incomplete
    automata are completed with a rejecting trap automatically.
    """
    if check:
        problems = automaton.check_deterministic(fsm)
        if problems:
            raise AutomatonError("; ".join(problems))
        if automaton.check_complete(fsm):
            automaton = automaton.completed()
    var_name = f"{automaton.name}.state"
    x, y = fsm.add_state_var(var_name, automaton.states, automaton.initial)
    bdd = fsm.bdd
    trans = bdd.disj(
        bdd.conj(
            [x.literal(e.src), e.guard.to_bdd(fsm), y.literal(e.dst)]
        )
        for e in automaton.edges
    )
    fsm.add_conjunct(trans, label=f"monitor:{automaton.name}")
    return AttachedMonitor(automaton=automaton, fsm=fsm, x=x, y=y)
