"""Hierarchical verification: refinement checking (paper §8 item 3).

    "As verification becomes more widely accepted, it will be applied at
    higher levels of abstraction.  We are working on techniques that
    compare lower level designs with higher level ones to guarantee that
    re-evaluation of properties proved at higher levels is not needed."

The top-down methodology of §2 refines a design by *removing*
non-determinism; as long as no new behaviour is added, universal
properties proved on the abstract model transfer to the refinement.
:func:`check_refinement` verifies exactly that, by computing the
greatest simulation relation between the implementation and the
specification over shared observables:

* ``H0(r, a)`` — implementation state ``r`` and specification state
  ``a`` agree on every observable valuation;
* ``H(r, a)`` — greatest fixpoint of: every implementation move
  ``r -> r'`` is matched by some specification move ``a -> a'`` with
  ``H(r', a')``;
* refinement holds iff every implementation initial state is related to
  some specification initial state.

Simulation implies trace containment (and is equivalent to it when the
specification is deterministic on the observables), so a passing check
licenses transferring all proved ∀-properties down the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

from repro.blifmv.ast import BlifMvError, Model
from repro.network.fsm import SymbolicFsm
from repro.network.product import _merge_into
from repro.network.quantify import Conjunct, multiply_and_quantify

IMPL = "impl."
SPEC = "spec."


@dataclass
class RefinementResult:
    """Outcome of a refinement check."""

    holds: bool
    relation: int
    fsm: SymbolicFsm
    iterations: int
    unmatched_initial: Optional[Dict[str, str]] = None


def _prefixed(model: Model, prefix: str) -> Dict[str, str]:
    return {name: prefix + name for name in model.declared_variables()}


def _side_bits(fsm: SymbolicFsm, prefix: str):
    """(x bits, y bits, rename maps, latch list) of one side."""
    latches = [l for l in fsm.latches if l.name.startswith(prefix)]
    x_bits = [b for l in latches for b in l.x.bits]
    y_bits = [b for l in latches for b in l.y.bits]
    x_to_y = fsm.mdd.rename_map((l.x, l.y) for l in latches)
    y_to_x = fsm.mdd.rename_map((l.y, l.x) for l in latches)
    return latches, x_bits, y_bits, x_to_y, y_to_x


def _side_transition(fsm: SymbolicFsm, prefix: str, keep: Set[int]) -> int:
    bdd = fsm.bdd
    pool = [
        c for c in fsm.conjuncts
        if any(fsm.bdd.var_name(v).startswith(prefix) for v in c.support)
    ]
    quantify: Set[int] = set()
    for c in pool:
        quantify |= set(c.support)
    quantify -= keep
    return multiply_and_quantify(bdd, pool, quantify, method="greedy").node


def _observable_predicate(
    fsm: SymbolicFsm, prefix: str, net: str, value: str, x_bits: Set[int]
) -> int:
    """May-projection of ``net=value`` onto the side's present state."""
    bdd = fsm.bdd
    var = fsm.var(prefix + net)
    if set(var.bits) <= x_bits:
        return var.literal(value)
    literal = var.literal(value)
    y_like = {
        b for latch in fsm.latches for b in latch.y.bits
    }
    pool = [
        c for c in fsm.conjuncts
        if not (set(c.support) & y_like)
        and any(bdd.var_name(v).startswith(prefix) for v in c.support)
    ]
    pool = list(pool) + [
        Conjunct(node=literal, support=frozenset(bdd.support(literal)),
                 label="atom")
    ]
    quantify: Set[int] = set()
    for c in pool:
        quantify |= set(c.support)
    quantify -= x_bits
    return multiply_and_quantify(bdd, pool, quantify, method="greedy").node


def check_refinement(
    implementation: Model,
    specification: Model,
    observables: Sequence[str],
    max_iterations: int = 10_000,
) -> RefinementResult:
    """Does ``implementation`` refine ``specification`` on ``observables``?

    Both models must be flat and closed; ``observables`` are net names
    present in both, with identical domains.  Returns the greatest
    simulation relation (a BDD over both machines' present-state bits)
    along with the verdict.
    """
    if implementation.subckts or specification.subckts:
        raise BlifMvError("check_refinement needs flat models")
    for net in observables:
        for model, role in ((implementation, "implementation"),
                            (specification, "specification")):
            if net not in model.declared_variables():
                raise BlifMvError(f"observable {net!r} missing from {role}")
        if implementation.domain(net) != specification.domain(net):
            raise BlifMvError(f"observable {net!r} has mismatched domains")

    merged = Model(name=f"{implementation.name}<= {specification.name}")
    _merge_into(merged, implementation, rename=_prefixed(implementation, IMPL))
    _merge_into(merged, specification, rename=_prefixed(specification, SPEC))
    fsm = SymbolicFsm(merged)
    bdd = fsm.bdd

    impl_latches, ix, iy, ix2y, iy2x = _side_bits(fsm, IMPL)
    spec_latches, sx, sy, sx2y, sy2x = _side_bits(fsm, SPEC)
    t_impl = fsm.bdd.true
    t_spec = fsm.bdd.true
    t_impl = _side_transition(fsm, IMPL, set(ix) | set(iy))
    t_spec = _side_transition(fsm, SPEC, set(sx) | set(sy))
    fsm.trans = bdd.and_(t_impl, t_spec)  # for callers wanting the product
    fsm._frozen = True

    # H0: equal observable valuations (may-semantics per value).
    relation = bdd.and_(
        fsm.mdd.domain_constraint(l.x for l in impl_latches),
        fsm.mdd.domain_constraint(l.x for l in spec_latches),
    )
    for net in observables:
        for value in implementation.domain(net):
            p_impl = _observable_predicate(fsm, IMPL, net, value, set(ix))
            p_spec = _observable_predicate(fsm, SPEC, net, value, set(sx))
            relation = bdd.and_(relation, bdd.xnor(p_impl, p_spec))

    iy_cube = bdd.cube(iy)
    sy_cube = bdd.cube(sy)
    iterations = 0
    while iterations < max_iterations:
        iterations += 1
        primed = bdd.rename(
            bdd.rename(relation, ix2y, strict=False), sx2y, strict=False
        )
        # ok(x_i, x_s, y_i): some spec move lands in the relation
        ok = bdd.and_exists(t_spec, primed, sy_cube)
        # bad(x_i, x_s): some impl move cannot be matched
        bad = bdd.and_exists(t_impl, bdd.not_(ok), iy_cube)
        refined = bdd.diff(relation, bad)
        if refined == relation:
            break
        relation = refined

    # Initial coverage: every impl init relates to some spec init.
    init_impl = bdd.conj(
        l.x.literal(list(l.reset) if l.reset else list(l.x.values))
        for l in impl_latches
    )
    init_spec = bdd.conj(
        l.x.literal(list(l.reset) if l.reset else list(l.x.values))
        for l in spec_latches
    )
    covered = bdd.exist(sx, bdd.and_(init_spec, relation))
    missing = bdd.diff(init_impl, covered)
    unmatched = None
    if missing != bdd.false:
        cube = bdd.pick_cube(missing, ix)
        unmatched = {
            l.name[len(IMPL):]: l.x.decode(cube) for l in impl_latches
        }
    return RefinementResult(
        holds=missing == bdd.false,
        relation=relation,
        fsm=fsm,
        iterations=iterations,
        unmatched_initial=unmatched,
    )
