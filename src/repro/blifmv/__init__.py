"""BLIF-MV: the multi-valued, non-deterministic intermediate format of HSIS.

Parse with :func:`repro.blifmv.parse` / :func:`repro.blifmv.parse_file`,
serialize with :func:`repro.blifmv.write`, and elaborate hierarchy with
:func:`repro.blifmv.flatten`.
"""

from repro.blifmv.ast import (
    ANY,
    Any_,
    BlifMvError,
    Design,
    Eq,
    Latch,
    Model,
    Row,
    Subckt,
    Table,
    ValueSet,
    BINARY_DOMAIN,
)
from repro.blifmv.parser import parse, parse_file
from repro.blifmv.writer import line_count, write, write_file, write_model
from repro.blifmv.hierarchy import (
    Elaboration,
    InstanceInfo,
    elaborate,
    flatten,
    instance_tree,
    shape_signature,
)

__all__ = [
    "ANY",
    "Any_",
    "BINARY_DOMAIN",
    "BlifMvError",
    "Design",
    "Eq",
    "Latch",
    "Model",
    "Row",
    "Subckt",
    "Table",
    "ValueSet",
    "parse",
    "parse_file",
    "write",
    "write_file",
    "write_model",
    "line_count",
    "flatten",
    "instance_tree",
    "elaborate",
    "Elaboration",
    "InstanceInfo",
    "shape_signature",
]
