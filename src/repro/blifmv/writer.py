"""Serialization of :class:`~repro.blifmv.ast.Design` back to BLIF-MV text.

``parse(write(design))`` round-trips (up to whitespace); the test suite
checks this on every shipped model.
"""

from __future__ import annotations

from typing import List

from repro.blifmv.ast import (
    Any_,
    Design,
    Eq,
    Model,
    PatternEntry,
    Table,
    ValueSet,
)


def entry_to_str(entry: PatternEntry) -> str:
    """Render a single pattern entry."""
    if isinstance(entry, Any_):
        return "-"
    if isinstance(entry, Eq):
        return f"={entry.name}"
    if isinstance(entry, ValueSet):
        return "({})".format(",".join(entry.values))
    return str(entry)


def write_table(table: Table) -> List[str]:
    lines = [".table {} -> {}".format(" ".join(table.inputs), " ".join(table.outputs))]
    if not table.inputs:
        lines[0] = ".table -> {}".format(" ".join(table.outputs))
    if table.default is not None:
        lines.append(".default " + " ".join(entry_to_str(e) for e in table.default))
    for row in table.rows:
        rendered = [entry_to_str(e) for e in row.inputs] + [
            entry_to_str(e) for e in row.outputs
        ]
        lines.append(" ".join(rendered))
    return lines


def write_model(model: Model) -> str:
    """Render one model as BLIF-MV text."""
    lines = [f".model {model.name}"]
    if model.inputs:
        lines.append(".inputs " + " ".join(model.inputs))
    if model.outputs:
        lines.append(".outputs " + " ".join(model.outputs))
    for var, values in model.domains.items():
        default_names = tuple(str(i) for i in range(len(values)))
        if values == default_names:
            lines.append(f".mv {var} {len(values)}")
        else:
            lines.append(f".mv {var} {len(values)} " + " ".join(values))
    if model.synchrony is not None:
        lines.append(f".synchrony {model.synchrony.to_sexpr()}")
    for net, location in model.sources.items():
        lines.append(f".source {net} {location}")
    for sub in model.subckts:
        conns = " ".join(f"{f}={a}" for f, a in sub.connections.items())
        lines.append(f".subckt {sub.model} {sub.instance} {conns}")
    for latch in model.latches:
        lines.append(f".latch {latch.input} {latch.output}")
        if latch.reset:
            lines.append(f".reset {latch.output}")
            for value in latch.reset:
                lines.append(str(value))
    for table in model.tables:
        lines.extend(write_table(table))
    lines.append(".end")
    return "\n".join(lines)


def write(design: Design) -> str:
    """Render a whole design, root model first."""
    order = [design.root] + [n for n in design.models if n != design.root]
    return "\n\n".join(write_model(design.models[name]) for name in order if name)


def write_file(design: Design, path: str) -> None:
    """Write a design to ``path``."""
    with open(path, "w") as handle:
        handle.write(write(design))
        handle.write("\n")


def line_count(design: Design) -> int:
    """Number of text lines in the serialized design (Table 1 metric)."""
    return len(write(design).splitlines())
