"""Synchrony trees: the extended c/s concurrency model (paper §4).

    "The extended c/s concurrency model associates a synchrony tree with
    each description.  A synchrony tree is a tree whose leaves are the
    latches, and whose intermediate nodes are labeled with A (for
    asynchronous) and S (for synchronous).  The semantics is that at
    every point in time only a subset of latches change their values.
    The subset to be updated is any set of latches that can be reached
    using the following procedure: start at the root, and at each
    synchronous node, choose all branches, whereas at each asynchronous
    node, choose one branch randomly."

Latches not updated in a tick hold their value.  Concrete syntax (a
``.synchrony`` directive holding one s-expression)::

    .synchrony (A (S p0 f0) (S p1 f1))

models two synchronous process/fork pairs interleaving asynchronously.
Latches absent from the tree update every tick (fully synchronous).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple, Union


class SynchronyError(Exception):
    """Raised on malformed synchrony trees."""


@dataclass(frozen=True)
class SyncLeaf:
    """A latch (by its output name)."""

    latch: str

    def leaves(self) -> Iterator[str]:
        yield self.latch

    def to_sexpr(self) -> str:
        return self.latch


@dataclass(frozen=True)
class SyncNode:
    """An internal node: 'S' updates all children, 'A' exactly one."""

    label: str  # 'A' | 'S'
    children: Tuple[Union["SyncNode", SyncLeaf], ...]

    def __post_init__(self):
        if self.label not in ("A", "S"):
            raise SynchronyError(f"node label must be 'A' or 'S', got {self.label!r}")
        if not self.children:
            raise SynchronyError("synchrony node needs at least one child")

    def leaves(self) -> Iterator[str]:
        for child in self.children:
            yield from child.leaves()

    def to_sexpr(self) -> str:
        inner = " ".join(c.to_sexpr() for c in self.children)
        return f"({self.label} {inner})"


SyncTree = Union[SyncNode, SyncLeaf]


def parse_synchrony(text: str) -> SyncTree:
    """Parse a synchrony-tree s-expression."""
    tokens = text.replace("(", " ( ").replace(")", " ) ").split()
    pos = 0

    def parse() -> SyncTree:
        nonlocal pos
        if pos >= len(tokens):
            raise SynchronyError("unexpected end of synchrony expression")
        token = tokens[pos]
        pos += 1
        if token == "(":
            if pos >= len(tokens):
                raise SynchronyError("unexpected end after '('")
            label = tokens[pos]
            pos += 1
            children: List[SyncTree] = []
            while pos < len(tokens) and tokens[pos] != ")":
                children.append(parse())
            if pos >= len(tokens):
                raise SynchronyError("missing ')'")
            pos += 1
            return SyncNode(label=label, children=tuple(children))
        if token == ")":
            raise SynchronyError("unexpected ')'")
        return SyncLeaf(latch=token)

    tree = parse()
    if pos != len(tokens):
        raise SynchronyError(f"trailing tokens: {tokens[pos:]}")
    duplicates = _duplicate_leaves(tree)
    if duplicates:
        raise SynchronyError(f"latches appear twice in the tree: {duplicates}")
    return tree


def _duplicate_leaves(tree: SyncTree) -> List[str]:
    seen: Set[str] = set()
    dups: List[str] = []
    for leaf in tree.leaves():
        if leaf in seen:
            dups.append(leaf)
        seen.add(leaf)
    return dups


def validate_tree(tree: SyncTree, latch_outputs: Set[str]) -> None:
    """Every leaf must name a latch output."""
    unknown = [leaf for leaf in tree.leaves() if leaf not in latch_outputs]
    if unknown:
        raise SynchronyError(f"synchrony leaves are not latches: {unknown}")


def enumerate_update_sets(tree: SyncTree) -> List[Set[str]]:
    """All possible update subsets (explicit; for tests and small trees)."""
    if isinstance(tree, SyncLeaf):
        return [{tree.latch}]
    child_sets = [enumerate_update_sets(c) for c in tree.children]
    if tree.label == "A":
        out: List[Set[str]] = []
        for sets in child_sets:
            out.extend(sets)
        return out
    # S: union of one choice per child
    out = [set()]
    for sets in child_sets:
        out = [prev | chosen for prev in out for chosen in sets]
    return out
