"""Abstract syntax for the BLIF-MV intermediate format.

BLIF-MV (Brayton et al., UCB/ERL M91/97) extends BLIF, the Berkeley Logic
Interchange Format, with multi-valued variables and non-deterministic
tables.  A model is a set of variables, latches and relations (tables);
the combinational/sequential (c/s) semantics is: at every global clock
tick each latch copies its input to its output, and values then propagate
through the relations until latch inputs are reached.

The dialect implemented here covers the constructs HSIS relies on:

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.end``
* ``.mv <vars> <n> [value names]`` — multi-valued domain declaration
* ``.table <ins> -> <outs>`` with rows of value literals, ``-`` (any),
  ``(a,b,...)`` value sets, ``=name`` output-equals-input, and
  ``.default`` rows
* ``.latch <input> <output>`` and ``.reset <latch-output>`` rows
  (several rows = non-deterministic initial value)
* ``.subckt <model> <instance> formal=actual ...`` hierarchy

Tables may be non-deterministic: several rows may match one input
pattern with different outputs, and any of those outputs may be
produced.  A table defining exactly one output pattern per input pattern
is an ordinary multi-valued logic function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

BINARY_DOMAIN: Tuple[str, ...] = ("0", "1")


class BlifMvError(Exception):
    """Raised on malformed BLIF-MV input or inconsistent models."""


@dataclass(frozen=True)
class Any_:
    """Pattern entry matching every domain value (``-``)."""

    def __repr__(self) -> str:
        return "ANY"


ANY = Any_()


@dataclass(frozen=True)
class ValueSet:
    """Pattern entry matching one of an explicit set of values."""

    values: Tuple[str, ...]

    def __repr__(self) -> str:
        return "({})".format(",".join(self.values))


@dataclass(frozen=True)
class Eq:
    """Output pattern entry equating the output to input column ``name``."""

    name: str

    def __repr__(self) -> str:
        return f"={self.name}"


PatternEntry = Union[str, Any_, ValueSet, Eq]


@dataclass
class Row:
    """One table row: an input pattern and an output pattern."""

    inputs: Tuple[PatternEntry, ...]
    outputs: Tuple[PatternEntry, ...]


@dataclass
class Table:
    """A (possibly non-deterministic) multi-valued relation.

    ``default`` — if present — supplies the outputs for every input
    pattern not matched by any explicit row.
    """

    inputs: List[str]
    outputs: List[str]
    rows: List[Row] = field(default_factory=list)
    default: Optional[Tuple[PatternEntry, ...]] = None

    @property
    def variables(self) -> List[str]:
        return list(self.inputs) + list(self.outputs)


@dataclass
class Latch:
    """A latch: ``output`` holds state, ``input`` is its next value.

    ``reset`` lists the allowed initial values of ``output`` (more than
    one value makes the initial state non-deterministic; an empty list
    means "any domain value").
    """

    input: str
    output: str
    reset: List[str] = field(default_factory=list)


@dataclass
class Subckt:
    """Instantiation of a child model with formal->actual connections."""

    model: str
    instance: str
    connections: Dict[str, str] = field(default_factory=dict)


@dataclass
class Model:
    """One ``.model`` section.

    ``synchrony`` optionally holds the extended-c/s synchrony tree
    (:mod:`repro.blifmv.synchrony`); None means fully synchronous.
    """

    name: str
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    domains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    tables: List[Table] = field(default_factory=list)
    latches: List[Latch] = field(default_factory=list)
    subckts: List[Subckt] = field(default_factory=list)
    synchrony: Optional[object] = None
    # net -> human-readable source location ("file.v line 12"), carried
    # from the HDL front end for source-level debugging (paper §8 item 7)
    sources: Dict[str, str] = field(default_factory=dict)

    def domain(self, var: str) -> Tuple[str, ...]:
        """Domain of ``var`` (binary unless declared with ``.mv``)."""
        return self.domains.get(var, BINARY_DOMAIN)

    def declared_variables(self) -> List[str]:
        """Every variable mentioned by this model, in first-use order."""
        seen: Dict[str, None] = {}
        for name in self.inputs:
            seen.setdefault(name)
        for name in self.outputs:
            seen.setdefault(name)
        for table in self.tables:
            for name in table.variables:
                seen.setdefault(name)
        for latch in self.latches:
            seen.setdefault(latch.input)
            seen.setdefault(latch.output)
        for sub in self.subckts:
            for actual in sub.connections.values():
                seen.setdefault(actual)
        return list(seen)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`BlifMvError`."""
        latch_outputs = set()
        for latch in self.latches:
            if latch.output in latch_outputs:
                raise BlifMvError(
                    f"model {self.name}: latch output {latch.output!r} defined twice"
                )
            latch_outputs.add(latch.output)
            domain = self.domain(latch.output)
            for value in latch.reset:
                if value not in domain:
                    raise BlifMvError(
                        f"model {self.name}: reset value {value!r} not in "
                        f"domain of {latch.output!r}"
                    )
        defined = set(latch_outputs) | set(self.inputs)
        for table in self.tables:
            for out in table.outputs:
                if out in defined and out not in self.inputs:
                    raise BlifMvError(
                        f"model {self.name}: variable {out!r} has multiple drivers"
                    )
                defined.add(out)
            self._validate_table(table)

    def _validate_table(self, table: Table) -> None:
        width = len(table.inputs) + len(table.outputs)
        for row in table.rows:
            if len(row.inputs) != len(table.inputs) or len(row.outputs) != len(
                table.outputs
            ):
                raise BlifMvError(
                    f"model {self.name}: row width mismatch in table for "
                    f"{table.outputs} (expected {width})"
                )
            for entry, var in zip(row.inputs, table.inputs):
                self._validate_entry(entry, var, is_output=False, table=table)
            for entry, var in zip(row.outputs, table.outputs):
                self._validate_entry(entry, var, is_output=True, table=table)
        if table.default is not None:
            if len(table.default) != len(table.outputs):
                raise BlifMvError(
                    f"model {self.name}: .default width mismatch for {table.outputs}"
                )
            for entry, var in zip(table.default, table.outputs):
                self._validate_entry(entry, var, is_output=True, table=table)

    def _validate_entry(
        self, entry: PatternEntry, var: str, is_output: bool, table: Table
    ) -> None:
        domain = self.domain(var)
        if isinstance(entry, Any_):
            return
        if isinstance(entry, Eq):
            if not is_output:
                raise BlifMvError(
                    f"model {self.name}: '=' only allowed in output columns"
                )
            if entry.name not in table.inputs:
                raise BlifMvError(
                    f"model {self.name}: '={entry.name}' does not name an input "
                    f"of the table"
                )
            if self.domain(entry.name) != domain:
                raise BlifMvError(
                    f"model {self.name}: '={entry.name}' domain mismatch with {var!r}"
                )
            return
        values = entry.values if isinstance(entry, ValueSet) else (entry,)
        for value in values:
            if value not in domain:
                raise BlifMvError(
                    f"model {self.name}: value {value!r} not in domain of {var!r} "
                    f"{domain}"
                )


@dataclass
class Design:
    """A collection of models; ``root`` names the top-level model."""

    models: Dict[str, Model] = field(default_factory=dict)
    root: Optional[str] = None

    def add(self, model: Model) -> None:
        if model.name in self.models:
            raise BlifMvError(f"duplicate model {model.name!r}")
        self.models[model.name] = model
        if self.root is None:
            self.root = model.name

    def root_model(self) -> Model:
        if self.root is None:
            raise BlifMvError("design has no models")
        return self.models[self.root]

    def validate(self) -> None:
        for model in self.models.values():
            model.validate()
            for sub in model.subckts:
                if sub.model not in self.models:
                    raise BlifMvError(
                        f"model {model.name}: unknown subcircuit model {sub.model!r}"
                    )
                child = self.models[sub.model]
                formals = set(child.inputs) | set(child.outputs)
                for formal in sub.connections:
                    if formal not in formals:
                        raise BlifMvError(
                            f"model {model.name}: {sub.model}.{formal} is not a port"
                        )
