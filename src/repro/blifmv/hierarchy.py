"""Hierarchy elaboration: flatten a multi-model design into one model.

HSIS descriptions are hierarchical (``.subckt``); verification operates
on the flattened network of relations and latches.  Flattening renames
each instance's internal variables with an ``instance.`` prefix and
splices formal ports to the parent's actual nets.

Flattening is purely structural: non-determinism, multi-valued domains
and reset values are preserved verbatim.

:func:`elaborate` is the shape-aware sibling of :func:`flatten`: it
produces the same flat model *plus* the instance table that
:func:`flatten` used to discard — one :class:`InstanceInfo` per inlined
model, carrying the local→flat net rename, the contiguous slices of the
flat table/latch lists the instance owns, and a canonical *shape
signature* (:func:`shape_signature`) hashing the model's structure
modulo net names.  Two instances with equal signatures are isomorphic
subnetworks: the encoder (:mod:`repro.network.encode`) builds one
representative's conjuncts per shape and instantiates every other copy
by variable substitution.  See docs/hierarchy.md.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.blifmv.ast import (
    Any_,
    BlifMvError,
    Design,
    Eq,
    Latch,
    Model,
    PatternEntry,
    Row,
    Table,
    ValueSet,
)


@dataclass
class InstanceInfo:
    """One inlined model instance inside an :class:`Elaboration`.

    ``path`` is the dotted instance path ("" for the root); ``canon``
    lists the instance model's local nets in canonical (first-use)
    order — the same order for every model with the same ``shape``
    digest, so position ``i`` of two isomorphic instances names the
    same structural net.  ``rename`` maps each local net to its flat
    name; ``tables`` / ``latches`` are the ``[lo, hi)`` slices of the
    flat model's table/latch lists holding this instance's own entries
    (children occupy later, disjoint slices).
    """

    path: str
    model: str
    shape: str
    canon: Tuple[str, ...]
    rename: Dict[str, str]
    tables: Tuple[int, int]
    latches: Tuple[int, int]


@dataclass
class Elaboration:
    """A flattened design that remembers where its instances came from."""

    flat: Model
    instances: List[InstanceInfo] = field(default_factory=list)

    def shape_groups(self) -> Dict[str, List[int]]:
        """Shape digest -> instance indices, in pre-order (rep first)."""
        groups: Dict[str, List[int]] = {}
        for index, inst in enumerate(self.instances):
            groups.setdefault(inst.shape, []).append(index)
        return groups


def flatten(design: Design, root: Optional[str] = None) -> Model:
    """Flatten ``design`` into a single model with no subcircuits.

    The result keeps the root's name; instance internals are prefixed
    ``instance.``.  Recursion depth equals the hierarchy depth;
    instantiation cycles are rejected.
    """
    return _elaborate(design, root, want_shapes=False).flat


def elaborate(design: Design, root: Optional[str] = None) -> Elaboration:
    """Flatten ``design`` keeping the instance table and shape signatures."""
    return _elaborate(design, root, want_shapes=True)


def _elaborate(design: Design, root: Optional[str], want_shapes: bool) -> Elaboration:
    design.validate()
    root_name = root if root is not None else design.root
    if root_name is None or root_name not in design.models:
        raise BlifMvError(f"unknown root model {root_name!r}")
    flat = Model(name=root_name)
    root_model = design.models[root_name]
    flat.inputs = list(root_model.inputs)
    flat.outputs = list(root_model.outputs)
    instances: List[InstanceInfo] = []
    used: Set[str] = set()
    _inline(
        design, root_model, prefix="", target=flat, stack=[root_name],
        instances=instances, used=used,
    )
    flat.validate()
    if want_shapes:
        cache: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        for inst in instances:
            digest, _canon = _signature(design, inst.model, cache, [])
            inst.shape = digest
    return Elaboration(flat=flat, instances=instances)


def _rename(name: str, prefix: str, port_map: Dict[str, str]) -> str:
    if name in port_map:
        return port_map[name]
    return prefix + name


def _rename_entry(entry: PatternEntry, prefix: str, port_map: Dict[str, str]) -> PatternEntry:
    if isinstance(entry, Eq):
        return Eq(_rename(entry.name, prefix, port_map))
    return entry


def _inline(
    design: Design,
    model: Model,
    prefix: str,
    target: Model,
    stack: List[str],
    port_map: Optional[Dict[str, str]] = None,
    instances: Optional[List[InstanceInfo]] = None,
    used: Optional[Set[str]] = None,
) -> None:
    port_map = port_map or {}
    local_names = model.declared_variables()
    rename_map = {n: _rename(n, prefix, port_map) for n in local_names}
    if used is not None:
        used.update(rename_map.values())
    table_lo = len(target.tables)
    latch_lo = len(target.latches)

    if model.synchrony is not None:
        from repro.blifmv.synchrony import SyncLeaf, SyncNode

        def rename_tree(tree):
            if isinstance(tree, SyncLeaf):
                return SyncLeaf(_rename(tree.latch, prefix, port_map))
            return SyncNode(tree.label,
                            tuple(rename_tree(c) for c in tree.children))

        if target.synchrony is not None:
            raise BlifMvError(
                "only one model in the hierarchy may carry a synchrony tree"
            )
        target.synchrony = rename_tree(model.synchrony)

    # First writer wins: a child port net renames onto the parent's
    # actual, and the parent's entry (the instantiating line) is the one
    # error messages should keep pointing at.
    for net, location in model.sources.items():
        target.sources.setdefault(_rename(net, prefix, port_map), location)

    for var, domain in model.domains.items():
        new_name = _rename(var, prefix, port_map)
        existing = target.domains.get(new_name)
        if existing is not None and existing != domain:
            raise BlifMvError(
                f"conflicting domains for {new_name!r}: {existing} vs {domain}"
            )
        target.domains[new_name] = domain

    for table in model.tables:
        target.tables.append(
            Table(
                inputs=[_rename(v, prefix, port_map) for v in table.inputs],
                outputs=[_rename(v, prefix, port_map) for v in table.outputs],
                rows=[
                    Row(
                        inputs=tuple(
                            _rename_entry(e, prefix, port_map) for e in row.inputs
                        ),
                        outputs=tuple(
                            _rename_entry(e, prefix, port_map) for e in row.outputs
                        ),
                    )
                    for row in table.rows
                ],
                default=None
                if table.default is None
                else tuple(_rename_entry(e, prefix, port_map) for e in table.default),
            )
        )

    for latch in model.latches:
        target.latches.append(
            Latch(
                input=_rename(latch.input, prefix, port_map),
                output=_rename(latch.output, prefix, port_map),
                reset=list(latch.reset),
            )
        )

    if instances is not None:
        instances.append(
            InstanceInfo(
                path=prefix[:-1] if prefix else "",
                model=model.name,
                shape="",
                canon=tuple(local_names),
                rename=rename_map,
                tables=(table_lo, table_lo + len(model.tables)),
                latches=(latch_lo, latch_lo + len(model.latches)),
            )
        )

    for sub in model.subckts:
        if sub.model in stack:
            raise BlifMvError(
                "instantiation cycle: " + " -> ".join(stack + [sub.model])
            )
        child = design.models[sub.model]
        child_prefix = prefix + sub.instance + "."
        child_ports: Dict[str, str] = {}
        for formal in list(child.inputs) + list(child.outputs):
            if formal in sub.connections:
                child_ports[formal] = _rename(sub.connections[formal], prefix, port_map)
            else:
                # Dangling port: becomes a fresh prefixed net — unless a
                # real net of the same flattened name already exists, in
                # which case the "fresh" net would silently merge drivers.
                fresh = child_prefix + formal
                if used is not None and fresh in used:
                    raise BlifMvError(
                        f"model {model.name}: dangling port "
                        f"{sub.instance}.{formal} collides with existing "
                        f"net {fresh!r}"
                    )
                child_ports[formal] = fresh
        _inline(
            design,
            child,
            prefix=child_prefix,
            target=target,
            stack=stack + [sub.model],
            port_map=child_ports,
            instances=instances,
            used=used,
        )


# ----------------------------------------------------------------------
# Shape signatures
# ----------------------------------------------------------------------


def shape_signature(design: Design, model_name: str) -> Tuple[str, Tuple[str, ...]]:
    """Canonical shape of one model: ``(digest, canonical net order)``.

    The digest hashes the model's structure with every net name replaced
    by its position in the canonical (first-use) order — tables, rows,
    defaults, domains, latches, resets, the synchrony tree, and child
    subcircuits by *their* shape digests plus the positional connection
    pattern.  Two models are isomorphic modulo net (and model) names iff
    their digests are equal, and position ``i`` of their canonical
    orders then names the same structural net — which is exactly the
    bijection substitution-based instantiation needs.
    """
    if model_name not in design.models:
        raise BlifMvError(f"unknown model {model_name!r}")
    return _signature(design, model_name, {}, [])


def _signature(
    design: Design,
    name: str,
    cache: Dict[str, Tuple[str, Tuple[str, ...]]],
    stack: List[str],
) -> Tuple[str, Tuple[str, ...]]:
    if name in cache:
        return cache[name]
    if name in stack:
        raise BlifMvError(
            "instantiation cycle: " + " -> ".join(stack + [name])
        )
    if name not in design.models:
        raise BlifMvError(f"unknown model {name!r}")
    model = design.models[name]
    canon = tuple(model.declared_variables())
    pos = {n: i for i, n in enumerate(canon)}

    def entry_key(entry: PatternEntry):
        if isinstance(entry, Any_):
            return ["*"]
        if isinstance(entry, Eq):
            return ["=", pos[entry.name]]
        if isinstance(entry, ValueSet):
            return ["s", list(entry.values)]
        return ["v", entry]

    stack.append(name)
    try:
        subckts = []
        for sub in model.subckts:
            child_digest, _ = _signature(design, sub.model, cache, stack)
            child = design.models[sub.model]
            ports = list(child.inputs) + list(child.outputs)
            subckts.append(
                [
                    child_digest,
                    [
                        pos[sub.connections[f]] if f in sub.connections else None
                        for f in ports
                    ],
                ]
            )
    finally:
        stack.pop()
    payload = {
        "inputs": [pos[n] for n in model.inputs],
        "outputs": [pos[n] for n in model.outputs],
        "domains": [list(model.domain(n)) for n in canon],
        "tables": [
            [
                [pos[v] for v in t.inputs],
                [pos[v] for v in t.outputs],
                [
                    [[entry_key(e) for e in r.inputs],
                     [entry_key(e) for e in r.outputs]]
                    for r in t.rows
                ],
                None if t.default is None
                else [entry_key(e) for e in t.default],
            ]
            for t in model.tables
        ],
        "latches": [
            [pos[l.input], pos[l.output], list(l.reset)] for l in model.latches
        ],
        "synchrony": _sync_key(model.synchrony, pos),
        "subckts": subckts,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    cache[name] = (digest, canon)
    return cache[name]


def _sync_key(tree, pos: Dict[str, int]):
    if tree is None:
        return None
    from repro.blifmv.synchrony import SyncLeaf

    if isinstance(tree, SyncLeaf):
        return ["leaf", pos[tree.latch]]
    return [tree.label, [_sync_key(c, pos) for c in tree.children]]


def instance_tree(design: Design, root: Optional[str] = None) -> List[str]:
    """Human-readable instance tree (one line per instance)."""
    root_name = root if root is not None else design.root
    if root_name is None:
        return []
    if root_name not in design.models:
        raise BlifMvError(f"unknown root model {root_name!r}")
    lines: List[str] = []

    def walk(model_name: str, path: str, depth: int) -> None:
        lines.append("  " * depth + f"{path or 'top'}: {model_name}")
        for sub in design.models[model_name].subckts:
            if sub.model not in design.models:
                raise BlifMvError(
                    f"model {model_name}: unknown subcircuit model {sub.model!r}"
                )
            walk(sub.model, f"{path}.{sub.instance}" if path else sub.instance, depth + 1)

    walk(root_name, "", 0)
    return lines
