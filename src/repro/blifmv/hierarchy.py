"""Hierarchy elaboration: flatten a multi-model design into one model.

HSIS descriptions are hierarchical (``.subckt``); verification operates
on the flattened network of relations and latches.  Flattening renames
each instance's internal variables with an ``instance.`` prefix and
splices formal ports to the parent's actual nets.

Flattening is purely structural: non-determinism, multi-valued domains
and reset values are preserved verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.blifmv.ast import (
    BlifMvError,
    Design,
    Eq,
    Latch,
    Model,
    PatternEntry,
    Row,
    Table,
)


def flatten(design: Design, root: Optional[str] = None) -> Model:
    """Flatten ``design`` into a single model with no subcircuits.

    The result keeps the root's name; instance internals are prefixed
    ``instance.``.  Recursion depth equals the hierarchy depth;
    instantiation cycles are rejected.
    """
    design.validate()
    root_name = root if root is not None else design.root
    if root_name is None or root_name not in design.models:
        raise BlifMvError(f"unknown root model {root_name!r}")
    flat = Model(name=root_name)
    root_model = design.models[root_name]
    flat.inputs = list(root_model.inputs)
    flat.outputs = list(root_model.outputs)
    _inline(design, root_model, prefix="", target=flat, stack=[root_name])
    flat.validate()
    return flat


def _rename(name: str, prefix: str, port_map: Dict[str, str]) -> str:
    if name in port_map:
        return port_map[name]
    return prefix + name


def _rename_entry(entry: PatternEntry, prefix: str, port_map: Dict[str, str]) -> PatternEntry:
    if isinstance(entry, Eq):
        return Eq(_rename(entry.name, prefix, port_map))
    return entry


def _inline(
    design: Design,
    model: Model,
    prefix: str,
    target: Model,
    stack: List[str],
    port_map: Optional[Dict[str, str]] = None,
) -> None:
    port_map = port_map or {}

    if model.synchrony is not None:
        from repro.blifmv.synchrony import SyncLeaf, SyncNode

        def rename_tree(tree):
            if isinstance(tree, SyncLeaf):
                return SyncLeaf(_rename(tree.latch, prefix, port_map))
            return SyncNode(tree.label,
                            tuple(rename_tree(c) for c in tree.children))

        if target.synchrony is not None:
            raise BlifMvError(
                "only one model in the hierarchy may carry a synchrony tree"
            )
        target.synchrony = rename_tree(model.synchrony)

    for net, location in model.sources.items():
        target.sources[_rename(net, prefix, port_map)] = location

    for var, domain in model.domains.items():
        new_name = _rename(var, prefix, port_map)
        existing = target.domains.get(new_name)
        if existing is not None and existing != domain:
            raise BlifMvError(
                f"conflicting domains for {new_name!r}: {existing} vs {domain}"
            )
        target.domains[new_name] = domain

    for table in model.tables:
        target.tables.append(
            Table(
                inputs=[_rename(v, prefix, port_map) for v in table.inputs],
                outputs=[_rename(v, prefix, port_map) for v in table.outputs],
                rows=[
                    Row(
                        inputs=tuple(
                            _rename_entry(e, prefix, port_map) for e in row.inputs
                        ),
                        outputs=tuple(
                            _rename_entry(e, prefix, port_map) for e in row.outputs
                        ),
                    )
                    for row in table.rows
                ],
                default=None
                if table.default is None
                else tuple(_rename_entry(e, prefix, port_map) for e in table.default),
            )
        )

    for latch in model.latches:
        target.latches.append(
            Latch(
                input=_rename(latch.input, prefix, port_map),
                output=_rename(latch.output, prefix, port_map),
                reset=list(latch.reset),
            )
        )

    for sub in model.subckts:
        if sub.model in stack:
            raise BlifMvError(
                "instantiation cycle: " + " -> ".join(stack + [sub.model])
            )
        child = design.models[sub.model]
        child_prefix = prefix + sub.instance + "."
        child_ports: Dict[str, str] = {}
        for formal in list(child.inputs) + list(child.outputs):
            if formal in sub.connections:
                child_ports[formal] = _rename(sub.connections[formal], prefix, port_map)
            else:
                # Dangling port: becomes a fresh prefixed net.
                child_ports[formal] = child_prefix + formal
        _inline(
            design,
            child,
            prefix=child_prefix,
            target=target,
            stack=stack + [sub.model],
            port_map=child_ports,
        )


def instance_tree(design: Design, root: Optional[str] = None) -> List[str]:
    """Human-readable instance tree (one line per instance)."""
    root_name = root if root is not None else design.root
    if root_name is None:
        return []
    lines: List[str] = []

    def walk(model_name: str, path: str, depth: int) -> None:
        lines.append("  " * depth + f"{path or 'top'}: {model_name}")
        for sub in design.models[model_name].subckts:
            walk(sub.model, f"{path}.{sub.instance}" if path else sub.instance, depth + 1)

    walk(root_name, "", 0)
    return lines
