"""Parser for the BLIF-MV dialect described in :mod:`repro.blifmv.ast`.

Grammar notes:

* ``#`` starts a comment; ``\\`` at end of line continues it.
* ``.mv a,b,c 4 w x y z`` declares domain ``(w, x, y, z)`` for three
  variables at once; value names default to ``"0".."n-1"``.
* Table rows follow the ``.table``/``.default`` lines until the next dot
  directive.
* ``.reset <latch-output>`` rows (one value per line) give the initial
  value(s) of a latch.  ``.r <value>`` after ``.latch`` is accepted as a
  shorthand for a single reset value.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple

from repro.blifmv.ast import (
    ANY,
    BlifMvError,
    Design,
    Eq,
    Latch,
    Model,
    PatternEntry,
    Row,
    Subckt,
    Table,
    ValueSet,
)

_VALUE_SET_RE = re.compile(r"^[({](.*)[)}]$")


def parse(text: str, source: str = "<string>") -> Design:
    """Parse BLIF-MV text into a :class:`Design` (validated)."""
    parser = _Parser(text, source)
    design = parser.run()
    design.validate()
    return design


def parse_file(path: str) -> Design:
    """Parse a BLIF-MV file."""
    with open(path) as handle:
        return parse(handle.read(), source=path)


def _logical_lines(text: str) -> Iterable[Tuple[int, str]]:
    """Yield (line number, logical line) after comment/continuation handling."""
    pending = ""
    pending_line = 0
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip() and not pending:
            continue
        if line.endswith("\\"):
            if not pending:
                pending_line = number
            pending += line[:-1] + " "
            continue
        if pending:
            yield pending_line, (pending + line).strip()
            pending = ""
        else:
            if line.strip():
                yield number, line.strip()
    if pending.strip():
        yield pending_line, pending.strip()


class _Parser:
    def __init__(self, text: str, source: str):
        self.lines = list(_logical_lines(text))
        self.source = source
        self.pos = 0
        self.design = Design()
        self.model: Optional[Model] = None
        self.current_table: Optional[Table] = None
        self.current_reset: Optional[Latch] = None
        self.last_latch: Optional[Latch] = None

    def error(self, lineno: int, message: str) -> BlifMvError:
        return BlifMvError(f"{self.source}:{lineno}: {message}")

    def run(self) -> Design:
        for lineno, line in self.lines:
            if line.startswith("."):
                self.directive(lineno, line)
            else:
                self.data_row(lineno, line)
        if self.model is not None:
            self.finish_model()
        if not self.design.models:
            raise BlifMvError(f"{self.source}: no .model found")
        return self.design

    # -- directives ----------------------------------------------------

    def directive(self, lineno: int, line: str) -> None:
        parts = line.split()
        keyword, args = parts[0], parts[1:]
        if keyword == ".model":
            if self.model is not None:
                self.finish_model()
            if len(args) != 1:
                raise self.error(lineno, ".model needs exactly one name")
            self.model = Model(name=args[0])
            return
        if self.model is None:
            raise self.error(lineno, f"{keyword} before .model")
        self.current_table = None
        self.current_reset = None
        if keyword == ".inputs":
            self.model.inputs.extend(args)
        elif keyword == ".outputs":
            self.model.outputs.extend(args)
        elif keyword == ".mv":
            self.parse_mv(lineno, args)
        elif keyword == ".table":
            self.parse_table(lineno, args)
        elif keyword == ".names":  # plain-BLIF compatibility
            self.parse_table(lineno, args[:-1] + ["->"] + args[-1:])
        elif keyword == ".latch":
            self.parse_latch(lineno, args)
        elif keyword == ".reset":
            self.parse_reset(lineno, args)
        elif keyword == ".r":
            if self.last_latch is None:
                raise self.error(lineno, ".r without preceding .latch")
            self.last_latch.reset.extend(args)
        elif keyword == ".default":
            self.parse_default(lineno, args)
        elif keyword == ".synchrony":
            self.parse_synchrony(lineno, args)
        elif keyword == ".source":
            if len(args) < 2:
                raise self.error(lineno, ".source needs a net and a location")
            self.model.sources[args[0]] = " ".join(args[1:])
        elif keyword == ".subckt":
            self.parse_subckt(lineno, args)
        elif keyword == ".end":
            self.finish_model()
        else:
            raise self.error(lineno, f"unknown directive {keyword}")

    def finish_model(self) -> None:
        if self.model is not None:
            self.design.add(self.model)
        self.model = None
        self.current_table = None
        self.current_reset = None
        self.last_latch = None

    def parse_mv(self, lineno: int, args: List[str]) -> None:
        if len(args) < 2:
            raise self.error(lineno, ".mv needs variables and a domain size")
        names = [n for n in args[0].split(",") if n]
        try:
            size = int(args[1])
        except ValueError:
            raise self.error(lineno, f"bad domain size {args[1]!r}") from None
        if size < 1:
            raise self.error(lineno, "domain size must be >= 1")
        values = tuple(args[2:]) if len(args) > 2 else tuple(str(i) for i in range(size))
        if len(values) != size:
            raise self.error(
                lineno, f".mv declares {size} values but names {len(values)}"
            )
        assert self.model is not None
        for name in names:
            if name in self.model.domains:
                raise self.error(lineno, f"domain of {name!r} declared twice")
            self.model.domains[name] = values

    def parse_table(self, lineno: int, args: List[str]) -> None:
        assert self.model is not None
        if "->" in args:
            arrow = args.index("->")
            inputs, outputs = args[:arrow], args[arrow + 1:]
        else:
            inputs, outputs = args[:-1], args[-1:]
        if not outputs:
            raise self.error(lineno, ".table needs at least one output")
        table = Table(inputs=inputs, outputs=outputs)
        self.model.tables.append(table)
        self.current_table = table

    def parse_default(self, lineno: int, args: List[str]) -> None:
        if self.model is None or not self.model.tables:
            raise self.error(lineno, ".default without a table")
        table = self.model.tables[-1]
        if table.default is not None:
            raise self.error(lineno, "second .default for the same table")
        table.default = tuple(self.parse_entry(lineno, tok) for tok in args)
        self.current_table = table

    def parse_latch(self, lineno: int, args: List[str]) -> None:
        assert self.model is not None
        if len(args) < 2:
            raise self.error(lineno, ".latch needs input and output names")
        latch = Latch(input=args[0], output=args[1])
        if len(args) > 2:  # optional inline reset value(s)
            latch.reset.extend(args[2:])
        self.model.latches.append(latch)
        self.last_latch = latch

    def parse_reset(self, lineno: int, args: List[str]) -> None:
        assert self.model is not None
        if len(args) != 1:
            raise self.error(lineno, ".reset names exactly one latch output")
        name = args[0]
        for latch in self.model.latches:
            if latch.output == name:
                self.current_reset = latch
                return
        raise self.error(lineno, f".reset for unknown latch output {name!r}")

    def parse_synchrony(self, lineno: int, args: List[str]) -> None:
        from repro.blifmv.synchrony import SynchronyError, parse_synchrony

        assert self.model is not None
        if self.model.synchrony is not None:
            raise self.error(lineno, "second .synchrony for the same model")
        try:
            self.model.synchrony = parse_synchrony(" ".join(args))
        except SynchronyError as exc:
            raise self.error(lineno, str(exc)) from exc

    def parse_subckt(self, lineno: int, args: List[str]) -> None:
        assert self.model is not None
        if len(args) < 2:
            raise self.error(lineno, ".subckt needs a model and an instance name")
        sub = Subckt(model=args[0], instance=args[1])
        for conn in args[2:]:
            if "=" not in conn:
                raise self.error(lineno, f"bad connection {conn!r} (want formal=actual)")
            formal, actual = conn.split("=", 1)
            if formal in sub.connections:
                raise self.error(lineno, f"port {formal!r} connected twice")
            sub.connections[formal] = actual
        self.model.subckts.append(sub)

    # -- data rows -----------------------------------------------------

    def data_row(self, lineno: int, line: str) -> None:
        if self.current_reset is not None:
            self.current_reset.reset.extend(line.split())
            return
        if self.current_table is None:
            raise self.error(lineno, f"unexpected data row {line!r}")
        table = self.current_table
        tokens = line.split()
        expected = len(table.inputs) + len(table.outputs)
        if len(tokens) != expected:
            raise self.error(
                lineno,
                f"row has {len(tokens)} entries, table "
                f"{table.inputs}->{table.outputs} needs {expected}",
            )
        entries = [self.parse_entry(lineno, tok) for tok in tokens]
        row = Row(
            inputs=tuple(entries[: len(table.inputs)]),
            outputs=tuple(entries[len(table.inputs):]),
        )
        table.rows.append(row)

    def parse_entry(self, lineno: int, token: str) -> PatternEntry:
        if token == "-":
            return ANY
        if token.startswith("="):
            if len(token) == 1:
                raise self.error(lineno, "'=' needs a variable name")
            return Eq(token[1:])
        match = _VALUE_SET_RE.match(token)
        if match:
            values = tuple(v for v in match.group(1).split(",") if v)
            if not values:
                raise self.error(lineno, f"empty value set {token!r}")
            return ValueSet(values)
        return token
