"""Ordering portfolio: race candidate variable orders, remember winners.

Variable order is the dominant performance factor of a BDD-based model
checker (paper footnote 1; Aziz-Tasiran-Brayton DAC'94), yet no single
static heuristic wins on every design.  Following the portfolio idea of
Grumberg-Livne-Markovitch ("Learning to Order BDD Variables in
Verification"), this package

* extracts structural features of the flat network — fanin cones, latch
  adjacency, the latch communication graph (:mod:`.features`),
* derives K candidate orders from them (:mod:`.heuristics`),
* races the candidates as single-worker pool tasks on the same check
  job and cancels the losers when the first finishes (:mod:`.race`),
* persists the winning order per design hash in ``.hsis-orders/`` with
  the same atomic-write / integrity-digest / tamper-heal discipline as
  the serve result cache (:mod:`.cache`), so repeat traffic skips the
  race entirely.

Verdicts are order-independent; the race only changes wall-clock time.
"""

from repro.ordering_portfolio.cache import (
    DEFAULT_ORDERS_DIR,
    OrderCache,
    order_digest,
)
from repro.ordering_portfolio.features import (
    communication_graph,
    design_digest,
    fanin_map,
    latch_supports,
)
from repro.ordering_portfolio.heuristics import (
    HEURISTICS,
    candidate_orders,
    order_for,
)
from repro.ordering_portfolio.race import (
    PortfolioCancelled,
    portfolio_order_for,
    run_portfolio_check,
)

__all__ = [
    "DEFAULT_ORDERS_DIR",
    "HEURISTICS",
    "OrderCache",
    "PortfolioCancelled",
    "candidate_orders",
    "communication_graph",
    "design_digest",
    "fanin_map",
    "latch_supports",
    "order_digest",
    "order_for",
    "portfolio_order_for",
    "run_portfolio_check",
]
