"""Race K candidate orders on one check job; first finisher wins.

Each candidate order becomes a single task in a ``WorkerPool`` with one
worker slot per candidate: every worker runs the *same* properties on
the *same* model, differing only in the variable order installed at
encode time.  The pool's ``progress`` callback fires on the first
successful envelope and calls :meth:`WorkerPool.cancel`, which reaps
every still-running loser (SIGTERM, then SIGKILL) — losers leak no
processes, and their envelopes come back ``cancelled``.

Verdicts are order-independent, so the winner's verdicts *are* the
serial verdicts (asserted by the parity tests); the race only buys
wall-clock time.  The winning order is persisted per design digest in
the :class:`~repro.ordering_portfolio.cache.OrderCache`, so the next
check of the same design skips the race entirely.

Race workers are plain pool workers (daemonic processes); the race must
therefore be driven from a process that may spawn children — the CLI
process or the serve server thread, never from inside another pool
worker.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.blifmv.ast import Model
from repro.ordering_portfolio.cache import DEFAULT_ORDERS_DIR, OrderCache
from repro.ordering_portfolio.features import design_digest
from repro.ordering_portfolio.heuristics import candidate_orders
from repro.parallel.check import PropertyVerdict, check_properties
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import STATUS_OK, ResultEnvelope, Task, TaskResult
from repro.perf import EngineStats


class PortfolioCancelled(Exception):
    """The race was cancelled from outside before any candidate won.

    Internal cancellation (the winner cancelling the losers) never
    raises this — only an external :meth:`WorkerPool.cancel`, e.g. the
    job server killing a running job, with no winner recorded yet.
    """


def portfolio_order_for(
    model: Model, k: int, seed: int
) -> Tuple[str, List[str]]:
    """Deterministic round-robin pick from the first ``k`` heuristics.

    The differential fuzzer uses this instead of racing: fuzz trials are
    tiny (a race would cost more than it saves) but sweeping the seed
    across heuristics exercises every candidate order against the
    explicit-state oracle.  Pure function of (model, k, seed), so the
    parallel sweep stays bit-identical to the serial one.
    """
    candidates = candidate_orders(model, k)
    name, order = candidates[seed % len(candidates)]
    return name, order


def _race_worker(model, properties, fairness_decls, order) -> TaskResult:
    """Pool task body: the whole property list under one candidate order.

    Raises when any property errors, so a candidate that cannot finish
    cleanly loses the race instead of publishing partial verdicts.
    """
    stats = EngineStats()
    verdicts = check_properties(
        model, list(properties), fairness_decls, jobs=1, stats=stats,
        order=list(order),
    )
    for verdict in verdicts:
        if not verdict.ok:
            raise RuntimeError(
                f"property {verdict.name} failed under candidate order: "
                f"{verdict.error or verdict.status}"
            )
    payload = [
        {
            "name": v.name,
            "formula": v.formula,
            "holds": v.holds,
            "seconds": v.seconds,
        }
        for v in verdicts
    ]
    return TaskResult({"verdicts": payload}, stats)


def _verdicts_from_payload(payload: List[Dict]) -> List[PropertyVerdict]:
    return [
        PropertyVerdict(
            name=entry["name"],
            formula=entry["formula"],
            holds=entry["holds"],
            seconds=entry["seconds"],
            status=STATUS_OK,
        )
        for entry in payload
    ]


def run_portfolio_check(
    model: Model,
    properties: Sequence[Tuple[str, object]],
    fairness_decls=(),
    k: int = 4,
    orders_dir: str = DEFAULT_ORDERS_DIR,
    cache: Optional[OrderCache] = None,
    stats: Optional[EngineStats] = None,
    timeout: Optional[float] = None,
    on_pool: Optional[Callable[[WorkerPool], None]] = None,
) -> Tuple[List[PropertyVerdict], Dict[str, object]]:
    """Check ``properties`` with a portfolio of ``k`` candidate orders.

    Warm path: the order cache holds a verified winner for this design
    digest — run serially in-process under that order, no race.  Cold
    path: race the candidates, cancel losers on the first success,
    persist the winner.  Either way the verdicts are exactly the serial
    ones.  Returns ``(verdicts, provenance)`` where provenance records
    the source (``cache`` / ``race`` / ``fallback``), winning heuristic,
    candidate count and race margin; the same facts land in ``stats``
    counters/meta and as tracer instants.

    ``on_pool`` (if given) receives the race's :class:`WorkerPool`
    before it runs, so a caller (the job server) can cancel the whole
    race from another thread.
    """
    stats = stats if stats is not None else EngineStats()
    cache = cache if cache is not None else OrderCache(orders_dir)
    properties = list(properties)
    digest = design_digest(model)
    declared = model.declared_variables()

    entry = cache.load(digest, declared)
    if entry is not None:
        stats.bump("portfolio_cache_hits")
        stats.meta["portfolio_source"] = "cache"
        stats.meta["portfolio_heuristic"] = entry["heuristic"]
        stats.tracer.instant(
            "portfolio.cache_hit", cat="portfolio",
            design=digest[:12], heuristic=entry["heuristic"],
        )
        verdicts = check_properties(
            model, properties, fairness_decls, jobs=1, stats=stats,
            order=entry["order"],
        )
        provenance = {
            "source": "cache",
            "heuristic": entry["heuristic"],
            "cache_hit": True,
            "candidates": 0,
            "margin_seconds": None,
        }
        return verdicts, provenance

    stats.bump("portfolio_cache_misses")
    candidates = candidate_orders(model, k)
    stats.tracer.instant(
        "portfolio.race", cat="portfolio",
        design=digest[:12], candidates=len(candidates),
        heuristics=[name for name, _ in candidates],
    )
    tasks = [
        Task(
            task_id=f"order[{name}]",
            fn=_race_worker,
            args=(model, tuple(properties), tuple(fairness_decls), order),
            timeout=timeout,
        )
        for name, order in candidates
    ]
    pool = WorkerPool(
        jobs=len(tasks), timeout=timeout, retries=0,
        tracer=stats.tracer,
    )
    if on_pool is not None:
        on_pool(pool)
    winner_ids: List[str] = []

    def first_success(envelope: ResultEnvelope) -> None:
        if envelope.status == STATUS_OK and not winner_ids:
            winner_ids.append(envelope.task_id)
            pool.cancel()

    envelopes = pool.run(tasks, progress=first_success)
    stats.bump("portfolio_races")

    winner_index: Optional[int] = None
    if winner_ids:
        for index, task in enumerate(tasks):
            if task.task_id == winner_ids[0]:
                winner_index = index
                break

    if winner_index is None and pool.cancelled:
        # No winner *and* a cancelled pool means someone outside killed
        # the race (we only cancel after recording a winner): abort
        # instead of burning the caller's thread on a serial fallback.
        raise PortfolioCancelled("portfolio race cancelled")

    if winner_index is None:
        # Every candidate errored / timed out: fall back to a plain
        # serial check under the seed order so a broken race can never
        # change availability, only speed.
        stats.bump("portfolio_race_failures")
        stats.meta["portfolio_source"] = "fallback"
        stats.meta["portfolio_heuristic"] = candidates[0][0]
        stats.tracer.instant(
            "portfolio.fallback", cat="portfolio", design=digest[:12],
        )
        verdicts = check_properties(
            model, properties, fairness_decls, jobs=1, stats=stats,
            order=candidates[0][1],
        )
        provenance = {
            "source": "fallback",
            "heuristic": candidates[0][0],
            "cache_hit": False,
            "candidates": len(candidates),
            "margin_seconds": None,
        }
        return verdicts, provenance

    winner_name, winner_order = candidates[winner_index]
    winner = envelopes[winner_index]
    if stats is not None and winner.stats is not None:
        stats.merge(winner.stats)
    loser_seconds = [
        e.seconds
        for i, e in enumerate(envelopes)
        if i != winner_index and e.seconds > 0.0
    ]
    margin = (
        max(0.0, min(loser_seconds) - winner.seconds)
        if loser_seconds
        else 0.0
    )
    cache.store(digest, winner_name, winner_order, margin_seconds=margin)
    stats.meta["portfolio_source"] = "race"
    stats.meta["portfolio_heuristic"] = winner_name
    stats.tracer.instant(
        "portfolio.winner", cat="portfolio",
        design=digest[:12], heuristic=winner_name,
        margin_seconds=round(margin, 6), candidates=len(candidates),
    )
    verdicts = _verdicts_from_payload(winner.value["verdicts"])
    provenance = {
        "source": "race",
        "heuristic": winner_name,
        "cache_hit": False,
        "candidates": len(candidates),
        "margin_seconds": margin,
    }
    return verdicts, provenance
