"""Persistent winning-order cache (``.hsis-orders/``).

One JSON file per design digest, written atomically
(:func:`repro.parallel.atomic.atomic_write_json`) and carrying an
integrity digest over the order payload — the same tamper-heal
discipline as the serve result cache (:mod:`repro.serve.cache`): a
truncated, tampered or garbage entry is detected on load, counted as
corrupt, treated as a miss, and healed by the atomic rewrite after the
caller re-races.  A corrupt order cache can therefore never change a
verdict — at worst it costs one extra race.

Unlike the result cache, a loaded entry is *also* validated against the
live model: the stored order must be an exact permutation of the
design's declared variables, otherwise it is corrupt by definition
(orders are only meaningful for the design they were raced on).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.bdd.ordering import validate_permutation
from repro.parallel.atomic import atomic_write_json

ORDERS_VERSION = 1

#: Default order-cache directory, relative to the working directory.
DEFAULT_ORDERS_DIR = ".hsis-orders"


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def order_digest(order: List[str]) -> str:
    """Integrity digest stored alongside (and checked against) an order."""
    return hashlib.sha256(_canonical(order).encode("utf-8")).hexdigest()


class OrderCache:
    """Integrity-checked map from design digest to winning order."""

    def __init__(self, root: str = DEFAULT_ORDERS_DIR) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0

    def path(self, design_sha: str) -> str:
        return os.path.join(self.root, f"{design_sha}.json")

    def load(
        self, design_sha: str, names: Iterable[str]
    ) -> Optional[Dict[str, Any]]:
        """Return the verified entry for ``design_sha``, or None.

        ``names`` are the live model's declared variables; the stored
        order must be an exact permutation of them.  Any unverifiable
        entry (unparseable JSON, key/digest mismatch, non-permutation)
        counts as corrupt *and* as a miss; the caller re-races and
        overwrites it atomically.
        """
        path = self.path(design_sha)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self.corrupt += 1
            self.misses += 1
            return None
        order = entry.get("order") if isinstance(entry, dict) else None
        if (
            not isinstance(entry, dict)
            or entry.get("design_sha") != design_sha
            or not isinstance(order, list)
            or not all(isinstance(name, str) for name in order)
            or entry.get("order_sha") != order_digest(order)
            or not isinstance(entry.get("heuristic"), str)
            or validate_permutation(order, names) is not None
        ):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        design_sha: str,
        heuristic: str,
        order: List[str],
        margin_seconds: float = 0.0,
    ) -> str:
        """Atomically write the winner for ``design_sha``; returns path."""
        path = self.path(design_sha)
        atomic_write_json(
            path,
            {
                "version": ORDERS_VERSION,
                "design_sha": design_sha,
                "heuristic": heuristic,
                "order": list(order),
                "order_sha": order_digest(list(order)),
                "margin_seconds": margin_seconds,
            },
        )
        self.stores += 1
        return path

    def entry_count(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.root) if name.endswith(".json")
            )
        except OSError:
            return 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "entries": self.entry_count(),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
        }
