"""K candidate variable orders from network structure.

Every heuristic maps a flat model to a permutation of
``model.declared_variables()`` (checked; a heuristic that produced an
invalid order would fall back to the declared order rather than crash a
race worker).  The portfolio is deliberately diverse:

``seed``
    The engine's current default — the interacting-FSM affinity order
    (:func:`repro.network.encode.variable_order`).  Racing it as the
    control means the portfolio can never lose to the status quo by
    more than the race overhead.
``interleave``
    Static interleave: each latch followed immediately by its next-state
    wire and the wire's direct combinational fanin.
``fanin_dfs``
    Depth-first traversal of the fanin cones from the model outputs and
    latch next-state wires; variables appear in discovery order, which
    keeps each cone's variables contiguous.
``latch_proximity``
    Aziz-Tasiran-Brayton interacting-FSM order over the latch
    communication graph (:func:`repro.bdd.ordering.interacting_fsm_order`),
    with full transitive supports.
``mincut``
    Recursive bisection of the latch communication graph: split the
    latch set minimizing cut weight (greedy improvement passes), recurse
    into the halves, concatenate; combinational variables attach to the
    latch whose support uses them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.bdd.ordering import interacting_fsm_order, validate_permutation
from repro.blifmv.ast import Model
from repro.network.encode import variable_order
from repro.ordering_portfolio.features import (
    communication_graph,
    direct_combinational_fanin,
    edge_weight,
    latch_supports,
)

#: Heuristic names in portfolio order; ``--portfolio K`` races the
#: first K.  ``seed`` first, so K=1 degenerates to the status quo.
HEURISTICS: Tuple[str, ...] = (
    "seed",
    "interleave",
    "fanin_dfs",
    "latch_proximity",
    "mincut",
)


def _complete(prefix: Sequence[str], model: Model) -> List[str]:
    """Extend ``prefix`` to a full permutation of the declared variables.

    Drops names not declared by the model, dedupes, and appends every
    missing declared variable in declaration order.
    """
    declared = model.declared_variables()
    declared_set = set(declared)
    order: List[str] = []
    seen: Set[str] = set()
    for name in prefix:
        if name in declared_set and name not in seen:
            order.append(name)
            seen.add(name)
    order.extend(name for name in declared if name not in seen)
    return order


def seed_order(model: Model) -> List[str]:
    return variable_order(model)


def interleave_order(model: Model) -> List[str]:
    prefix: List[str] = []
    for latch in model.latches:
        prefix.append(latch.output)
        prefix.append(latch.input)
        prefix.extend(direct_combinational_fanin(model, latch.input))
    return _complete(prefix, model)


def fanin_dfs_order(model: Model) -> List[str]:
    from repro.ordering_portfolio.features import fanin_map

    fanin = fanin_map(model)
    state = {latch.output for latch in model.latches}
    roots = list(model.outputs) + [latch.input for latch in model.latches]
    prefix: List[str] = []
    seen: Set[str] = set()
    for root in roots:
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            prefix.append(name)
            if name in state and name != root:
                continue  # cones are cut at state variables
            # Reversed so the first driver is explored first (DFS).
            stack.extend(reversed(sorted(fanin.get(name, ()))))
    return _complete(prefix, model)


def latch_proximity_order(model: Model) -> List[str]:
    supports = latch_supports(model)
    state = set(supports)
    nonstate = [
        name for name in model.declared_variables() if name not in state
    ]
    return _complete(interacting_fsm_order(supports, nonstate), model)


def _bisect(
    latches: List[str], weights: Dict[Tuple[str, str], int]
) -> List[str]:
    """Recursive min-cut bisection; returns a linear latch arrangement."""
    if len(latches) <= 2:
        return list(latches)
    half = len(latches) // 2
    left, right = list(latches[:half]), list(latches[half:])

    def cut() -> int:
        return sum(
            edge_weight(weights, a, b) for a in left for b in right
        )

    # Greedy improvement: keep taking the single best swap while it
    # strictly reduces the cut.  Deterministic (first best swap wins).
    best = cut()
    improved = True
    while improved:
        improved = False
        for i, a in enumerate(left):
            for j, b in enumerate(right):
                left[i], right[j] = b, a
                candidate = cut()
                if candidate < best:
                    best = candidate
                    improved = True
                else:
                    left[i], right[j] = a, b
    return _bisect(left, weights) + _bisect(right, weights)


def mincut_order(model: Model) -> List[str]:
    weights = communication_graph(model)
    latch_order = _bisect([l.output for l in model.latches], weights)
    supports = latch_supports(model)
    state = set(supports)
    # Attach every combinational/input variable after the latch whose
    # support mentions it (first latch in the arrangement wins).
    prefix: List[str] = []
    placed: Set[str] = set()
    for latch in latch_order:
        prefix.append(latch)
        placed.add(latch)
        for name in sorted(supports[latch]):
            if name not in state and name not in placed:
                prefix.append(name)
                placed.add(name)
    return _complete(prefix, model)


_ORDER_FN = {
    "seed": seed_order,
    "interleave": interleave_order,
    "fanin_dfs": fanin_dfs_order,
    "latch_proximity": latch_proximity_order,
    "mincut": mincut_order,
}


def order_for(model: Model, heuristic: str) -> List[str]:
    """The named heuristic's order, guaranteed a valid permutation."""
    try:
        fn = _ORDER_FN[heuristic]
    except KeyError:
        raise ValueError(
            f"unknown ordering heuristic {heuristic!r}; "
            f"known: {', '.join(HEURISTICS)}"
        ) from None
    order = fn(model)
    if validate_permutation(order, model.declared_variables()) is not None:
        return list(model.declared_variables())  # defensive fallback
    return order


def candidate_orders(
    model: Model, k: int
) -> List[Tuple[str, List[str]]]:
    """The first ``k`` heuristics' (name, order) pairs, deduplicated.

    ``k`` is clamped to the portfolio size.  A heuristic whose order
    coincides with an earlier candidate is dropped — racing the same
    order twice only burns a worker — so fewer than ``k`` candidates can
    come back (always at least one).
    """
    k = max(1, min(int(k), len(HEURISTICS)))
    out: List[Tuple[str, List[str]]] = []
    seen: Set[Tuple[str, ...]] = set()
    for name in HEURISTICS[:k]:
        order = order_for(model, name)
        key = tuple(order)
        if key in seen:
            continue
        seen.add(key)
        out.append((name, order))
    return out
