"""Structural features of a flat BLIF-MV network.

The order heuristics in :mod:`repro.ordering_portfolio.heuristics` never
look at BDDs — they read the *wiring*: which variable drives which,
which latches read each other's state, and how strongly two machines
communicate.  Everything here is derived from the flat
:class:`~repro.blifmv.ast.Model` alone, so features can be extracted
(and candidate orders built) before a single BDD node is allocated.

:func:`design_digest` is the identity under which winning orders are
persisted: a SHA-256 over a canonical structural dump of the model, so
the ``.hsis-orders/`` cache keys on what the design *is*, not on how
its source file happened to be formatted.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Set, Tuple

from repro.blifmv.ast import Model


def design_digest(model: Model) -> str:
    """Canonical content hash of a flat model's structure.

    Covers everything that affects verification semantics: variable
    domains, table relations (rows, defaults), latches with resets, and
    the synchrony tree.  Comment/whitespace/section-order changes in the
    source file do not fork the digest.
    """
    dump = {
        "name": model.name,
        "inputs": list(model.inputs),
        "outputs": list(model.outputs),
        "domains": {
            name: list(model.domain(name))
            for name in model.declared_variables()
        },
        "tables": [
            {
                "inputs": list(table.inputs),
                "outputs": list(table.outputs),
                "rows": [
                    [repr(e) for e in row.inputs]
                    + ["->"]
                    + [repr(e) for e in row.outputs]
                    for row in table.rows
                ],
                "default": (
                    None
                    if table.default is None
                    else [repr(e) for e in table.default]
                ),
            }
            for table in model.tables
        ],
        "latches": [
            [latch.input, latch.output, list(latch.reset)]
            for latch in model.latches
        ],
        "synchrony": repr(model.synchrony),
    }
    blob = json.dumps(dump, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fanin_map(model: Model) -> Dict[str, Set[str]]:
    """Direct drivers of every variable.

    A table output is driven by the table's inputs; a latch output is
    driven (sequentially) by its input wire.  Primary inputs have no
    drivers.
    """
    fanin: Dict[str, Set[str]] = {
        name: set() for name in model.declared_variables()
    }
    for table in model.tables:
        for out in table.outputs:
            fanin[out].update(table.inputs)
    for latch in model.latches:
        fanin[latch.output].add(latch.input)
    return fanin


def fanin_cone(
    wire: str, fanin: Dict[str, Set[str]], boundary: Set[str]
) -> Set[str]:
    """Transitive fanin of ``wire``, cut at ``boundary`` variables.

    Boundary variables (latch outputs, primary inputs) are *included* in
    the cone but not expanded — the cone of a latch's next-state wire is
    the combinational logic feeding it plus the state/input variables it
    reads, which is exactly the latch's support.
    """
    cone: Set[str] = set()
    stack = [wire]
    while stack:
        name = stack.pop()
        if name in cone:
            continue
        cone.add(name)
        if name in boundary and name != wire:
            continue
        stack.extend(fanin.get(name, ()))
    return cone


def latch_supports(model: Model) -> Dict[str, Set[str]]:
    """Each latch's support: the fanin cone of its next-state wire.

    Maps latch output name to the set of variables its next-state
    function transitively reads (other latch outputs, primary inputs,
    and the combinational wires in between).  This is the FSM
    communication graph of Aziz-Tasiran-Brayton: latch ``a`` reads latch
    ``b`` iff ``b in latch_supports(model)[a]``.
    """
    fanin = fanin_map(model)
    state = {latch.output for latch in model.latches}
    boundary = state | set(model.inputs)
    return {
        latch.output: fanin_cone(latch.input, fanin, boundary)
        for latch in model.latches
    }


def communication_graph(model: Model) -> Dict[Tuple[str, str], int]:
    """Weighted latch-to-latch communication edges.

    The weight of an (unordered, sorted) latch pair counts how much the
    two machines talk: 2 for each direct state read (``a`` reads ``b``
    or vice versa) plus 1 per shared support variable.  Heuristics that
    partition or linearize the latch set (min-cut, proximity) maximize
    intra-group weight.
    """
    supports = latch_supports(model)
    latches = [latch.output for latch in model.latches]
    weights: Dict[Tuple[str, str], int] = {}
    for i, a in enumerate(latches):
        for b in latches[i + 1:]:
            key = (a, b) if a < b else (b, a)
            weight = len(supports[a] & supports[b])
            if b in supports[a]:
                weight += 2
            if a in supports[b]:
                weight += 2
            if weight:
                weights[key] = weight
    return weights


def edge_weight(
    weights: Dict[Tuple[str, str], int], a: str, b: str
) -> int:
    """Weight of the (a, b) communication edge (0 when absent)."""
    if a > b:
        a, b = b, a
    return weights.get((a, b), 0)


def direct_combinational_fanin(model: Model, wire: str) -> List[str]:
    """Inputs of the table(s) driving ``wire``, in declaration order."""
    seen: Dict[str, None] = {}
    for table in model.tables:
        if wire in table.outputs:
            for name in table.inputs:
                seen.setdefault(name)
    return list(seen)
