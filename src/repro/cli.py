"""hsis: the interactive shell tying the environment together (Figure 1).

The command set mirrors the HSIS workflow: read a design (Verilog or
BLIF-MV), read properties (PIF), build the transition relation with an
early-quantification schedule, compute reached states, run the model
checker and the language-containment checker, and debug failures::

    hsis> read_verilog design.v
    hsis> read_pif props.pif
    hsis> build_tr greedy
    hsis> comp_reach
    hsis> mc                # all CTL properties from the PIF file
    hsis> lc                # all automata properties from the PIF file
    hsis> debug_mc mutex    # interactive formula unfolding
    hsis> sim_random 20

Run ``hsis script.cmd`` to execute a command file, or ``hsis`` for a
REPL.  Every command is also usable programmatically through
:class:`HsisShell` (the test suite drives it that way).
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import Callable, Dict, List, Optional

from repro.blifmv import elaborate, flatten, parse_file as parse_blifmv_file, write_file
from repro.ctl import ModelChecker, parse_ctl
from repro.debug import CtlDebugger, format_lc_report
from repro.lc import check_containment
from repro.network import SymbolicFsm
from repro.pif import PifFile, parse_pif_file
from repro.sim import Simulator
from repro.trace import Tracer, safe_write_trace, summary as trace_summary
from repro.verilog import compile_verilog


class CliError(Exception):
    """User-facing command errors (bad arguments, missing state)."""


class HsisShell:
    """Stateful command interpreter; each command returns its output text."""

    def __init__(
        self,
        auto_gc: Optional[int] = None,
        cache_limit: Optional[int] = None,
        auto_reorder: Optional[int] = None,
        show_stats: bool = False,
        tracer: Optional[Tracer] = None,
        batch_apply: Optional[bool] = None,
    ) -> None:
        self.auto_gc = auto_gc
        self.cache_limit = cache_limit
        self.auto_reorder = auto_reorder
        self.batch_apply = batch_apply
        self.show_stats = show_stats
        self.tracer = tracer
        self.design = None
        self.flat = None
        self.fsm: Optional[SymbolicFsm] = None
        self.pif: Optional[PifFile] = None
        self.reach = None
        self.simulator: Optional[Simulator] = None
        self.checker: Optional[ModelChecker] = None
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "read_blif_mv": self.cmd_read_blif_mv,
            "read_verilog": self.cmd_read_verilog,
            "read_pif": self.cmd_read_pif,
            "write_blif_mv": self.cmd_write_blif_mv,
            "build_tr": self.cmd_build_tr,
            "comp_reach": self.cmd_comp_reach,
            "print_stats": self.cmd_print_stats,
            "mc": self.cmd_mc,
            "lc": self.cmd_lc,
            "debug_mc": self.cmd_debug_mc,
            "debug_mc_interactive": self.cmd_debug_mc_interactive,
            "sim_init": self.cmd_sim_init,
            "sim_step": self.cmd_sim_step,
            "sim_random": self.cmd_sim_random,
            "coi": self.cmd_coi,
            "delay": self.cmd_delay,
            "bisim": self.cmd_bisim,
            "refine": self.cmd_refine,
            "write_dot": self.cmd_write_dot,
            "fuzz": self.cmd_fuzz,
            "help": self.cmd_help,
        }
        self.input_fn = input  # overridable for scripted interaction

    # ------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Execute one command line; returns printable output."""
        parts = shlex.split(line, comments=True)
        if not parts:
            return ""
        command, args = parts[0], parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            raise CliError(f"unknown command {command!r} (try 'help')")
        return handler(args)

    def run_script(self, lines) -> str:
        out = []
        for line in lines:
            result = self.execute(line)
            if result:
                out.append(result)
        return "\n".join(out)

    # -- design loading ---------------------------------------------------

    def _make_fsm(self, flat) -> SymbolicFsm:
        return SymbolicFsm(
            flat, auto_gc=self.auto_gc, cache_limit=self.cache_limit,
            auto_reorder=self.auto_reorder, tracer=self.tracer,
            batch_apply=self.batch_apply,
        )

    def _after_load(self) -> str:
        assert self.design is not None
        self.flat = flatten(self.design)
        self.fsm = self._make_fsm(self.flat)
        self.reach = None
        self.simulator = None
        self.checker = None
        elapsed = self.fsm.stats.phase_seconds("encode")
        return (
            f"loaded {self.design.root}: {len(self.flat.latches)} latches, "
            f"{len(self.flat.tables)} tables ({elapsed:.2f}s encode)"
        )

    def cmd_read_blif_mv(self, args: List[str]) -> str:
        """read_blif_mv <file> — load a BLIF-MV design."""
        if len(args) != 1:
            raise CliError("usage: read_blif_mv <file>")
        self.design = parse_blifmv_file(args[0])
        return self._after_load()

    def cmd_read_verilog(self, args: List[str]) -> str:
        """read_verilog <file> [root] — compile Verilog via vl2mv and load."""
        if len(args) not in (1, 2):
            raise CliError("usage: read_verilog <file> [root-module]")
        with open(args[0]) as handle:
            self.design = compile_verilog(
                handle.read(), root=args[1] if len(args) == 2 else None
            )
        return self._after_load()

    def cmd_read_pif(self, args: List[str]) -> str:
        """read_pif <file> — load properties and fairness constraints."""
        if len(args) != 1:
            raise CliError("usage: read_pif <file>")
        self.pif = parse_pif_file(args[0])
        return (
            f"loaded {len(self.pif.ctl_props)} CTL properties, "
            f"{len(self.pif.automata)} automata, "
            f"{len(self.pif.fairness)} fairness constraints"
        )

    def cmd_write_blif_mv(self, args: List[str]) -> str:
        """write_blif_mv <file> — dump the loaded design as BLIF-MV."""
        if len(args) != 1:
            raise CliError("usage: write_blif_mv <file>")
        if self.design is None:
            raise CliError("no design loaded")
        write_file(self.design, args[0])
        return f"wrote {args[0]}"

    # -- core verification flow ---------------------------------------------

    def _need_fsm(self) -> SymbolicFsm:
        if self.fsm is None:
            raise CliError("no design loaded (read_blif_mv / read_verilog first)")
        return self.fsm

    def cmd_build_tr(self, args: List[str]) -> str:
        """build_tr [greedy|linear|monolithic] — build the product relation."""
        method = args[0] if args else "greedy"
        fsm = self._need_fsm()
        before = fsm.stats.phase_seconds("build_tr")
        trans = fsm.build_transition(method=method)
        elapsed = fsm.stats.phase_seconds("build_tr") - before
        assert fsm.quantify_result is not None
        return (
            f"transition relation: {fsm.bdd.size(trans)} nodes "
            f"(peak {fsm.quantify_result.peak_size}, schedule={method}, "
            f"{elapsed:.2f}s)"
        )

    def cmd_comp_reach(self, args: List[str]) -> str:
        """comp_reach [--partitioned] — compute the reachable states."""
        fsm = self._need_fsm()
        partitioned = "--partitioned" in args
        self.reach = fsm.reachable(partitioned=partitioned)
        return (
            f"reached {fsm.count_states(self.reach.reached)} states in "
            f"{self.reach.iterations} iterations ({self.reach.seconds:.2f}s)"
        )

    def cmd_print_stats(self, args: List[str]) -> str:
        """print_stats — BDD manager and design statistics."""
        fsm = self._need_fsm()
        stats = fsm.bdd.stats()
        lines = [
            f"latches: {len(fsm.latches)}",
            f"conjuncts: {len(fsm.conjuncts)}",
            "bdd: {live_nodes} live nodes, {variables} boolean vars, "
            "{cache_entries} cache entries".format(**stats),
        ]
        if self.reach is not None:
            lines.append(f"reached states: {fsm.count_states(self.reach.reached)}")
        lines.append(fsm.stats.format())
        return "\n".join(lines)

    def _make_checker(self) -> ModelChecker:
        fsm = self._need_fsm()
        fairness = self.pif.bind_fairness(fsm) if self.pif is not None else None
        if self.checker is None:
            self.checker = ModelChecker(
                fsm,
                fairness=fairness,
                reached=self.reach.reached if self.reach is not None else None,
            )
        return self.checker

    def cmd_mc(self, args: List[str]) -> str:
        """mc [--jobs N] [formula...] — model check PIF CTL properties.

        With ``--jobs N`` (N > 1) and more than one loaded property, the
        independent properties are sharded across worker processes; the
        verdicts are identical to the serial run (see docs/parallel.md).
        """
        workers = 1
        if "--jobs" in args:
            at = args.index("--jobs")
            try:
                workers = int(args[at + 1])
            except (IndexError, ValueError):
                raise CliError("usage: mc [--jobs N] [formula...]")
            if workers <= 0:
                raise CliError("mc: --jobs must be a positive integer")
            args = args[:at] + args[at + 2:]
        jobs = []
        if args:
            text = " ".join(args)
            jobs.append((text, parse_ctl(text)))
        else:
            if self.pif is None or not self.pif.ctl_props:
                raise CliError("no CTL properties loaded; read_pif or pass a formula")
            jobs = list(self.pif.ctl_props)
        if workers > 1 and len(jobs) > 1:
            from repro.parallel import check_properties

            self._need_fsm()  # same preconditions as the serial path
            verdicts = check_properties(
                self.flat,
                jobs,
                self.pif.fairness if self.pif is not None else (),
                jobs=workers,
            )
            return "\n".join(v.format() for v in verdicts)
        checker = self._make_checker()
        out = []
        for name, formula in jobs:
            result = checker.check(formula)
            verdict = "passed" if result.holds else "FAILED"
            out.append(f"mc {name}: {verdict} ({result.seconds:.2f}s)  [{formula}]")
        return "\n".join(out)

    def cmd_lc(self, args: List[str]) -> str:
        """lc [name...] — language containment for PIF automata."""
        if self.pif is None or not self.pif.automata:
            raise CliError("no automata loaded; read_pif first")
        if self.design is None:
            raise CliError("no design loaded")
        names = args if args else [a.name for a in self.pif.automata]
        out = []
        for name in names:
            automaton = self.pif.automaton(name)
            # Each LC run attaches a monitor, so it needs a fresh machine.
            fsm = self._make_fsm(self.flat)
            fairness = self.pif.bind_fairness(fsm)
            result = check_containment(fsm, automaton, system_fairness=fairness)
            verdict = "passed" if result.holds else "FAILED"
            out.append(f"lc {name}: {verdict} ({result.seconds:.2f}s)")
            if not result.holds:
                out.append(format_lc_report(result))
        return "\n".join(out)

    def cmd_debug_mc(self, args: List[str]) -> str:
        """debug_mc <formula|pif-name> — print the CTL explanation tree."""
        if not args:
            raise CliError("usage: debug_mc <formula or PIF property name>")
        text = " ".join(args)
        formula = None
        if self.pif is not None:
            for name, f in self.pif.ctl_props:
                if name == text:
                    formula = f
                    break
        if formula is None:
            formula = parse_ctl(text)
        checker = self._make_checker()
        debugger = CtlDebugger(checker)
        return debugger.explain(formula).format()

    def cmd_debug_mc_interactive(self, args: List[str]) -> str:
        """debug_mc_interactive <formula> — unfold a formula step by step.

        At each node the sub-formulas responsible for the verdict are
        listed; type a number to descend (the paper §6.2 interaction:
        'the user can be given the choice of choosing which formula he
        wants certified false'), 'u' to go back up, 'q' to stop.
        """
        if not args:
            raise CliError("usage: debug_mc_interactive <formula>")
        checker = self._make_checker()
        debugger = CtlDebugger(checker)
        node = debugger.explain(parse_ctl(" ".join(args)))
        stack = [node]
        transcript: List[str] = []
        while True:
            current = stack[-1]
            verdict = "holds" if current.holds else "FAILS"
            transcript.append(f"{current.formula}  {verdict}")
            if current.note:
                transcript.append(f"  note: {current.note}")
            for step in current.path:
                transcript.append(f"  | {step.format()}")
            for index, child in enumerate(current.children):
                child_verdict = "holds" if child.holds else "FAILS"
                transcript.append(f"  [{index}] {child.formula}  {child_verdict}")
            if not current.children:
                transcript.append("  (leaf)")
            try:
                choice = self.input_fn("debug> ").strip()
            except EOFError:
                break
            if choice in ("q", "quit", ""):
                break
            if choice in ("u", "up"):
                if len(stack) > 1:
                    stack.pop()
                continue
            try:
                index = int(choice)
                stack.append(current.children[index])
            except (ValueError, IndexError):
                transcript.append(f"  ? bad choice {choice!r}")
        return "\n".join(transcript)

    # -- abstraction / timing / minimization -----------------------------------

    def cmd_coi(self, args: List[str]) -> str:
        """coi <net...> — reduce the design to the cone of influence."""
        from repro.network.abstraction import cone_of_influence

        if not args:
            raise CliError("usage: coi <observed-net...>")
        if self.flat is None:
            raise CliError("no design loaded")
        reduced, report = cone_of_influence(self.flat, args)
        self.flat = reduced
        self.fsm = self._make_fsm(reduced)
        self.reach = None
        self.checker = None
        self.simulator = None
        return (
            f"cone of influence: kept {len(report.kept_latches)} latches "
            f"({report.kept_tables} tables), dropped "
            f"{len(report.dropped_latches)} latches "
            f"({report.dropped_tables} tables)"
        )

    def cmd_delay(self, args: List[str]) -> str:
        """delay <latch> <min> <max> — attach an inertial delay bound."""
        from repro.network.timing import DelayBound, elaborate_delays

        if len(args) != 3:
            raise CliError("usage: delay <latch-output> <min> <max>")
        if self.flat is None:
            raise CliError("no design loaded")
        bound = DelayBound(int(args[1]), int(args[2]))
        self.flat = elaborate_delays(self.flat, {args[0]: bound})
        self.fsm = self._make_fsm(self.flat)
        self.reach = None
        self.checker = None
        self.simulator = None
        return (
            f"latch {args[0]!r} delayed by [{bound.low}, {bound.high}] ticks "
            f"({len(self.flat.latches)} latches total)"
        )

    def cmd_bisim(self, args: List[str]) -> str:
        """bisim [net=value...] — bisimulation quotient statistics."""
        from repro.minimize import bisimulation_partition, quotient_size

        fsm = self._need_fsm()
        fsm.require_transition()
        checker = self._make_checker()
        observables = [checker.eval(spec) for spec in args]
        within = self.reach.reached if self.reach is not None else None
        partition = bisimulation_partition(fsm, observables, within=within)
        total = fsm.count_states(
            within if within is not None else fsm.state_domain())
        return (
            f"bisimulation: {total} states -> {quotient_size(partition)} "
            f"classes ({partition.iterations} refinement passes)"
        )

    def cmd_refine(self, args: List[str]) -> str:
        """refine <spec.mv|spec.v> <observable...> — check refinement."""
        from repro.refine import check_refinement

        if len(args) < 2:
            raise CliError("usage: refine <spec-file> <observable...>")
        if self.flat is None:
            raise CliError("no design loaded")
        path = args[0]
        if path.endswith(".v"):
            with open(path) as handle:
                spec = flatten(compile_verilog(handle.read()))
        else:
            spec = flatten(parse_blifmv_file(path))
        result = check_refinement(self.flat, spec, args[1:])
        if result.holds:
            return (
                f"refinement HOLDS: {self.flat.name} refines {spec.name} "
                f"on {args[1:]} ({result.iterations} iterations)"
            )
        state = " ".join(
            f"{k}={v}" for k, v in sorted((result.unmatched_initial or {}).items())
        )
        return f"refinement FAILS: unmatched initial state {state}"

    def cmd_write_dot(self, args: List[str]) -> str:
        """write_dot <file> — dump the transition relation as Graphviz."""
        from repro.bdd.dump import to_dot

        if len(args) != 1:
            raise CliError("usage: write_dot <file>")
        fsm = self._need_fsm()
        roots = {"trans": fsm.require_transition(), "init": fsm.init}
        if self.reach is not None:
            roots["reached"] = self.reach.reached
        with open(args[0], "w") as handle:
            handle.write(to_dot(fsm.bdd, roots))
        return f"wrote {args[0]} ({fsm.bdd.size(list(roots.values()))} nodes)"

    # -- simulation -----------------------------------------------------------

    def _need_sim(self) -> Simulator:
        if self.simulator is None:
            self.simulator = Simulator(self._need_fsm(), seed=0)
            self.simulator.reset()
        return self.simulator

    def cmd_sim_init(self, args: List[str]) -> str:
        """sim_init — (re)start simulation from an initial state."""
        sim = Simulator(self._need_fsm(), seed=0)
        self.simulator = sim
        state = sim.reset()
        return "simulation at " + " ".join(
            f"{k}={v}" for k, v in sorted(state.items())
        )

    def cmd_sim_step(self, args: List[str]) -> str:
        """sim_step [choice] — advance one tick (optionally pick successor)."""
        sim = self._need_sim()
        choice = int(args[0]) if args else None
        state = sim.step(choice=choice)
        return "-> " + " ".join(f"{k}={v}" for k, v in sorted(state.items()))

    def cmd_sim_random(self, args: List[str]) -> str:
        """sim_random <n> — run n random steps and report coverage."""
        steps = int(args[0]) if args else 10
        sim = self._need_sim()
        sim.run(steps)
        return (
            f"ran {steps} steps, visited {sim.visited_count()} distinct states\n"
            + sim.trace.format()
        )

    def cmd_fuzz(self, args: List[str]) -> str:
        """fuzz [trials] [seed] — differential sweep vs the explicit oracle."""
        from repro.oracle import run_sweep

        if len(args) > 2:
            raise CliError("usage: fuzz [trials] [seed]")
        try:
            trials = int(args[0]) if args else 25
            seed0 = int(args[1]) if len(args) > 1 else 0
        except ValueError as exc:
            raise CliError(f"fuzz: bad number: {exc}")
        sweep = run_sweep(trials, seed0=seed0, auto_reorder=self.auto_reorder,
                          batch_apply=self.batch_apply)
        return sweep.summary()

    def cmd_help(self, args: List[str]) -> str:
        """help — list commands."""
        lines = []
        for name in sorted(self._commands):
            doc = (self._commands[name].__doc__ or "").strip().splitlines()
            lines.append(doc[0] if doc else name)
        return "\n".join(lines)


def _print_final_stats(shell: HsisShell) -> None:
    if shell.show_stats and shell.fsm is not None:
        print(shell.fsm.stats.format())


def _write_trace_file(tracer: Optional[Tracer], path: Optional[str]) -> bool:
    """Write the run's trace; on failure print a clear error, not a
    traceback (and never crash after the verification work succeeded).

    Returns False when the file could not be written so callers can
    surface it in their exit code.  Serve mode reuses the same
    :func:`repro.trace.export.safe_write_trace` underneath for its
    per-job trace files.
    """
    if tracer is None or path is None:
        return True
    fmt, error = safe_write_trace(tracer, path)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return False
    print(f"trace: wrote {len(tracer)} events to {path} ({fmt})")
    return True


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _fuzz_main(argv: List[str]) -> int:
    """``hsis fuzz`` — run the differential fuzz sweep from the shell."""
    from repro.oracle import run_sweep
    from repro.perf import EngineStats

    parser = argparse.ArgumentParser(
        prog="hsis fuzz",
        description=(
            "Cross-check the symbolic engines against the explicit-state "
            "oracle on randomly generated designs; any divergence is "
            "shrunk and recorded as a corpus repro."
        ),
    )
    parser.add_argument(
        "--trials", type=_positive_int, default=100, metavar="N",
        help="number of seeded trials to run (default 100)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="first seed; trial i uses seed S+i (default 0)",
    )
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="write shrunk repros of any divergence into DIR",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="record failing cases without minimizing them first",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print aggregate engine statistics after the sweep",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="shard the seed range across N worker processes (default 1)",
    )
    parser.add_argument(
        "--auto-reorder", type=_positive_int, default=None, metavar="N",
        help=(
            "arm dynamic variable reordering (sifting at safe points) in "
            "every engine under test once its table exceeds N nodes"
        ),
    )
    parser.add_argument(
        "--portfolio", type=_positive_int, default=None, metavar="K",
        help=(
            "exercise the first K ordering-portfolio heuristics: trial i "
            "runs under heuristic i mod K (deterministic round-robin, no "
            "racing; see docs/ordering.md)"
        ),
    )
    parser.add_argument(
        "--shared-shapes", action="store_true",
        help=(
            "exercise shared-shape elaboration: every trial additionally "
            "runs a two-instance replica of the generated design through "
            "both shared-shape and plain-flatten encodes and diffs their "
            "reachable state sets (see docs/hierarchy.md)"
        ),
    )
    parser.add_argument(
        "--batch-apply", dest="batch_apply", action="store_true",
        default=None,
        help=(
            "force the frontier-batched apply engine on in every engine "
            "under test (default: on unless HSIS_BATCH_APPLY=0)"
        ),
    )
    parser.add_argument(
        "--no-batch-apply", dest="batch_apply", action="store_false",
        help="run every engine under test on the scalar reference path",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help=(
            "record a structured event trace (.jsonl, .txt summary, or "
            "Chrome/Perfetto JSON by extension)"
        ),
    )
    opts = parser.parse_args(argv)
    stats = EngineStats()
    if opts.trace:
        stats.tracer = Tracer()

    def progress(report) -> None:
        if not report.ok:
            for div in report.divergences:
                print(div, file=sys.stderr)

    if opts.jobs > 1:
        from repro.parallel import run_sweep_parallel

        sweep = run_sweep_parallel(
            opts.trials,
            seed0=opts.seed,
            jobs=opts.jobs,
            stats=stats,
            corpus_dir=opts.corpus,
            shrink=not opts.no_shrink,
            progress=progress,
            auto_reorder=opts.auto_reorder,
            portfolio=opts.portfolio,
            shared_shapes=opts.shared_shapes,
            batch_apply=opts.batch_apply,
        )
    else:
        sweep = run_sweep(
            opts.trials,
            seed0=opts.seed,
            stats=stats,
            corpus_dir=opts.corpus,
            shrink=not opts.no_shrink,
            progress=progress,
            auto_reorder=opts.auto_reorder,
            portfolio=opts.portfolio,
            shared_shapes=opts.shared_shapes,
            batch_apply=opts.batch_apply,
        )
    print(sweep.summary())
    if opts.stats:
        print(stats.format())
    trace_ok = _write_trace_file(stats.tracer if opts.trace else None, opts.trace)
    return 0 if sweep.ok and trace_ok else 1


def _check_main(argv: List[str]) -> int:
    """``hsis check`` — batch multi-property model checking."""
    from repro.parallel import check_properties
    from repro.perf import EngineStats

    parser = argparse.ArgumentParser(
        prog="hsis check",
        description=(
            "Model check every CTL property of a PIF file against a "
            "design; independent properties are sharded across worker "
            "processes with --jobs."
        ),
    )
    parser.add_argument("design", help="BLIF-MV (.mv) or Verilog (.v) design")
    parser.add_argument("pif", help="PIF file with the CTL properties")
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="check up to N properties concurrently (default 1)",
    )
    parser.add_argument(
        "--portfolio", type=_positive_int, default=None, metavar="K",
        help=(
            "race K candidate variable orders as worker processes, keep "
            "the first finisher, and remember the winning order per "
            "design in the order cache (see docs/ordering.md)"
        ),
    )
    parser.add_argument(
        "--orders-dir", default=None, metavar="DIR",
        help="winning-order cache directory (default .hsis-orders)",
    )
    parser.add_argument(
        "--results", default=None, metavar="FILE",
        help=(
            "write the verdicts as deterministic JSON (no timings), "
            "byte-identical across --jobs/--portfolio settings"
        ),
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-property deadline; overrunning checks report as timeout",
    )
    parser.add_argument(
        "--shared-shapes", dest="shared_shapes", action="store_true",
        default=True,
        help=(
            "encode each distinct subcircuit shape once and instantiate "
            "replicas by variable substitution (default; no-op on "
            "single-instance designs, overridden by --portfolio)"
        ),
    )
    parser.add_argument(
        "--no-shared-shapes", dest="shared_shapes", action="store_false",
        help="always encode every instance's tables from scratch",
    )
    parser.add_argument(
        "--no-batch-apply", dest="batch_apply", action="store_false",
        default=None,
        help=(
            "build every BDD on the scalar reference path instead of the "
            "frontier-batched apply engine"
        ),
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print aggregate engine statistics after the run",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help=(
            "record a structured event trace (.jsonl, .txt summary, or "
            "Chrome/Perfetto JSON by extension)"
        ),
    )
    opts = parser.parse_args(argv)
    try:
        if opts.design.endswith(".v"):
            with open(opts.design) as handle:
                design = compile_verilog(handle.read())
        else:
            design = parse_blifmv_file(opts.design)
        elab = elaborate(design)
        flat = elab.flat
        pif = parse_pif_file(opts.pif)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not pif.ctl_props:
        print("error: no CTL properties in the PIF file", file=sys.stderr)
        return 2
    stats = EngineStats()
    if opts.trace:
        stats.tracer = Tracer()
    if opts.portfolio is not None:
        from repro.ordering_portfolio import DEFAULT_ORDERS_DIR, run_portfolio_check

        verdicts, provenance = run_portfolio_check(
            flat,
            pif.ctl_props,
            pif.fairness,
            k=opts.portfolio,
            orders_dir=opts.orders_dir or DEFAULT_ORDERS_DIR,
            stats=stats,
            timeout=opts.timeout,
        )
        print(
            f"portfolio: {provenance['source']} "
            f"(heuristic {provenance['heuristic']}, "
            f"{provenance['candidates']} candidate(s))"
        )
    else:
        # The ordering portfolio extracts features from the flat model;
        # --portfolio therefore keeps the plain-flatten path above.
        verdicts = check_properties(
            elab if opts.shared_shapes else flat,
            pif.ctl_props,
            pif.fairness,
            jobs=opts.jobs,
            stats=stats,
            timeout=opts.timeout,
            batch_apply=opts.batch_apply,
        )
    for verdict in verdicts:
        print(verdict.format())
        if verdict.error:
            print(f"  {verdict.error.strip().splitlines()[-1]}", file=sys.stderr)
    passed = sum(1 for v in verdicts if v.holds is True)
    failed = sum(1 for v in verdicts if v.holds is False)
    errors = sum(1 for v in verdicts if v.holds is None)
    print(
        f"check: {len(verdicts)} properties, {passed} passed, "
        f"{failed} failed, {errors} errored (jobs={opts.jobs})"
    )
    if opts.results:
        from repro.parallel import atomic_write_json

        # Only deterministic fields: identical bytes regardless of
        # jobs/portfolio/timing (the parity tests assert this).
        atomic_write_json(
            opts.results,
            {
                "properties": [
                    {
                        "name": v.name,
                        "formula": v.formula,
                        "holds": v.holds,
                        "status": v.status,
                    }
                    for v in verdicts
                ],
                "passed": passed,
                "failed": failed,
                "errors": errors,
            },
        )
    if opts.stats:
        print(stats.format())
    trace_ok = _write_trace_file(stats.tracer if opts.trace else None, opts.trace)
    return 0 if passed == len(verdicts) and trace_ok else 1


def _load_profile_design(target: str, pif_path: Optional[str],
                         shared_shapes: bool = False):
    """Resolve a ``profile`` target to ``(name, flat model, pif)``.

    ``gallery:NAME`` (or any bare shipped-design name) loads one of the
    built-in benchmarks with its bundled properties; a ``.mv``/``.v``
    path loads a design from disk with an optional ``--pif`` file.
    With ``shared_shapes`` the model slot holds an
    :class:`~repro.blifmv.Elaboration` (shared-shape encoding).
    """
    from repro.models import get_spec

    name = target[len("gallery:"):] if target.startswith("gallery:") else target
    if not (target.endswith(".mv") or target.endswith(".v")):
        spec = get_spec(name)
        model = spec.elaborate() if shared_shapes else spec.flat()
        return spec.name, model, spec.pif
    if target.endswith(".v"):
        with open(target) as handle:
            design = compile_verilog(handle.read())
    else:
        design = parse_blifmv_file(target)
    pif = parse_pif_file(pif_path) if pif_path else None
    model = elaborate(design) if shared_shapes else flatten(design)
    return design.root, model, pif


def _profile_main(argv: List[str]) -> int:
    """``hsis profile`` — run the pipeline under a tracer and report."""
    parser = argparse.ArgumentParser(
        prog="hsis profile",
        description=(
            "Run encode -> build_tr -> reach (and model checking when "
            "properties are available) with structured tracing enabled, "
            "print the span-tree summary, and optionally export the "
            "timeline for Perfetto."
        ),
    )
    parser.add_argument(
        "design",
        help="a .mv/.v file, or a shipped benchmark (e.g. gallery:traffic)",
    )
    parser.add_argument(
        "--pif", default=None, metavar="FILE",
        help="PIF properties to check (file designs only; gallery designs "
             "bring their own)",
    )
    parser.add_argument(
        "--method", default="greedy", metavar="M",
        help="early-quantification schedule (greedy|linear|monolithic)",
    )
    parser.add_argument(
        "--partitioned", action="store_true",
        help="use the partitioned image (never build the monolithic T)",
    )
    parser.add_argument(
        "--no-mc", action="store_true",
        help="skip model checking even when properties are available",
    )
    parser.add_argument(
        "--auto-reorder", type=_positive_int, default=None, metavar="N",
        help="arm dynamic variable reordering past N live nodes",
    )
    parser.add_argument(
        "--shared-shapes", dest="shared_shapes", action="store_true",
        default=True,
        help=(
            "encode each distinct subcircuit shape once and instantiate "
            "replicas by variable substitution (default; no-op on "
            "single-instance designs)"
        ),
    )
    parser.add_argument(
        "--no-shared-shapes", dest="shared_shapes", action="store_false",
        help="always encode every instance's tables from scratch",
    )
    parser.add_argument(
        "--no-batch-apply", dest="batch_apply", action="store_false",
        default=None,
        help=(
            "build every BDD on the scalar reference path instead of the "
            "frontier-batched apply engine"
        ),
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also write the raw trace (.jsonl / .txt / Chrome JSON)",
    )
    opts = parser.parse_args(argv)
    try:
        name, flat, pif = _load_profile_design(
            opts.design, opts.pif, shared_shapes=opts.shared_shapes
        )
    except (OSError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = Tracer()
    fsm = SymbolicFsm(flat, tracer=tracer, auto_reorder=opts.auto_reorder,
                      batch_apply=opts.batch_apply)
    if not opts.partitioned:
        fsm.build_transition(method=opts.method)
    reach = fsm.reachable(partitioned=opts.partitioned)
    print(
        f"profile {name}: {fsm.count_states(reach.reached)} states reached "
        f"in {reach.iterations} iterations ({reach.seconds:.2f}s)"
    )
    if fsm.network.conjunct_groups is not None:
        print(
            f"shapes: {fsm.network.shapes_encoded} encoded, "
            f"{fsm.network.instances_substituted} instance(s) substituted"
        )
    if pif is not None and pif.ctl_props and not opts.no_mc:
        checker = ModelChecker(
            fsm, fairness=pif.bind_fairness(fsm), reached=reach.reached
        )
        for prop_name, formula in pif.ctl_props:
            result = checker.check(formula)
            verdict = "passed" if result.holds else "FAILED"
            print(f"mc {prop_name}: {verdict} ({result.seconds:.2f}s)")
    print(trace_summary(tracer, title=f"trace summary ({name})"))
    print(fsm.stats.format())
    return 0 if _write_trace_file(tracer, opts.trace) else 1


def _serve_main(argv: List[str]) -> int:
    """``hsis serve`` — the persistent async verification job server."""
    import asyncio

    from repro.parallel import default_jobs
    from repro.serve import DEFAULT_CACHE_DIR, HsisServer

    parser = argparse.ArgumentParser(
        prog="hsis serve",
        description=(
            "Accept concurrent check/fuzz/profile jobs over a "
            "newline-delimited JSON protocol, dispatching them onto "
            "crash-isolated worker processes with a persistent "
            "content-addressed result cache (see docs/serving.md)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=0, metavar="P",
        help="TCP port (default 0: pick an ephemeral port and print it)",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="concurrent worker processes (default: one per core)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"persistent result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--cache-max-mib", type=_positive_int, default=None, metavar="MIB",
        help=(
            "size-cap the result cache; least-recently-used entries are "
            "evicted past the cap (default: unbounded)"
        ),
    )
    parser.add_argument(
        "--orders-dir", default=None, metavar="DIR",
        help=(
            "winning-order cache for portfolio check jobs "
            "(default .hsis-orders)"
        ),
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="per-job deadline enforced by worker reaping (default 300)",
    )
    parser.add_argument(
        "--memory-limit", type=_positive_int, default=None, metavar="MB",
        help="per-job address-space quota in MiB (RLIMIT_AS in the worker)",
    )
    parser.add_argument(
        "--backlog", type=_positive_int, default=64, metavar="N",
        help="bounded job-queue depth; further submissions are refused",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write one JSONL tracer timeline per job into DIR",
    )
    opts = parser.parse_args(argv)

    async def _run() -> int:
        server = HsisServer(
            host=opts.host,
            port=opts.port,
            jobs=opts.jobs if opts.jobs is not None else default_jobs(),
            cache_dir=opts.cache_dir,
            timeout=opts.timeout,
            memory_limit=(
                opts.memory_limit * 1024 * 1024
                if opts.memory_limit is not None else None
            ),
            backlog=opts.backlog,
            trace_dir=opts.trace_dir,
            cache_max_bytes=(
                opts.cache_max_mib * 1024 * 1024
                if opts.cache_max_mib is not None else None
            ),
            orders_dir=opts.orders_dir,
        )
        try:
            await server.start()
        except OSError as exc:
            print(f"error: cannot bind {opts.host}:{opts.port}: {exc}",
                  file=sys.stderr)
            return 2
        print(
            f"hsis serve: listening on {server.host}:{server.port} "
            f"(jobs={server.jobs}, cache={opts.cache_dir})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        print("hsis serve: interrupted", file=sys.stderr)
        return 0


def _client_design_arg(target: str):
    """CLI design reference -> protocol design object (+ optional pif)."""
    if target.startswith("gallery:"):
        return {"gallery": target[len("gallery:"):]}
    if target.endswith(".v"):
        with open(target) as handle:
            return {"verilog": handle.read()}
    if target.endswith(".mv"):
        with open(target) as handle:
            return {"blifmv": handle.read()}
    return {"gallery": target}


def _client_main(argv: List[str]) -> int:
    """``hsis client`` — scriptable front end for a running server."""
    import asyncio
    import json

    from repro.serve import ServeClient, ServeError

    parser = argparse.ArgumentParser(
        prog="hsis client",
        description="Submit jobs to (and query) a running `hsis serve`.",
    )
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    parser.add_argument("--port", type=_positive_int, required=True,
                        metavar="P")
    sub = parser.add_subparsers(dest="verb", required=True)

    p_check = sub.add_parser("check", help="model check a design's properties")
    p_check.add_argument("design", help=".mv/.v file or gallery:NAME")
    p_check.add_argument("pif", nargs="?", default=None,
                         help="PIF file (gallery designs bring their own)")
    p_fuzz = sub.add_parser("fuzz", help="run a differential sweep")
    p_fuzz.add_argument("--trials", type=_positive_int, default=None)
    p_fuzz.add_argument("--seed", type=int, default=None)
    p_profile = sub.add_parser("profile", help="reachability profile")
    p_profile.add_argument("design", help=".mv/.v file or gallery:NAME")
    p_profile.add_argument("--method", default=None, metavar="M")
    p_profile.add_argument("--partitioned", action="store_true")
    for p in (p_check, p_fuzz, p_profile):
        p.add_argument("--auto-reorder", type=_positive_int, default=None,
                       metavar="N")
        p.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS")
        p.add_argument("--stream", action="store_true",
                       help="print per-job tracer events as they stream")
        p.add_argument("--shared-shapes", dest="shared_shapes",
                       action="store_true", default=None,
                       help="force shared-shape encoding on")
        p.add_argument("--no-shared-shapes", dest="shared_shapes",
                       action="store_false",
                       help="force shared-shape encoding off")
        p.add_argument("--batch-apply", dest="batch_apply",
                       action="store_true", default=None,
                       help="force the frontier-batched apply engine on")
        p.add_argument("--no-batch-apply", dest="batch_apply",
                       action="store_false",
                       help="force the scalar apply reference path")
    p_check.add_argument("--cache-limit", type=_positive_int, default=None,
                         metavar="N")
    p_check.add_argument("--auto-gc", type=_positive_int, default=None,
                         metavar="N")
    p_check.add_argument("--portfolio", type=_positive_int, default=None,
                         metavar="K",
                         help="race K candidate variable orders server-side")
    p_status = sub.add_parser("status", help="queue / cache / stats snapshot")
    p_status.add_argument("job", nargs="?", default=None)
    p_cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    p_cancel.add_argument("job")
    opts = parser.parse_args(argv)

    async def _run() -> int:
        client = ServeClient(opts.host, opts.port)
        try:
            await client.connect()
        except (ConnectionError, OSError) as exc:
            print(f"error: cannot reach {opts.host}:{opts.port}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            if opts.verb == "status":
                print(json.dumps(await client.status(opts.job), indent=2,
                                 sort_keys=True))
                return 0
            if opts.verb == "cancel":
                print(json.dumps(await client.cancel(opts.job), indent=2,
                                 sort_keys=True))
                return 0
            knobs = {}
            design = None
            pif = None
            if opts.verb == "fuzz":
                for name in ("trials", "seed", "auto_reorder"):
                    if getattr(opts, name) is not None:
                        knobs[name] = getattr(opts, name)
            else:
                design = _client_design_arg(opts.design)
                if opts.verb == "check":
                    if opts.pif is not None:
                        with open(opts.pif) as handle:
                            pif = handle.read()
                    for name in ("auto_reorder", "cache_limit", "auto_gc",
                                 "portfolio"):
                        if getattr(opts, name) is not None:
                            knobs[name] = getattr(opts, name)
                else:
                    if opts.method is not None:
                        knobs["method"] = opts.method
                    if opts.partitioned:
                        knobs["partitioned"] = True
                    if opts.auto_reorder is not None:
                        knobs["auto_reorder"] = opts.auto_reorder
            if opts.shared_shapes is not None:
                knobs["shared_shapes"] = opts.shared_shapes
            if opts.batch_apply is not None:
                knobs["batch_apply"] = opts.batch_apply
            on_event = None
            if opts.stream:
                def on_event(line):
                    print(json.dumps(line, sort_keys=True))
            result = await client.submit(
                opts.verb, design=design, pif=pif, knobs=knobs,
                stream=opts.stream, timeout=opts.timeout,
                on_event=on_event,
            )
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0 if result.get("ok") else 1
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        finally:
            await client.close()

    return asyncio.run(_run())


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``hsis`` console script."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])
    if argv and argv[0] == "check":
        return _check_main(argv[1:])
    if argv and argv[0] == "profile":
        return _profile_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "client":
        return _client_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="hsis", description="HSIS reproduction shell"
    )
    parser.add_argument("script", nargs="?", help="command file to execute")
    parser.add_argument(
        "--stats", action="store_true",
        help="print engine statistics when the run finishes",
    )
    parser.add_argument(
        "--auto-gc", type=_positive_int, default=None, metavar="N",
        help="auto-collect dead BDD nodes every N allocations",
    )
    parser.add_argument(
        "--cache-limit", type=_positive_int, default=None, metavar="N",
        help="bound the BDD computed cache to N entries",
    )
    parser.add_argument(
        "--auto-reorder", type=_positive_int, default=None, metavar="N",
        help=(
            "arm dynamic variable reordering (sifting at engine safe "
            "points) once the BDD table exceeds N live nodes"
        ),
    )
    parser.add_argument(
        "--no-batch-apply", dest="batch_apply", action="store_false",
        default=None,
        help=(
            "build every BDD on the scalar reference path instead of the "
            "frontier-batched apply engine (default: batched unless "
            "HSIS_BATCH_APPLY=0)"
        ),
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help=(
            "record a structured event trace of every engine run "
            "(.jsonl, .txt summary, or Chrome/Perfetto JSON by extension)"
        ),
    )
    opts = parser.parse_args(argv)
    tracer = Tracer() if opts.trace else None
    shell = HsisShell(
        auto_gc=opts.auto_gc,
        cache_limit=opts.cache_limit,
        auto_reorder=opts.auto_reorder,
        show_stats=opts.stats,
        tracer=tracer,
        batch_apply=opts.batch_apply,
    )
    if opts.script:
        try:
            handle = open(opts.script)
        except OSError as exc:
            print(f"error: cannot open script: {exc}", file=sys.stderr)
            return 1
        with handle:
            try:
                print(shell.run_script(handle))
            except CliError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        _print_final_stats(shell)
        return 0 if _write_trace_file(tracer, opts.trace) else 1
    print("HSIS reproduction shell — 'help' lists commands, ctrl-D exits")
    while True:
        try:
            line = input("hsis> ")
        except EOFError:
            print()
            _print_final_stats(shell)
            return 0 if _write_trace_file(tracer, opts.trace) else 1
        try:
            output = shell.execute(line)
            if output:
                print(output)
        except CliError as exc:
            print(f"error: {exc}")
        except Exception as exc:  # keep the REPL alive on internal errors
            print(f"internal error: {exc}")


if __name__ == "__main__":
    raise SystemExit(main())
