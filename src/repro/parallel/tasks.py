"""Picklable task descriptors and result envelopes for the worker pool.

A :class:`Task` names a module-level callable plus its arguments; the
pool ships it to a worker process, so everything here must survive a
round trip through ``pickle``.  A worker that wants to report engine
telemetry returns a :class:`TaskResult` wrapping its value and an
:class:`~repro.perf.EngineStats` (with ``bdd=None`` — kernel handles
never cross process boundaries); the pool splits it into the
:class:`ResultEnvelope`, and the parent folds the stats into its own
collector with the existing :meth:`EngineStats.merge`.

Every submitted task produces exactly one envelope — success, Python
error, timeout, or worker crash — so no failure mode is ever silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.perf import EngineStats

#: Envelope statuses, from best to worst.
STATUS_OK = "ok"              # task returned a value
STATUS_ERROR = "error"        # task raised; traceback tail in ``error``
STATUS_TIMEOUT = "timeout"    # task exceeded its deadline and was reaped
STATUS_CRASHED = "crashed"    # worker process died without reporting
STATUS_CANCELLED = "cancelled"  # pool was cancelled before the task finished


@dataclass
class Task:
    """One unit of work: a picklable callable plus its arguments.

    ``fn`` must be addressable by qualified name from a worker process
    (a module-level function — not a lambda or a closure).  ``timeout``
    and ``retries`` override the pool defaults for this task only.
    ``memory_limit`` (bytes) caps the worker's address space via
    ``RLIMIT_AS`` on platforms that support it; an allocation past the
    quota raises in the worker and surfaces as an ``error`` (or, for a
    hard native death, a ``crashed``) envelope.
    """

    task_id: str
    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    timeout: Optional[float] = None
    retries: Optional[int] = None
    memory_limit: Optional[int] = None


@dataclass
class TaskResult:
    """Optional rich return: a value plus per-worker engine telemetry."""

    value: Any
    stats: Optional[EngineStats] = None


@dataclass
class ResultEnvelope:
    """What the pool reports back for one task, whatever happened.

    ``attempts`` counts every launch including retries; ``seconds`` is
    wall time of the attempt that produced this envelope (for failures,
    the last attempt).  ``stats`` is the worker's own ``EngineStats``
    snapshot, mergeable into a sweep-level collector.
    """

    task_id: str
    status: str = STATUS_OK
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    seconds: float = 0.0
    stats: Optional[EngineStats] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


def worker_stats(**counters: int) -> EngineStats:
    """A fresh, picklable per-worker stats collector (no BDD attached)."""
    stats = EngineStats()
    for name, amount in counters.items():
        stats.bump(name, amount)
    return stats


def shard_range(start: int, count: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(start, start + count)`` into ``shards`` contiguous
    ``(start, count)`` chunks, sizes as even as possible, order
    preserved.  Used to turn a seed range into pool tasks; contiguity
    keeps a worker's chunk replayable as a plain serial sub-sweep."""
    shards = max(1, min(shards, count)) if count > 0 else 0
    chunks: List[Tuple[int, int]] = []
    base, extra = divmod(count, shards) if shards else (0, 0)
    offset = start
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        chunks.append((offset, size))
        offset += size
    return chunks


def merge_envelope_stats(
    stats: EngineStats, envelopes: Sequence[ResultEnvelope]
) -> None:
    """Fold every envelope's worker stats into ``stats``, in order."""
    for env in envelopes:
        if env.stats is not None:
            stats.merge(env.stats)
