"""Process-pool runtime for fanning independent verification jobs.

HSIS-style evaluation is dominated by *independent* symbolic jobs —
per-seed differential trials, per-design benchmarks, per-property CTL
checks.  This package runs them across cores without changing a single
answer:

* :mod:`repro.parallel.pool` — :class:`WorkerPool`: per-task timeouts,
  bounded retry with backoff, crash isolation (a dead or hung worker is
  reaped and its task retried or reported — never lost, never able to
  wedge the sweep).
* :mod:`repro.parallel.tasks` — picklable :class:`Task` descriptors and
  :class:`ResultEnvelope` results carrying verdict, error trace, and a
  per-worker :class:`~repro.perf.EngineStats`.
* :mod:`repro.parallel.sweep` — ``hsis fuzz --jobs N`` seed-range
  sharding (report identical to the serial sweep).
* :mod:`repro.parallel.check` — ``hsis check`` / ``mc --jobs N``
  multi-property model checking.
* :mod:`repro.parallel.bench` — ``benchmarks/run.py`` concurrent bench
  matrix with atomic ``results.json`` accumulation.
* :mod:`repro.parallel.atomic` — temp-file + ``os.replace`` JSON writes.

Semantics are pinned down by ``tests/test_parallel_determinism.py``,
``tests/test_parallel_faults.py`` and ``tests/test_parallel_stress.py``;
see ``docs/parallel.md``.
"""

from repro.parallel.atomic import atomic_write_json
from repro.parallel.check import PropertyVerdict, check_properties
from repro.parallel.pool import PoolError, WorkerPool, default_jobs
from repro.parallel.sweep import run_sweep_parallel
from repro.parallel.tasks import (
    STATUS_CANCELLED,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ResultEnvelope,
    Task,
    TaskResult,
    shard_range,
)

__all__ = [
    "PoolError",
    "PropertyVerdict",
    "ResultEnvelope",
    "STATUS_CANCELLED",
    "STATUS_CRASHED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "Task",
    "TaskResult",
    "WorkerPool",
    "atomic_write_json",
    "check_properties",
    "default_jobs",
    "run_sweep_parallel",
    "shard_range",
]
