"""Atomic JSON file writes (temp file + ``os.replace``).

``benchmarks/results.json`` accumulates measurement history across many
partial bench invocations; a plain ``open(path, "w")`` truncates the
file *before* the new payload is serialized, so a crash or kill
mid-write destroys the whole history.  Writing to a sibling temp file
and renaming guarantees readers (and interrupted writers) always see
either the complete old payload or the complete new one — never a
truncated hybrid.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_json(path: str, payload: Any, **json_kwargs: Any) -> None:
    """Serialize ``payload`` as JSON into ``path`` atomically.

    The temp file lives in the same directory as ``path`` so the final
    ``os.replace`` never crosses a filesystem boundary.  If
    serialization (or the writer process) dies mid-write, ``path`` is
    left untouched.
    """
    json_kwargs.setdefault("indent", 2)
    json_kwargs.setdefault("sort_keys", True)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, **json_kwargs)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
