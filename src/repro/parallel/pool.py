"""Crash-isolated process pool for independent verification jobs.

Every attempt of every task runs in its **own** worker process, with up
to ``jobs`` running concurrently.  That buys three guarantees the
consumers (fuzz sharding, bench matrix, multi-property checking) rely
on:

* **timeout** — a worker that outlives its per-task deadline is
  terminated (SIGTERM, then SIGKILL) and the attempt is marked
  ``timeout``; a hung task can never wedge the sweep,
* **crash isolation** — a worker that dies without reporting (segfault,
  ``os._exit``, OOM-kill) is reaped and the attempt is marked
  ``crashed``; sibling tasks keep their own processes and keep running,
* **bounded retry** — failed attempts (error / timeout / crash) are
  relaunched with exponential backoff up to the retry bound, after
  which the *last* failure is surfaced in the task's
  :class:`~repro.parallel.tasks.ResultEnvelope`.

Determinism note: the pool schedules opportunistically, but
:meth:`WorkerPool.run` always returns envelopes in **submission
order**, so consumers that merge results positionally (the fuzz sweep,
the bench runner) produce output independent of worker timing.

Tasks must be picklable (module-level functions; see
:mod:`repro.parallel.tasks`).  On platforms with ``fork`` the pool
forks — cheap, and lets tests submit functions defined in any loaded
module; elsewhere it falls back to ``spawn``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.parallel.tasks import (
    STATUS_CANCELLED,
    STATUS_CRASHED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    ResultEnvelope,
    Task,
    TaskResult,
)
from repro.trace.tracer import Tracer

_NULL_TRACER = Tracer(enabled=False)

#: Grace period between SIGTERM and SIGKILL when reaping a worker.
REAP_GRACE_SECONDS = 0.5

#: Upper bound on one scheduler nap, so deadlines are checked promptly.
POLL_CAP_SECONDS = 0.05


def _apply_memory_limit(limit: Optional[int]) -> None:
    """Cap the worker's address space (best effort, POSIX only)."""
    if not limit:
        return
    try:
        import resource

        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ImportError, ValueError, OSError):
        pass  # unsupported platform / privilege: quota is advisory


def _attempt_main(conn, fn, args, kwargs, memory_limit=None) -> None:
    """Worker-side entry: run the task, ship one message, exit.

    The message is ``(status, value, stats, error, seconds)``.  Any
    exception — including ``SystemExit`` — becomes an ``error`` report;
    only a hard kill (``os._exit``, signal) leaves the parent without a
    message, which it classifies as a crash.
    """
    _apply_memory_limit(memory_limit)
    start = time.perf_counter()
    status, value, stats, error = STATUS_OK, None, None, None
    try:
        out = fn(*args, **kwargs)
        if isinstance(out, TaskResult):
            value, stats = out.value, out.stats
        else:
            value = out
    except BaseException:
        status, error = STATUS_ERROR, traceback.format_exc()
    seconds = time.perf_counter() - start
    try:
        conn.send((status, value, stats, error, seconds))
    except Exception:
        # Unpicklable result: downgrade to an error the parent can read.
        try:
            conn.send(
                (STATUS_ERROR, None, None,
                 f"task result could not be pickled:\n{traceback.format_exc()}",
                 seconds)
            )
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Attempt:
    """Parent-side bookkeeping for one in-flight worker process."""

    task: Task
    index: int
    attempt: int
    process: Any
    conn: Any
    started: float
    deadline: Optional[float]
    message: Optional[tuple] = field(default=None, repr=False)


class PoolError(Exception):
    """Misuse of the pool (unpicklable task, bad configuration)."""


class WorkerPool:
    """Run picklable tasks across worker processes; never lose one.

    Parameters
    ----------
    jobs:
        Maximum concurrent worker processes (>= 1).
    timeout:
        Default per-task deadline in seconds (``None`` = unbounded);
        each :class:`Task` may override it.
    retries:
        How many times a failed attempt is relaunched (0 = no retry).
    backoff:
        Base delay before a retry; doubles with each further attempt.
    tracer:
        Optional :class:`~repro.trace.tracer.Tracer`; when enabled the
        pool emits ``pool.*`` instants for every task lifecycle event
        (queued / start / retry / done / reaped).
    """

    def __init__(
        self,
        jobs: int,
        timeout: Optional[float] = None,
        retries: int = 1,
        backoff: float = 0.05,
        start_method: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, backoff)
        self.tracer = tracer if tracer is not None else _NULL_TRACER
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        # Cooperative cancellation flag.  Setting it (from any thread —
        # it is a single attribute write) makes the next scheduler pass
        # reap every in-flight worker and finalize all unfinished tasks
        # with ``cancelled`` envelopes; ``hsis serve`` uses this to kill
        # a running job from the event loop.
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation of the current / next :meth:`run`.

        Thread-safe.  Every task that has not already produced a final
        envelope is reported as ``cancelled``; in-flight workers are
        terminated (SIGTERM, then SIGKILL).  The flag stays set, so a
        cancelled pool must not be reused.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[Task],
        progress: Optional[Callable[[ResultEnvelope], None]] = None,
    ) -> List[ResultEnvelope]:
        """Execute ``tasks``; return one envelope per task, in order.

        ``progress`` (if given) is called once per task with its final
        envelope, as each task finishes (completion order).
        """
        tasks = list(tasks)
        tracer = self.tracer
        final: Dict[int, ResultEnvelope] = {}
        ready: Deque[tuple] = deque(
            (task, index, 1) for index, task in enumerate(tasks)
        )
        if tracer.enabled:
            for task in tasks:
                tracer.instant("pool.queued", cat="pool", task=task.task_id)
        delayed: List[tuple] = []  # (not_before, task, index, attempt)
        active: List[_Attempt] = []

        def finalize(index: int, envelope: ResultEnvelope) -> None:
            final[index] = envelope
            if tracer.enabled:
                tracer.instant(
                    "pool.done", cat="pool",
                    task=envelope.task_id, status=envelope.status,
                    attempts=envelope.attempts, seconds=envelope.seconds,
                )
            if progress is not None:
                progress(envelope)

        def settle(attempt: _Attempt, envelope: ResultEnvelope) -> None:
            """Route one finished attempt: retry if allowed, else final."""
            bound = attempt.task.retries
            bound = self.retries if bound is None else max(0, bound)
            if envelope.ok or attempt.attempt > bound:
                finalize(attempt.index, envelope)
            else:
                if tracer.enabled:
                    tracer.instant(
                        "pool.retry", cat="pool",
                        task=attempt.task.task_id,
                        attempt=attempt.attempt, status=envelope.status,
                    )
                pause = self.backoff * (2 ** (attempt.attempt - 1))
                delayed.append(
                    (time.monotonic() + pause, attempt.task,
                     attempt.index, attempt.attempt + 1)
                )

        while ready or delayed or active:
            if self._cancelled:
                now = time.monotonic()
                for entry in active:
                    self._reap(entry, force=True)
                    finalize(
                        entry.index,
                        ResultEnvelope(
                            task_id=entry.task.task_id,
                            status=STATUS_CANCELLED,
                            error="task cancelled while running",
                            attempts=entry.attempt,
                            seconds=now - entry.started,
                        ),
                    )
                pending = [(t, i, a) for t, i, a in ready]
                pending += [(t, i, a) for _, t, i, a in delayed]
                for task, index, attempt in pending:
                    finalize(
                        index,
                        ResultEnvelope(
                            task_id=task.task_id,
                            status=STATUS_CANCELLED,
                            error="task cancelled before it started",
                            attempts=attempt - 1,
                        ),
                    )
                break
            now = time.monotonic()
            # Promote retries whose backoff has elapsed.
            due = [item for item in delayed if item[0] <= now]
            for item in due:
                delayed.remove(item)
                ready.append((item[1], item[2], item[3]))
            # Fill free worker slots.
            while ready and len(active) < self.jobs:
                task, index, attempt = ready.popleft()
                active.append(self._launch(task, index, attempt))
            # Sleep until something can happen: a result arrives, a
            # deadline passes, or a backoff expires.
            nap = POLL_CAP_SECONDS
            for entry in active:
                if entry.deadline is not None:
                    nap = min(nap, max(0.0, entry.deadline - now))
            for not_before, *_ in delayed:
                nap = min(nap, max(0.0, not_before - now))
            conns = [entry.conn for entry in active]
            if conns:
                readable = set(_connection_wait(conns, timeout=nap))
            else:
                readable = set()
                if nap > 0:
                    time.sleep(min(nap, POLL_CAP_SECONDS))
            for entry in active:
                if entry.conn in readable:
                    try:
                        entry.message = entry.conn.recv()
                    except (EOFError, OSError):
                        entry.message = None  # died mid-send: a crash
            # Sweep the in-flight set: reported / dead / overdue.
            now = time.monotonic()
            still_active: List[_Attempt] = []
            for entry in active:
                if entry.message is not None:
                    settle(entry, self._envelope_from_message(entry))
                    self._reap(entry, force=False)
                elif not entry.process.is_alive():
                    # One last poll: the result may have landed between
                    # the wait() and the process exiting.
                    if self._drain(entry):
                        settle(entry, self._envelope_from_message(entry))
                    else:
                        settle(
                            entry,
                            ResultEnvelope(
                                task_id=entry.task.task_id,
                                status=STATUS_CRASHED,
                                error=(
                                    "worker process died without reporting "
                                    f"(exit code {entry.process.exitcode})"
                                ),
                                attempts=entry.attempt,
                                seconds=now - entry.started,
                            ),
                        )
                    self._reap(entry, force=False)
                elif entry.deadline is not None and now >= entry.deadline:
                    self._reap(entry, force=True)
                    settle(
                        entry,
                        ResultEnvelope(
                            task_id=entry.task.task_id,
                            status=STATUS_TIMEOUT,
                            error=(
                                f"task exceeded its {self._deadline_for(entry.task):.3g}s "
                                "deadline and was terminated"
                            ),
                            attempts=entry.attempt,
                            seconds=now - entry.started,
                        ),
                    )
                else:
                    still_active.append(entry)
            active = still_active
        return [final[index] for index in range(len(tasks))]

    # ------------------------------------------------------------------

    def _deadline_for(self, task: Task) -> Optional[float]:
        return self.timeout if task.timeout is None else task.timeout

    def _launch(self, task: Task, index: int, attempt: int) -> _Attempt:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_attempt_main,
            args=(send_conn, task.fn, task.args, task.kwargs,
                  task.memory_limit),
            daemon=True,
            name=f"hsis-pool-{task.task_id}-a{attempt}",
        )
        try:
            process.start()
        except Exception as exc:
            send_conn.close()
            recv_conn.close()
            raise PoolError(
                f"cannot launch worker for task {task.task_id!r}: {exc}"
            ) from exc
        # Close the parent's copy of the send end *before* the next fork
        # so no sibling inherits it: EOF detection (and thus crash
        # classification) stays prompt.
        send_conn.close()
        if self.tracer.enabled:
            self.tracer.instant(
                "pool.start", cat="pool",
                task=task.task_id, attempt=attempt, pid=process.pid,
            )
        started = time.monotonic()
        limit = self._deadline_for(task)
        return _Attempt(
            task=task,
            index=index,
            attempt=attempt,
            process=process,
            conn=recv_conn,
            started=started,
            deadline=None if limit is None else started + limit,
        )

    def _drain(self, entry: _Attempt) -> bool:
        """Non-blocking last-chance read of a finished worker's pipe."""
        try:
            if entry.conn.poll():
                entry.message = entry.conn.recv()
                return entry.message is not None
        except (EOFError, OSError):
            pass
        return False

    def _envelope_from_message(self, entry: _Attempt) -> ResultEnvelope:
        status, value, stats, error, seconds = entry.message
        return ResultEnvelope(
            task_id=entry.task.task_id,
            status=status,
            value=value,
            error=error,
            attempts=entry.attempt,
            seconds=seconds,
            stats=stats,
        )

    def _reap(self, entry: _Attempt, force: bool) -> None:
        """Make sure the worker is gone and its pipe is closed."""
        process = entry.process
        if force and process.is_alive():
            if self.tracer.enabled:
                self.tracer.instant(
                    "pool.reaped", cat="pool",
                    task=entry.task.task_id, attempt=entry.attempt,
                )
            process.terminate()
            process.join(REAP_GRACE_SECONDS)
            if process.is_alive():
                process.kill()
        process.join()
        try:
            entry.conn.close()
        except OSError:
            pass


def default_jobs() -> int:
    """A sensible worker count: every core, at least one."""
    return max(1, os.cpu_count() or 1)
