"""Sharded differential fuzzing: ``hsis fuzz --jobs N``.

The seed range is split into contiguous chunks, each chunk runs as one
pool task executing the ordinary serial :func:`repro.oracle.run_sweep`
inside a worker process, and the parent stitches the chunk reports back
together **in seed order**.  Because trial ``i`` depends only on seed
``seed0 + i`` (see ``docs/testing.md``), the merged report is
verdict-for-verdict identical to a serial sweep over the same range:
same divergences, same shrunk corpus files (filenames are per-seed, so
workers never collide), same merged stat totals.

A chunk whose worker fails outright (crash, timeout after retries) is
*not* dropped: every seed in it is reported as an explicit ``crash``
divergence, so the sweep verdict stays honest.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.oracle.diff import (
    Divergence,
    ORACLE_MAX_SPACE,
    SweepReport,
    TrialReport,
    run_sweep,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import Task, TaskResult, shard_range
from repro.perf import EngineStats
from repro.trace.tracer import Tracer

#: Shards per worker slot — small chunks keep the pool load-balanced
#: without paying per-process overhead for every single seed.
CHUNKS_PER_JOB = 4


def _sweep_chunk_worker(
    count: int,
    seed0: int,
    corpus_dir: Optional[str],
    shrink: bool,
    max_space: int,
    trace: bool = False,
    auto_reorder: Optional[int] = None,
    portfolio: Optional[int] = None,
    shared_shapes: bool = False,
    batch_apply: Optional[bool] = None,
) -> TaskResult:
    """Worker body: one contiguous sub-sweep, exactly the serial code.

    With ``trace`` the worker records its own event timeline; the events
    ride back to the parent inside the pickled :class:`EngineStats` and
    are merged onto a per-worker tid lane.
    """
    stats = EngineStats()
    if trace:
        stats.tracer = Tracer()
    report = run_sweep(
        count,
        seed0=seed0,
        stats=stats,
        corpus_dir=corpus_dir,
        shrink=shrink,
        max_space=max_space,
        auto_reorder=auto_reorder,
        portfolio=portfolio,
        shared_shapes=shared_shapes,
        batch_apply=batch_apply,
    )
    for trial in report.reports:
        trial.case = None  # cases are large and the parent never reads them
    return TaskResult(report, stats)


def run_sweep_parallel(
    trials: int,
    seed0: int = 0,
    jobs: int = 2,
    stats: Optional[EngineStats] = None,
    corpus_dir: Optional[str] = None,
    shrink: bool = True,
    max_space: int = ORACLE_MAX_SPACE,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    pool: Optional[WorkerPool] = None,
    auto_reorder: Optional[int] = None,
    portfolio: Optional[int] = None,
    shared_shapes: bool = False,
    batch_apply: Optional[bool] = None,
) -> SweepReport:
    """Fan a seeded sweep across ``jobs`` workers; merge in seed order.

    Mirrors :func:`repro.oracle.run_sweep`'s signature and report
    semantics.  ``timeout`` bounds each *chunk* (not each trial);
    ``pool`` may inject a preconfigured :class:`WorkerPool` (tests use
    this to tighten timeouts).
    """
    stats = stats if stats is not None else EngineStats()
    trace = stats.tracer.enabled
    sweep = SweepReport(trials=trials, seed0=seed0)
    start = time.perf_counter()
    chunks = shard_range(seed0, trials, max(1, jobs) * CHUNKS_PER_JOB)
    job_tasks = [
        Task(
            task_id=f"fuzz[{chunk_seed0}+{chunk_count}]",
            fn=_sweep_chunk_worker,
            args=(chunk_count, chunk_seed0, corpus_dir, shrink, max_space,
                  trace, auto_reorder, portfolio, shared_shapes, batch_apply),
            timeout=timeout,
        )
        for chunk_seed0, chunk_count in chunks
    ]
    if pool is None:
        pool = WorkerPool(
            jobs, timeout=timeout, retries=retries, tracer=stats.tracer
        )
    envelopes = pool.run(job_tasks)
    for (chunk_seed0, chunk_count), envelope in zip(chunks, envelopes):
        if envelope.ok:
            chunk: SweepReport = envelope.value
            sweep.reports.extend(chunk.reports)
            sweep.corpus_written.extend(chunk.corpus_written)
            if envelope.stats is not None:
                stats.merge(envelope.stats)
            reports: List[TrialReport] = chunk.reports
        else:
            detail = (envelope.error or "no detail").strip().splitlines()[-1]
            reports = [
                TrialReport(
                    seed=seed,
                    divergences=[
                        Divergence(
                            "crash", seed,
                            f"worker {envelope.status} "
                            f"(after {envelope.attempts} attempt(s)): {detail}",
                        )
                    ],
                    seconds=0.0,
                )
                for seed in range(chunk_seed0, chunk_seed0 + chunk_count)
            ]
            sweep.reports.extend(reports)
        if progress is not None:
            for report in reports:
                progress(report)
    sweep.seconds = time.perf_counter() - start
    return sweep
