"""Concurrent benchmark matrix: ``python benchmarks/run.py --jobs N``.

Each ``bench_*.py`` module is an independent pytest session, so the
matrix fans out one pool task per file.  Isolation is a fresh
interpreter per session (``python -m pytest <file>``): bench modules
measure wall time, and sharing a process would let sessions distort
each other's numbers.  Each session writes its measured rows to a
private temp file (the ``HSIS_BENCH_RESULTS`` override honored by
``benchmarks/conftest.py``); the parent merges all rows **in sorted
file order** — so the merged payload does not depend on completion
order — folds in the accumulated ``results.json`` history, and writes
the result atomically (temp + ``os.replace``).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.parallel.atomic import atomic_write_json
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import Task, TaskResult, worker_stats

#: Environment variable redirecting a bench session's results payload.
RESULTS_ENV = "HSIS_BENCH_RESULTS"


def _src_root() -> str:
    """Directory to put on PYTHONPATH so subprocesses can import repro."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _bench_file_worker(path: str, pytest_args: Sequence[str]) -> TaskResult:
    """Run one bench file as its own pytest session; return its rows."""
    handle = tempfile.NamedTemporaryFile(
        prefix="hsis-bench-", suffix=".json", delete=False
    )
    handle.close()
    os.unlink(handle.name)  # conftest will (re)create it on session end
    env = dict(os.environ)
    env[RESULTS_ENV] = handle.name
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_src_root(), env.get("PYTHONPATH")) if p
    )
    command = [
        sys.executable, "-m", "pytest", path, "-q",
        "-p", "no:cacheprovider", *pytest_args,
    ]
    proc = subprocess.run(
        command, env=env, capture_output=True, text=True,
        cwd=os.path.dirname(os.path.abspath(path)),
    )
    rows: Dict[str, dict] = {}
    try:
        with open(handle.name) as result_file:
            rows = json.load(result_file)
    except (OSError, ValueError):
        rows = {}
    finally:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
    tail = "\n".join(
        (proc.stdout + proc.stderr).strip().splitlines()[-20:]
    )
    return TaskResult(
        {
            "file": os.path.basename(path),
            "returncode": proc.returncode,
            "rows": rows,
            "tail": tail,
        },
        worker_stats(bench_sessions=1),
    )


@dataclass
class BenchFileOutcome:
    """One bench session's result as seen by the runner."""

    file: str
    status: str  # ok | failed | error | timeout | crashed
    returncode: Optional[int] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class BenchRunReport:
    """Everything a ``run.py`` invocation produced."""

    outcomes: List[BenchFileOutcome] = field(default_factory=list)
    payload: Dict[str, dict] = field(default_factory=dict)
    results_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)


def discover_bench_files(suite_dir: str) -> List[str]:
    """Sorted ``bench_*.py`` paths under ``suite_dir``."""
    return sorted(
        os.path.join(suite_dir, name)
        for name in os.listdir(suite_dir)
        if name.startswith("bench_") and name.endswith(".py")
    )


def merge_rows(payload: Dict[str, dict], rows: Dict[str, dict]) -> None:
    """Fold one session's rows into ``payload`` (conftest merge rule)."""
    for experiment, keyed in rows.items():
        for key, values in keyed.items():
            payload.setdefault(experiment, {}).setdefault(key, {}).update(
                values
            )


def run_benchmarks(
    files: Optional[Sequence[str]] = None,
    suite_dir: Optional[str] = None,
    jobs: int = 1,
    results_path: Optional[str] = None,
    pytest_args: Sequence[str] = (),
    fresh: bool = False,
    timeout: Optional[float] = None,
    retries: int = 0,
    pool: Optional[WorkerPool] = None,
) -> BenchRunReport:
    """Run the bench matrix, merge rows, write ``results.json`` atomically.

    ``files`` (explicit paths) overrides discovery under ``suite_dir``.
    With ``fresh=True`` the accumulated history in ``results_path`` is
    ignored instead of merged.  Bench sessions are never retried by
    default — re-running a measurement silently would skew timings.
    """
    if files is None:
        if suite_dir is None:
            raise ValueError("need either explicit files or a suite_dir")
        files = discover_bench_files(suite_dir)
    files = [os.path.abspath(path) for path in files]
    if results_path is None and suite_dir is not None:
        results_path = os.path.join(suite_dir, "results.json")

    job_tasks = [
        Task(
            task_id=f"bench[{os.path.basename(path)}]",
            fn=_bench_file_worker,
            args=(path, tuple(pytest_args)),
            timeout=timeout,
        )
        for path in files
    ]
    if pool is None and jobs > 1:
        pool = WorkerPool(jobs, timeout=timeout, retries=retries)
    if pool is not None:
        envelopes = pool.run(job_tasks)
    else:
        # Serial path: same worker body, same subprocess isolation.
        from repro.parallel.tasks import ResultEnvelope

        envelopes = []
        for task in job_tasks:
            try:
                result = task.fn(*task.args)
                envelopes.append(
                    ResultEnvelope(
                        task_id=task.task_id, value=result.value,
                        stats=result.stats, attempts=1,
                    )
                )
            except Exception as exc:
                envelopes.append(
                    ResultEnvelope(
                        task_id=task.task_id, status="error",
                        error=str(exc), attempts=1,
                    )
                )

    report = BenchRunReport(results_path=results_path)
    # Merge in sorted-file order regardless of completion order.
    for path, envelope in sorted(
        zip(files, envelopes), key=lambda pair: pair[0]
    ):
        name = os.path.basename(path)
        if not envelope.ok:
            report.outcomes.append(
                BenchFileOutcome(
                    file=name, status=envelope.status,
                    detail=(envelope.error or "").strip().splitlines()[-1]
                    if envelope.error else "",
                )
            )
            continue
        session = envelope.value
        merge_rows(report.payload, session["rows"])
        report.outcomes.append(
            BenchFileOutcome(
                file=name,
                status="ok" if session["returncode"] == 0 else "failed",
                returncode=session["returncode"],
                detail="" if session["returncode"] == 0 else session["tail"],
            )
        )

    if results_path is not None:
        combined: Dict[str, dict] = {}
        if not fresh and os.path.exists(results_path):
            try:
                with open(results_path) as handle:
                    combined = json.load(handle)
            except (OSError, ValueError):
                combined = {}
        merge_rows(combined, report.payload)
        atomic_write_json(results_path, combined)
    return report
