"""Multi-property model checking across worker processes.

``hsis check design.mv props.pif --jobs N`` (and ``mc --jobs N`` inside
the shell) shard the PIF property list: each CTL property is an
independent task that rebuilds the symbolic machine from the picklable
flat :class:`~repro.blifmv.ast.Model`, binds the (unbound, picklable)
fairness declarations, and runs the ordinary
:class:`~repro.ctl.modelcheck.ModelChecker`.  Verdicts are therefore
exactly the serial ones — each worker runs the same code the shell
would — only the wall-clock schedule changes.

A property whose worker fails is surfaced as an explicit ``ERROR``
verdict (``holds=None``) carrying the envelope's failure status and
trace; it is never silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ctl.ast import Formula
from repro.ctl.modelcheck import ModelChecker
from repro.network.fsm import SymbolicFsm
from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import (
    STATUS_ERROR,
    STATUS_OK,
    ResultEnvelope,
    Task,
    TaskResult,
)
from repro.perf import EngineStats
from repro.trace.tracer import Tracer


@dataclass
class PropertyVerdict:
    """Outcome of one property check, worker failures included."""

    name: str
    formula: str
    holds: Optional[bool]  # None when the worker failed
    seconds: float
    status: str  # an envelope status: ok | error | timeout | crashed
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def format(self) -> str:
        if self.holds is None:
            return f"mc {self.name}: ERROR ({self.status})  [{self.formula}]"
        verdict = "passed" if self.holds else "FAILED"
        return (
            f"mc {self.name}: {verdict} ({self.seconds:.2f}s)  "
            f"[{self.formula}]"
        )


def _check_property_worker(model, name: str, formula: Formula,
                           fairness_decls, trace: bool = False,
                           order=None,
                           batch_apply: Optional[bool] = None) -> TaskResult:
    """Worker body: one machine, one fairness binding, one property.

    ``order`` optionally forces an explicit variable order (a cached
    portfolio winner, or a race candidate); verdicts are order-independent.
    """
    from repro.pif.parser import PifFile

    fsm = SymbolicFsm(model, tracer=Tracer() if trace else None,
                      order=list(order) if order is not None else None,
                      batch_apply=batch_apply)
    fairness = None
    if fairness_decls:
        fairness = PifFile(fairness=list(fairness_decls)).bind_fairness(fsm)
    checker = ModelChecker(fsm, fairness=fairness)
    result = checker.check(formula)
    detached = EngineStats()
    detached.merge(fsm.stats)  # drops the (unpicklable) kernel handle
    return TaskResult(
        {"name": name, "holds": result.holds, "seconds": result.seconds},
        detached,
    )


def _verdict_from_envelope(
    name: str, formula: Formula, envelope: ResultEnvelope
) -> PropertyVerdict:
    if envelope.ok:
        payload = envelope.value
        return PropertyVerdict(
            name=name,
            formula=str(formula),
            holds=payload["holds"],
            seconds=payload["seconds"],
            status=STATUS_OK,
        )
    return PropertyVerdict(
        name=name,
        formula=str(formula),
        holds=None,
        seconds=envelope.seconds,
        status=envelope.status,
        error=envelope.error,
    )


def check_properties(
    model,
    properties: Sequence[Tuple[str, Formula]],
    fairness_decls=(),
    jobs: int = 1,
    stats: Optional[EngineStats] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    pool: Optional[WorkerPool] = None,
    order=None,
    batch_apply: Optional[bool] = None,
) -> List[PropertyVerdict]:
    """Check every ``(name, formula)`` pair; results in property order.

    With ``jobs <= 1`` (or a single property) everything runs in this
    process; otherwise each property becomes a pool task.  ``order``
    forces an explicit variable order on every machine built (used by
    the ordering portfolio's warm order-cache path).
    """
    properties = list(properties)
    trace = stats is not None and stats.tracer.enabled
    if (pool is None and jobs <= 1) or len(properties) < 2:
        verdicts = []
        for name, formula in properties:
            try:
                result = _check_property_worker(
                    model, name, formula, fairness_decls, trace, order,
                    batch_apply,
                )
            except Exception as exc:
                verdicts.append(
                    PropertyVerdict(
                        name=name, formula=str(formula), holds=None,
                        seconds=0.0, status=STATUS_ERROR, error=str(exc),
                    )
                )
                continue
            if stats is not None and result.stats is not None:
                stats.merge(result.stats)
            verdicts.append(
                PropertyVerdict(
                    name=name,
                    formula=str(formula),
                    holds=result.value["holds"],
                    seconds=result.value["seconds"],
                    status=STATUS_OK,
                )
            )
        return verdicts
    job_tasks = [
        Task(
            task_id=f"mc[{name}]",
            fn=_check_property_worker,
            args=(model, name, formula, tuple(fairness_decls), trace,
                  list(order) if order is not None else None, batch_apply),
            timeout=timeout,
        )
        for name, formula in properties
    ]
    if pool is None:
        pool = WorkerPool(
            jobs, timeout=timeout, retries=retries,
            tracer=stats.tracer if stats is not None else None,
        )
    envelopes = pool.run(job_tasks)
    verdicts = []
    for (name, formula), envelope in zip(properties, envelopes):
        if stats is not None and envelope.stats is not None:
            stats.merge(envelope.stats)
        verdicts.append(_verdict_from_envelope(name, formula, envelope))
    return verdicts
