"""PIF — the Property Intermediate Format (paper Figure 1).

The user describes desired properties in PIF; CTL properties go to the
model checker, automata properties to the language-containment checker,
and fairness declarations constrain the system.  The concrete syntax
implemented here::

    # comment
    ctl <name> :: <CTL formula>

    automaton <name>
      states A B C
      initial A
      edge A A :: !(out1=1 & out2=1)
      edge A B :: out1=1 & out2=1
      edge B B :: TRUE
      accept invariance A
      accept recurrence A->A
      accept rabin fin { A->B } inf { A->A }
    end

    fairness negative :: st=eating        # negative state subset
    fairness buchi    :: tok=1            # visit infinitely often
    fairness edge     :: st=pause & st'=run   # fair edges (v' = next state)
    fairness streett  :: req=1 ; ack=1    # inf(E) -> inf(F)

Guards and fairness predicates are propositional formulas in CTL-atom
syntax; a primed name ``v'`` refers to the next-state copy of latch
``v`` (edge predicates).  :meth:`PifFile.bind` compiles everything
against a concrete machine.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.automata.automaton import (
    Automaton,
    GAnd,
    GAtom,
    GNot,
    GOr,
    GTrue,
    Guard,
)
from repro.automata.fairness import (
    BuchiEdge,
    BuchiState,
    FairnessSpec,
    NegativeStateSet,
    StreettPair,
)
from repro.ctl.ast import And, Atom, FalseF, Formula, Iff, Implies, Not, Or, TrueF
from repro.ctl.parser import CtlParseError, parse_ctl
from repro.network.encode import NEXT_SUFFIX


class PifError(Exception):
    """Raised on malformed PIF input."""


@dataclass
class FairnessDecl:
    """One ``fairness`` line, unbound (formulas, not BDDs)."""

    kind: str  # negative | buchi | edge | streett
    first: Formula
    second: Optional[Formula] = None
    label: str = ""


@dataclass
class PifFile:
    """Parsed PIF contents."""

    ctl_props: List[Tuple[str, Formula]] = field(default_factory=list)
    automata: List[Automaton] = field(default_factory=list)
    fairness: List[FairnessDecl] = field(default_factory=list)

    def automaton(self, name: str) -> Automaton:
        for aut in self.automata:
            if aut.name == name:
                return aut
        raise PifError(f"no automaton named {name!r}")

    def bind_fairness(self, fsm) -> FairnessSpec:
        """Compile the fairness declarations against a machine."""
        spec = FairnessSpec()
        for decl in self.fairness:
            first = _formula_to_bdd(decl.first, fsm)
            if decl.kind == "negative":
                spec.add(NegativeStateSet(first, label=decl.label))
            elif decl.kind == "buchi":
                spec.add(BuchiState(first, label=decl.label))
            elif decl.kind == "edge":
                spec.add(BuchiEdge(first, label=decl.label))
            elif decl.kind == "streett":
                assert decl.second is not None
                spec.add(
                    StreettPair(
                        e=first,
                        f=_formula_to_bdd(decl.second, fsm),
                        label=decl.label,
                    )
                )
            else:  # pragma: no cover - guarded at parse time
                raise PifError(f"unknown fairness kind {decl.kind!r}")
        return spec


def _resolve_primed(name: str) -> str:
    if name.endswith("'"):
        return name[:-1] + NEXT_SUFFIX
    return name


def formula_to_guard(formula: Formula) -> Guard:
    """Propositional CTL formula -> automaton guard."""
    if isinstance(formula, TrueF):
        return GTrue()
    if isinstance(formula, FalseF):
        return GNot(GTrue())
    if isinstance(formula, Atom):
        return GAtom(_resolve_primed(formula.var), formula.values)
    if isinstance(formula, Not):
        return GNot(formula_to_guard(formula.sub))
    if isinstance(formula, And):
        return GAnd((formula_to_guard(formula.left), formula_to_guard(formula.right)))
    if isinstance(formula, Or):
        return GOr((formula_to_guard(formula.left), formula_to_guard(formula.right)))
    if isinstance(formula, Implies):
        return GOr(
            (GNot(formula_to_guard(formula.left)), formula_to_guard(formula.right))
        )
    if isinstance(formula, Iff):
        left = formula_to_guard(formula.left)
        right = formula_to_guard(formula.right)
        return GOr((GAnd((left, right)), GAnd((GNot(left), GNot(right)))))
    raise PifError(f"guard must be propositional, got {formula}")


def _formula_to_bdd(formula: Formula, fsm) -> int:
    return formula_to_guard(formula).to_bdd(fsm)


_EDGE_RE = re.compile(r"^(\w[\w.$#]*)->(\w[\w.$#]*)$")


def _parse_prop(text: str, where: str) -> Formula:
    try:
        return parse_ctl(text)
    except CtlParseError as exc:
        raise PifError(f"{where}: {exc}") from exc


def parse_pif(text: str, source: str = "<string>") -> PifFile:
    """Parse PIF text."""
    out = PifFile()
    lines = [line.split("#", 1)[0].rstrip() for line in text.splitlines()]
    i = 0

    def err(lineno: int, message: str) -> PifError:
        return PifError(f"{source}:{lineno + 1}: {message}")

    while i < len(lines):
        line = lines[i].strip()
        if not line:
            i += 1
            continue
        if line.startswith("ctl "):
            rest = line[4:]
            if "::" not in rest:
                raise err(i, "ctl line needs 'ctl <name> :: <formula>'")
            name, formula_text = rest.split("::", 1)
            out.ctl_props.append(
                (name.strip(), _parse_prop(formula_text.strip(), f"line {i + 1}"))
            )
            i += 1
            continue
        if line.startswith("fairness "):
            rest = line[len("fairness "):].strip()
            parts = rest.split("::", 1)
            if len(parts) != 2:
                raise err(i, "fairness line needs 'fairness <kind> :: <pred>'")
            kind = parts[0].strip()
            if kind not in ("negative", "buchi", "edge", "streett"):
                raise err(i, f"unknown fairness kind {kind!r}")
            label = f"{kind}@{i + 1}"
            if kind == "streett":
                halves = parts[1].split(";")
                if len(halves) != 2:
                    raise err(i, "streett fairness needs '<e-pred> ; <f-pred>'")
                out.fairness.append(
                    FairnessDecl(
                        kind=kind,
                        first=_parse_prop(halves[0].strip(), f"line {i + 1}"),
                        second=_parse_prop(halves[1].strip(), f"line {i + 1}"),
                        label=label,
                    )
                )
            else:
                out.fairness.append(
                    FairnessDecl(
                        kind=kind,
                        first=_parse_prop(parts[1].strip(), f"line {i + 1}"),
                        label=label,
                    )
                )
            i += 1
            continue
        if line.startswith("automaton"):
            parts = line.split()
            if len(parts) != 2:
                raise err(i, "automaton line needs a name")
            name = parts[1]
            i += 1
            states: List[str] = []
            initial: List[str] = []
            edges: List[Tuple[str, str, Guard]] = []
            accepts: List[Tuple[str, str]] = []
            while i < len(lines):
                body = lines[i].strip()
                if not body:
                    i += 1
                    continue
                if body == "end":
                    break
                if body.startswith("states "):
                    states.extend(body.split()[1:])
                elif body.startswith("initial "):
                    initial.extend(body.split()[1:])
                elif body.startswith("edge "):
                    rest = body[len("edge "):]
                    if "::" in rest:
                        head, guard_text = rest.split("::", 1)
                        guard = formula_to_guard(
                            _parse_prop(guard_text.strip(), f"line {i + 1}")
                        )
                    else:
                        head, guard = rest, GTrue()
                    head_parts = head.split()
                    if len(head_parts) != 2:
                        raise err(i, "edge line needs 'edge <src> <dst> [:: guard]'")
                    edges.append((head_parts[0], head_parts[1], guard))
                elif body.startswith("accept "):
                    accepts.append((body, f"line {i + 1}"))
                else:
                    raise err(i, f"unexpected automaton line {body!r}")
                i += 1
            if i >= len(lines):
                raise err(i - 1, f"automaton {name!r} missing 'end'")
            i += 1  # past 'end'
            aut = Automaton(name=name, states=states, initial=initial)
            for src, dst, guard in edges:
                aut.add_edge(src, dst, guard)
            for body, where in accepts:
                _apply_accept(aut, body, where)
            out.automata.append(aut)
            continue
        raise err(i, f"unexpected line {line!r}")
    return out


def _parse_edge_list(text: str, where: str) -> List[Tuple[str, str]]:
    pairs = []
    for token in text.replace(",", " ").split():
        match = _EDGE_RE.match(token)
        if not match:
            raise PifError(f"{where}: bad edge {token!r} (want src->dst)")
        pairs.append((match.group(1), match.group(2)))
    return pairs


def _apply_accept(aut: Automaton, body: str, where: str) -> None:
    rest = body[len("accept "):].strip()
    if rest.startswith("invariance"):
        aut.accept_invariance(rest.split()[1:])
        return
    if rest.startswith("recurrence"):
        aut.accept_recurrence(_parse_edge_list(rest[len("recurrence"):], where))
        return
    if rest.startswith("rabin"):
        match = re.match(
            r"rabin\s+fin\s*\{([^}]*)\}\s*inf\s*\{([^}]*)\}\s*$", rest
        )
        if not match:
            raise PifError(f"{where}: bad rabin acceptance {rest!r}")
        aut.accept_rabin(
            _parse_edge_list(match.group(1), where),
            _parse_edge_list(match.group(2), where),
        )
        return
    raise PifError(f"{where}: unknown acceptance {rest!r}")


def parse_pif_file(path: str) -> PifFile:
    """Parse a PIF file from disk."""
    with open(path) as handle:
        return parse_pif(handle.read(), source=path)
