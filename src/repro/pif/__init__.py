"""PIF: the Property Intermediate Format (CTL + automata + fairness),
plus the parameterized property library of paper §8 item 8."""

from repro.pif.parser import (
    FairnessDecl,
    PifError,
    PifFile,
    formula_to_guard,
    parse_pif,
    parse_pif_file,
)
from repro.pif.library import (
    Property,
    TEMPLATES,
    absence_before,
    always_eventually,
    instantiate,
    invariant,
    mutual_exclusion,
    never,
    next_step,
    precedence,
    reachable,
    response,
)

__all__ = [
    "FairnessDecl",
    "PifError",
    "PifFile",
    "formula_to_guard",
    "parse_pif",
    "parse_pif_file",
    "Property",
    "TEMPLATES",
    "absence_before",
    "always_eventually",
    "instantiate",
    "invariant",
    "mutual_exclusion",
    "never",
    "next_step",
    "precedence",
    "reachable",
    "response",
]
