"""Library of parameterized properties (paper §8 item 8).

    "To make formal verification more accessible to novices, we plan to
    compile a library of commonly used properties.  The elements of the
    library would be parameterized so that they could be adapted to
    specific situations, and they would be accessible through an
    interface that would not require knowledge of CTL or ω-automata."

Each template takes net names / values and returns both formulations
where both exist: a CTL formula (for the model checker) and a
deterministic edge-Rabin automaton (for language containment), so users
can pick either engine — or cross-check them, as the test suite does.
Atoms are ``(net, value)`` pairs; ``net`` alone means ``(net, "1")``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.automata.automaton import Automaton, GAnd, GNot, Guard, atom as gatom
from repro.ctl.ast import AF, AG, AX, And, Atom, EF, Formula, Implies, Not

NetSpec = Union[str, Tuple[str, str]]


def _net(spec: NetSpec) -> Tuple[str, str]:
    if isinstance(spec, str):
        return spec, "1"
    return spec[0], str(spec[1])


def _guard(spec: NetSpec) -> Guard:
    net, value = _net(spec)
    return gatom(net, value)


def _atom(spec: NetSpec) -> Atom:
    net, value = _net(spec)
    return Atom(net, (value,))


@dataclass
class Property:
    """A library property: a name, a CTL form and/or an automaton form."""

    name: str
    ctl: Optional[Formula]
    automaton: Optional[Automaton]
    description: str = ""


def _invariance_automaton(name: str, good: Guard) -> Automaton:
    aut = Automaton(name=name, states=["GOOD", "BAD"], initial=["GOOD"])
    aut.add_edge("GOOD", "GOOD", good)
    aut.add_edge("GOOD", "BAD", GNot(good))
    aut.add_edge("BAD", "BAD")
    aut.accept_invariance(["GOOD"])
    return aut


def mutual_exclusion(a: NetSpec, b: NetSpec, name: str = "mutex") -> Property:
    """``a`` and ``b`` are never asserted at the same time (Figure 2)."""
    bad = And(_atom(a), _atom(b))
    good_guard = GNot(GAnd((_guard(a), _guard(b))))
    return Property(
        name=name,
        ctl=AG(Not(bad)),
        automaton=_invariance_automaton(name, good_guard),
        description=f"never {a} and {b} simultaneously",
    )


def invariant(good: NetSpec, name: str = "invariant") -> Property:
    """``good`` holds in every reachable state."""
    return Property(
        name=name,
        ctl=AG(_atom(good)),
        automaton=_invariance_automaton(name, _guard(good)),
        description=f"always {good}",
    )


def never(bad: NetSpec, name: str = "never") -> Property:
    """``bad`` holds in no reachable state."""
    return Property(
        name=name,
        ctl=AG(Not(_atom(bad))),
        automaton=_invariance_automaton(name, GNot(_guard(bad))),
        description=f"never {bad}",
    )


def response(request: NetSpec, grant: NetSpec, name: str = "response") -> Property:
    """Every ``request`` is eventually followed by ``grant``.

    CTL: ``AG (request -> AF grant)``.  Automaton: Büchi ("the monitor
    is out of the pending state infinitely often"), which is the
    standard ω-automaton for response and needs fairness on the system
    side to be meaningful — exactly the §5.1 story.
    """
    req_g, grant_g = _guard(request), _guard(grant)
    aut = Automaton(name=name, states=["IDLE", "PEND"], initial=["IDLE"])
    aut.add_edge("IDLE", "PEND", GAnd((req_g, GNot(grant_g))))
    aut.add_edge("IDLE", "IDLE", GNot(GAnd((req_g, GNot(grant_g)))))
    aut.add_edge("PEND", "IDLE", grant_g)
    aut.add_edge("PEND", "PEND", GNot(grant_g))
    # accepted runs leave PEND infinitely often (or never enter it)
    aut.accept_recurrence([("IDLE", "IDLE"), ("IDLE", "PEND"), ("PEND", "IDLE")])
    return Property(
        name=name,
        ctl=AG(Implies(_atom(request), AF(_atom(grant)))),
        automaton=aut,
        description=f"{request} is always followed by {grant}",
    )


def absence_before(bad: NetSpec, gate: NetSpec, name: str = "absence_before") -> Property:
    """``bad`` never happens before the first ``gate``.

    CTL: ``A[!bad U gate]`` would demand gate eventually happens; the
    safety reading (bad may not precede gate, gate optional) is
    ``!E[!gate U bad & !gate]``; the automaton form watches the prefix.
    """
    from repro.ctl.ast import EU

    bad_a, gate_a = _atom(bad), _atom(gate)
    bad_g, gate_g = _guard(bad), _guard(gate)
    aut = Automaton(name=name, states=["WAIT", "OPEN", "BAD"], initial=["WAIT"])
    aut.add_edge("WAIT", "OPEN", gate_g)
    aut.add_edge("WAIT", "BAD", GAnd((bad_g, GNot(gate_g))))
    aut.add_edge("WAIT", "WAIT", GAnd((GNot(bad_g), GNot(gate_g))))
    aut.add_edge("OPEN", "OPEN")
    aut.add_edge("BAD", "BAD")
    aut.accept_invariance(["WAIT", "OPEN"])
    return Property(
        name=name,
        ctl=Not(EU(Not(gate_a), And(bad_a, Not(gate_a)))),
        automaton=aut,
        description=f"no {bad} before the first {gate}",
    )


def precedence(cause: NetSpec, effect: NetSpec, name: str = "precedence") -> Property:
    """``effect`` only after ``cause`` has happened at least once."""
    return absence_before(bad=effect, gate=cause, name=name)


def next_step(trigger: NetSpec, outcome: NetSpec, name: str = "next_step") -> Property:
    """Whenever ``trigger`` holds, ``outcome`` holds at the next tick."""
    trig_g, out_g = _guard(trigger), _guard(outcome)
    aut = Automaton(name=name, states=["IDLE", "ARMED", "BAD"], initial=["IDLE"])
    aut.add_edge("IDLE", "ARMED", trig_g)
    aut.add_edge("IDLE", "IDLE", GNot(trig_g))
    aut.add_edge("ARMED", "ARMED", GAnd((out_g, trig_g)))
    aut.add_edge("ARMED", "IDLE", GAnd((out_g, GNot(trig_g))))
    aut.add_edge("ARMED", "BAD", GNot(out_g))
    aut.add_edge("BAD", "BAD")
    aut.accept_invariance(["IDLE", "ARMED"])
    return Property(
        name=name,
        ctl=AG(Implies(_atom(trigger), AX(_atom(outcome)))),
        automaton=aut,
        description=f"{trigger} implies {outcome} at the next clock",
    )


def reachable(target: NetSpec, name: str = "reachable") -> Property:
    """Some execution reaches ``target`` (existential — CTL only).

    Existential properties have no language-containment form (language
    containment quantifies over *all* behaviours, paper §2).
    """
    return Property(
        name=name,
        ctl=EF(_atom(target)),
        automaton=None,
        description=f"{target} is reachable",
    )


def always_eventually(target: NetSpec, name: str = "always_eventually") -> Property:
    """``target`` recurs on every (fair) path: ``AG AF target``."""
    t_g = _guard(target)
    aut = Automaton(name=name, states=["W", "S"], initial=["W"])
    aut.add_edge("W", "S", t_g)
    aut.add_edge("W", "W", GNot(t_g))
    aut.add_edge("S", "S", t_g)
    aut.add_edge("S", "W", GNot(t_g))
    aut.accept_recurrence([("W", "S"), ("S", "S")])
    return Property(
        name=name,
        ctl=AG(AF(_atom(target))),
        automaton=aut,
        description=f"{target} happens infinitely often",
    )


TEMPLATES = {
    "mutual_exclusion": mutual_exclusion,
    "invariant": invariant,
    "never": never,
    "response": response,
    "absence_before": absence_before,
    "precedence": precedence,
    "next_step": next_step,
    "reachable": reachable,
    "always_eventually": always_eventually,
}


def instantiate(template: str, *args: NetSpec, name: Optional[str] = None) -> Property:
    """Instantiate a template by name (the novice-facing interface)."""
    try:
        builder = TEMPLATES[template]
    except KeyError:
        raise KeyError(
            f"unknown property template {template!r}; "
            f"available: {sorted(TEMPLATES)}"
        ) from None
    kwargs = {}
    if name is not None:
        kwargs["name"] = name
    return builder(*args, **kwargs)
