"""Error-trace infrastructure shared by the LC and CTL debuggers (paper §6).

A counterexample to a linear/branching property is a *lasso*: a finite
prefix from an initial state followed by a cycle.  The prefix is made
minimal by construction (the BFS onion rings of the reachability run give
the exact depth of every state, so walking them backwards yields a
shortest path); the cycle is heuristically minimized by greedy
shortest-path threading through the required fair-edge sets — the cycle
minimization problem itself is NP-hard (paper §6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lc.faircycle import FairGraph, FairScc


@dataclass
class TraceStep:
    """One state of a trace, decoded to latch values."""

    state: Dict[str, str]
    note: str = ""

    def format(self, names: Optional[Sequence[str]] = None) -> str:
        keys = names if names is not None else sorted(self.state)
        body = " ".join(f"{k}={self.state[k]}" for k in keys)
        return f"{body}  {self.note}".rstrip()


@dataclass
class Trace:
    """A lasso-shaped error trace: ``prefix`` then ``cycle`` repeated."""

    prefix: List[TraceStep] = field(default_factory=list)
    cycle: List[TraceStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.prefix) + len(self.cycle)

    def format(self, names: Optional[Sequence[str]] = None) -> str:
        lines = []
        for i, step in enumerate(self.prefix):
            lines.append(f"  {i:3d}: {step.format(names)}")
        if self.cycle:
            lines.append("  --- cycle (repeats forever) ---")
            for i, step in enumerate(self.cycle):
                lines.append(f"  {i + len(self.prefix):3d}: {step.format(names)}")
        return "\n".join(lines)


def pick_minterm(graph: FairGraph, states: int) -> Optional[int]:
    """One concrete state of ``states`` as a cube BDD."""
    return graph.pick_state(states)


def extract_shortest_path(
    graph: FairGraph, rings: Sequence[int], target: int
) -> Optional[List[int]]:
    """Shortest path from ring 0 to ``target`` using BFS onion rings.

    ``rings[k]`` must hold exactly the states first reached at depth
    ``k``.  Returns a list of state minterms, or None if ``target`` is
    not inside any ring.  The path length is minimal because the first
    ring intersecting the target gives the true BFS distance.
    """
    bdd = graph.bdd
    depth = None
    for k, ring in enumerate(rings):
        if bdd.and_(ring, target) != bdd.false:
            depth = k
            break
    if depth is None:
        return None
    current = pick_minterm(graph, bdd.and_(rings[depth], target))
    assert current is not None
    path = [current]
    for k in range(depth - 1, -1, -1):
        preds = bdd.and_(rings[k], graph.pre(current))
        current = pick_minterm(graph, preds)
        assert current is not None, "onion rings are inconsistent"
        path.append(current)
    path.reverse()
    return path


def shortest_path_within(
    graph: FairGraph, region: int, source: int, target: int, trans: int
) -> Optional[List[int]]:
    """Shortest path inside ``region`` from ``source`` (a minterm) to
    ``target`` (a set), under sub-relation ``trans``.

    Length-zero paths are allowed (source intersects target).  Returns
    minterm list or None if unreachable.
    """
    bdd = graph.bdd
    if bdd.and_(source, target) != bdd.false:
        return [source]
    rings = [bdd.and_(source, region)]
    reached = rings[0]
    while True:
        frontier = bdd.diff(bdd.and_(graph.post(rings[-1], trans), region), reached)
        if frontier == bdd.false:
            return None
        rings.append(frontier)
        reached = bdd.or_(reached, frontier)
        if bdd.and_(frontier, target) != bdd.false:
            break
    # Walk backwards.
    current = pick_minterm(graph, bdd.and_(rings[-1], target))
    assert current is not None
    path = [current]
    for k in range(len(rings) - 2, -1, -1):
        preds = bdd.and_(rings[k], graph.pre(current, trans))
        current = pick_minterm(graph, preds)
        assert current is not None
        path.append(current)
    path.reverse()
    return path


def thread_fair_cycle(graph: FairGraph, scc: FairScc, anchor: int) -> List[int]:
    """A cycle through ``anchor`` inside ``scc`` visiting every required
    edge set (greedy heuristic minimization, paper §6.1).

    Returns the cycle as minterms starting at ``anchor``; the successor
    of the last state is ``anchor`` again.
    """
    bdd = graph.bdd
    current = anchor
    states: List[int] = [anchor]
    for edges, _label in scc.required_edges:
        if edges == bdd.false:
            continue
        sources = graph.edge_sources(edges, scc.trans)
        leg = shortest_path_within(graph, scc.states, current, sources, scc.trans)
        assert leg is not None, "required edge not reachable inside its SCC"
        states.extend(leg[1:])
        src = leg[-1]
        dst_set = graph.post(src, bdd.and_(scc.trans, edges))
        dst = pick_minterm(graph, dst_set)
        assert dst is not None
        states.append(dst)
        current = dst
    if current == anchor and len(states) == 1:
        # No required edges: take any single step first so the cycle is
        # non-empty.
        step = pick_minterm(graph, graph.post(current, scc.trans))
        assert step is not None
        states.append(step)
        current = step
    closing = shortest_path_within(graph, scc.states, current, anchor, scc.trans)
    assert closing is not None, "SCC is not strongly connected?"
    states.extend(closing[1:])
    # states starts and ends at anchor; drop the duplicated anchor.
    if len(states) > 1 and states[-1] == anchor:
        states.pop()
    return states


def decode_path(fsm, path: Sequence[int], note_for: Optional[Dict[int, str]] = None) -> List[TraceStep]:
    """Minterm path -> decoded trace steps."""
    steps = []
    for node in path:
        cube = fsm.bdd.pick_cube(node, fsm.x_bits())
        assert cube is not None
        steps.append(
            TraceStep(
                state=fsm.decode_state(cube),
                note=(note_for or {}).get(node, ""),
            )
        )
    return steps
