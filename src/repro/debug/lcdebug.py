"""Language-containment debugger (paper §6.1).

Produces a lasso-shaped debug trace from a failed containment check: the
path to the cycle is *minimum* among all error traces (extracted from the
BFS onion rings), while the cycle — whose exact minimization is NP-hard —
is heuristically minimized by greedy shortest-path threading through the
fair-edge requirements.
"""

from __future__ import annotations


from repro.debug.trace import (
    Trace,
    decode_path,
    extract_shortest_path,
    thread_fair_cycle,
)
from repro.lc.containment import LcResult


def lc_counterexample(result: LcResult) -> Trace:
    """Build the error trace for a failed :func:`check_containment` run.

    Raises ``ValueError`` if the check actually passed.
    """
    if result.holds or result.fair_scc is None:
        raise ValueError("language containment holds; there is no error trace")
    graph = result.graph
    scc = result.fair_scc
    rings = result.reach.rings
    if not rings:
        rings = result.fsm.reachable().rings
    prefix_minterms = extract_shortest_path(graph, rings, scc.states)
    if prefix_minterms is None:
        raise AssertionError("fair SCC not covered by reachability rings")
    anchor = prefix_minterms[-1]
    cycle_minterms = thread_fair_cycle(graph, scc, anchor)
    fsm = result.fsm
    prefix = decode_path(fsm, prefix_minterms[:-1])
    cycle = decode_path(fsm, cycle_minterms)
    if cycle:
        cycle[0].note = "(cycle start)"
    trace = Trace(prefix=prefix, cycle=cycle)
    return trace


def format_lc_report(result: LcResult, max_width: int = 100) -> str:
    """Human-readable bug report for a containment check (pass or fail).

    When the design came through vl2mv the report ends with a source map
    relating each latch in the trace back to the HDL lines that assign
    it (source-level debugging, paper §8 item 7).
    """
    name = result.automaton.name
    lines = [f"property {name!r} (language containment)"]
    lines.append(
        f"  reached states explored in {result.reach.iterations} iterations"
    )
    if result.holds:
        lines.append("  PASS: the system language is contained in the property")
        return "\n".join(lines)
    kind = "early failure detection" if result.early_failure else "fair cycle search"
    lines.append(f"  FAIL (found by {kind}); error trace:")
    trace = lc_counterexample(result)
    lines.append(trace.format())
    sources = result.fsm.model.sources
    if sources:
        lines.append("  source map:")
        for net in sorted(sources):
            lines.append(f"    {net} assigned at {sources[net]}")
    return "\n".join(lines)
