"""Debugging environment: error traces for LC and interactive CTL debugging."""

from repro.debug.trace import (
    Trace,
    TraceStep,
    decode_path,
    extract_shortest_path,
    shortest_path_within,
    thread_fair_cycle,
)
from repro.debug.lcdebug import format_lc_report, lc_counterexample
from repro.debug.mcdebug import CtlDebugger, DebugNode

__all__ = [
    "Trace",
    "TraceStep",
    "decode_path",
    "extract_shortest_path",
    "shortest_path_within",
    "thread_fair_cycle",
    "format_lc_report",
    "lc_counterexample",
    "CtlDebugger",
    "DebugNode",
]
