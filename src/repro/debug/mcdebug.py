"""Interactive model-checking debugger (paper §6.2).

The CTL debugger unfolds a failed formula one step at a time.  CTL
formulas are state formulas, so every node of the explanation tree is a
(formula, state) pair with a verdict:

* boolean combinations branch into the sub-formulas responsible
  (``h = f | g`` false: the user may pick which of ``f``, ``g`` to see
  certified false);
* a false universal path formula is explained by a heuristically
  shortest witness path to the offending state (e.g. ``AG f`` by a
  shortest path to a ``!f`` state, ``AF f`` by a lasso staying in
  ``!f``);
* a false existential formula is explained by exhibiting that every
  successor fails.

:class:`CtlDebugger` builds the tree programmatically (depth-bounded);
the HSIS-style interactive prompt on top of it lives in
:mod:`repro.cli`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    And,
    Atom,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
)
from repro.ctl.modelcheck import ModelChecker
from repro.ctl.parser import parse_ctl
from repro.debug.trace import (
    TraceStep,
    decode_path,
    shortest_path_within,
    thread_fair_cycle,
)
from repro.lc.faircycle import find_fair_scc


@dataclass
class DebugNode:
    """One node of the explanation tree."""

    formula: Formula
    state: Dict[str, str]
    holds: bool
    note: str = ""
    path: List[TraceStep] = field(default_factory=list)
    children: List["DebugNode"] = field(default_factory=list)

    def format(self, indent: int = 0) -> str:
        pad = "  " * indent
        verdict = "holds" if self.holds else "FAILS"
        lines = [f"{pad}{self.formula}  {verdict} at {_fmt_state(self.state)}"]
        if self.note:
            lines.append(f"{pad}  note: {self.note}")
        for step in self.path:
            lines.append(f"{pad}  | {step.format()}")
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


def _fmt_state(state: Dict[str, str]) -> str:
    return "{" + " ".join(f"{k}={v}" for k, v in sorted(state.items())) + "}"


class CtlDebugger:
    """Explanation-tree builder over a :class:`ModelChecker`."""

    def __init__(self, checker: ModelChecker, max_depth: int = 4):
        self.mc = checker
        self.fsm = checker.fsm
        self.bdd = checker.bdd
        self.graph = checker.graph
        self.max_depth = max_depth

    # ------------------------------------------------------------------

    def explain(self, formula, state: Optional[Dict[str, str]] = None) -> DebugNode:
        """Explain why ``formula`` holds/fails at ``state``.

        ``state`` defaults to a failing initial state if the formula
        fails somewhere in ``init``, else to any initial state.
        """
        if isinstance(formula, str):
            formula = parse_ctl(formula)
        sat = self.mc.eval(formula)
        if state is None:
            failing = self.bdd.diff(self.fsm.init, sat)
            source = failing if failing != self.bdd.false else self.fsm.init
            picked = self.fsm.pick_state(source)
            assert picked is not None, "no initial states"
            state = picked
        return self._explain(formula, state, self.max_depth)

    # ------------------------------------------------------------------

    def _state_bdd(self, state: Dict[str, str]) -> int:
        return self.fsm.state_cube(state)

    def _holds_at(self, formula: Formula, state: Dict[str, str]) -> bool:
        s = self._state_bdd(state)
        return self.bdd.and_(s, self.mc.eval(formula)) != self.bdd.false

    def _explain(self, f: Formula, state: Dict[str, str], depth: int) -> DebugNode:
        holds = self._holds_at(f, state)
        node = DebugNode(formula=f, state=dict(state), holds=holds)
        if depth <= 0:
            node.note = "(depth limit reached; ask deeper)"
            return node
        if isinstance(f, (TrueF, FalseF, Atom)):
            node.note = "atomic"
            return node
        if isinstance(f, Not):
            node.children.append(self._explain(f.sub, state, depth - 1))
            return node
        if isinstance(f, And):
            for sub in (f.left, f.right):
                child_holds = self._holds_at(sub, state)
                if holds or not child_holds:
                    node.children.append(self._explain(sub, state, depth - 1))
            return node
        if isinstance(f, Or):
            # False disjunction: both disjuncts are certified false (the
            # interactive prompt lets the user pick one; the tree keeps both).
            for sub in (f.left, f.right):
                child_holds = self._holds_at(sub, state)
                if (not holds) or child_holds:
                    node.children.append(self._explain(sub, state, depth - 1))
                    if holds and child_holds:
                        break
            return node
        if isinstance(f, Implies):
            return self._explain(Or(Not(f.left), f.right), state, depth)
        if isinstance(f, Iff):
            return self._explain(
                And(Implies(f.left, f.right), Implies(f.right, f.left)), state, depth
            )
        if isinstance(f, (AG, AF, AX, AU)):
            return self._explain_universal(node, f, state, depth)
        if isinstance(f, (EX, EF, EG, EU)):
            return self._explain_existential(node, f, state, depth)
        node.note = "unsupported formula shape"
        return node

    # -- universal operators: false => existential witness of negation ----

    def _explain_universal(
        self, node: DebugNode, f: Formula, state: Dict[str, str], depth: int
    ) -> DebugNode:
        bdd = self.bdd
        s = self._state_bdd(state)
        if node.holds:
            node.note = "all paths satisfy the property"
            return node
        if isinstance(f, AX):
            bad = bdd.diff(self.mc.space, self.mc.eval(f.sub))
            succ = bdd.and_(self.graph.post(s), bad)
            nxt = self.fsm.pick_state(succ)
            assert nxt is not None
            node.note = "a successor violates the body"
            node.children.append(self._explain(f.sub, nxt, depth - 1))
            return node
        if isinstance(f, AG):
            bad = bdd.diff(self.mc.space, self.mc.eval(f.sub))
            path = shortest_path_within(
                self.graph, self.mc.space, s, bad, self.graph.trans
            )
            assert path is not None
            node.path = decode_path(self.fsm, path)
            node.note = f"shortest path to a violating state ({len(path) - 1} steps)"
            end = self.fsm.pick_state(path[-1])
            assert end is not None
            node.children.append(self._explain(f.sub, end, depth - 1))
            return node
        if isinstance(f, AF):
            node.path, cycle = self._lasso_witness(Not(f.sub), s)
            node.note = (
                "a (fair) path stays in the negation forever: prefix then cycle "
                f"of {len(cycle)} states"
            )
            node.path = node.path + cycle
            return node
        if isinstance(f, AU):
            # Violation: either a path where right never holds (lasso in
            # !right) or a path reaching !left & !right before right.
            nl = And(Not(f.left), Not(f.right))
            bad = self.mc.eval(nl)
            nr_region = bdd.diff(self.mc.space, self.mc.eval(f.right))
            path = shortest_path_within(self.graph, nr_region, s, bad, self.graph.trans)
            if path is not None:
                node.path = decode_path(self.fsm, path)
                node.note = "left fails before right ever holds"
            else:
                prefix, cycle = self._lasso_witness(Not(f.right), s)
                node.path = prefix + cycle
                node.note = "right never holds along this (fair) path"
            return node
        return node

    # -- existential operators --------------------------------------------

    def _explain_existential(
        self, node: DebugNode, f: Formula, state: Dict[str, str], depth: int
    ) -> DebugNode:
        bdd = self.bdd
        s = self._state_bdd(state)
        if not node.holds:
            if isinstance(f, EX):
                succs = list(self.fsm.states_iter(self.graph.post(s), limit=8))
                node.note = (
                    "no successor satisfies the body; successors: "
                    + "; ".join(_fmt_state(t) for t in succs)
                )
            else:
                node.note = "no path witnesses the property from this state"
            return node
        if isinstance(f, EX):
            good = self.mc.eval(f.sub)
            nxt = self.fsm.pick_state(bdd.and_(self.graph.post(s), good))
            assert nxt is not None
            node.note = "witness successor"
            node.children.append(self._explain(f.sub, nxt, depth - 1))
            return node
        if isinstance(f, (EF, EU)):
            hold_region = (
                self.mc.space if isinstance(f, EF) else self.mc.eval(f.left)
            )
            target_formula = f.sub if isinstance(f, EF) else f.right
            target = self.mc.eval(target_formula)
            region = bdd.or_(hold_region, target)
            path = shortest_path_within(self.graph, region, s, target, self.graph.trans)
            assert path is not None
            node.path = decode_path(self.fsm, path)
            node.note = f"witness path ({len(path) - 1} steps)"
            return node
        if isinstance(f, EG):
            prefix, cycle = self._lasso_witness(f.sub, s)
            node.path = prefix + cycle
            node.note = "witness lasso staying in the body"
            return node
        return node

    # ------------------------------------------------------------------

    def _lasso_witness(self, body: Formula, source: int):
        """Prefix+cycle (decoded) for a fair path staying in ``body``."""
        bdd = self.bdd
        region = self.mc.eval(body) if not isinstance(body, TrueF) else self.mc.space
        region = bdd.and_(region, self.mc.eg(region))
        scc = find_fair_scc(self.graph, self.mc.normalized, region)
        assert scc is not None, "EG region contains no fair cycle"
        t_region = self.graph.restrict(self.graph.trans, region)
        prefix_minterms = shortest_path_within(
            self.graph, region, bdd.and_(source, region), scc.states, t_region
        )
        assert prefix_minterms is not None
        anchor = prefix_minterms[-1]
        cycle_minterms = thread_fair_cycle(self.graph, scc, anchor)
        prefix = decode_path(self.fsm, prefix_minterms[:-1])
        cycle = decode_path(self.fsm, cycle_minterms)
        if cycle:
            cycle[0].note = "(cycle start)"
        return prefix, cycle
