"""State-based simulator (paper §1 item 4).

HSIS bundles a simulator that enumerates reachable states of the design
under user control — useful for finding easy bugs before running full
verification.  This implementation walks concrete states of the encoded
network: from the current state it enumerates the symbolic image and
lets the caller (or a seeded random policy) choose the successor.

The simulator never builds the monolithic transition relation: each step
is one partitioned image of a single state, so it stays cheap even on
machines whose product relation would blow up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.network.fsm import SymbolicFsm

State = Dict[str, str]


@dataclass
class SimTrace:
    """History of one simulation run."""

    states: List[State] = field(default_factory=list)

    def format(self) -> str:
        lines = []
        for i, state in enumerate(self.states):
            body = " ".join(f"{k}={v}" for k, v in sorted(state.items()))
            lines.append(f"  {i:3d}: {body}")
        return "\n".join(lines)


class Simulator:
    """Interactive/random walker over the reachable states of a machine.

    The random policy is deterministic by default (``seed=0``) so runs
    are reproducible; pass a different seed for other walks, or
    ``seed=None`` to seed from OS entropy.
    """

    def __init__(self, fsm: SymbolicFsm, seed: Optional[int] = 0):
        self.fsm = fsm
        self.bdd = fsm.bdd
        self.random = random.Random(seed)
        self.trace = SimTrace()
        self.current: Optional[State] = None
        self._visited = fsm.bdd.false

    # ------------------------------------------------------------------

    def initial_states(self, limit: Optional[int] = 64) -> List[State]:
        """Enumerate (up to ``limit``) initial states."""
        return list(self.fsm.states_iter(self.fsm.init, limit=limit))

    def reset(self, state: Optional[State] = None) -> State:
        """Restart simulation from ``state`` (default: a random initial one)."""
        if state is None:
            choices = self.initial_states()
            if not choices:
                raise ValueError("the machine has no initial states")
            state = self.random.choice(choices)
        self.current = dict(state)
        self.trace = SimTrace(states=[self.current])
        self._visited = self.fsm.state_cube(self.current)
        return self.current

    def successors(self, limit: Optional[int] = 64) -> List[State]:
        """Enumerate (up to ``limit``) successors of the current state."""
        if self.current is None:
            raise ValueError("call reset() first")
        cube = self.fsm.state_cube(self.current)
        image = self.fsm.image_partitioned(cube)
        return list(self.fsm.states_iter(image, limit=limit))

    def step(self, choice: Optional[int] = None, limit: Optional[int] = 64) -> State:
        """Advance one clock tick.

        ``choice`` indexes into :meth:`successors`; None picks randomly
        (the HSIS simulator's "under user control" knob).
        """
        succs = self.successors(limit=limit)
        if not succs:
            raise ValueError("deadlock: the current state has no successor")
        if choice is None:
            nxt = self.random.choice(succs)
        else:
            if not 0 <= choice < len(succs):
                raise IndexError(f"choice {choice} out of range 0..{len(succs) - 1}")
            nxt = succs[choice]
        self.current = dict(nxt)
        self.trace.states.append(self.current)
        self._visited = self.bdd.or_(self._visited, self.fsm.state_cube(self.current))
        return self.current

    def run(
        self,
        steps: int,
        policy: Optional[Callable[[List[State]], int]] = None,
    ) -> SimTrace:
        """Run ``steps`` ticks with an optional successor-choice policy."""
        if self.current is None:
            self.reset()
        for _ in range(steps):
            if policy is None:
                self.step()
            else:
                succs = self.successors()
                if not succs:
                    break
                self.step(policy(succs))
        return self.trace

    def visited_count(self) -> int:
        """Number of distinct states touched by this run."""
        return self.fsm.count_states(self._visited)

    def check(self, predicate: Dict[str, str]) -> bool:
        """Does the current state match a partial latch valuation?"""
        if self.current is None:
            raise ValueError("call reset() first")
        return all(self.current.get(k) == v for k, v in predicate.items())
