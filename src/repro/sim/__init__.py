"""State-based simulation of encoded networks."""

from repro.sim.simulator import SimTrace, Simulator, State

__all__ = ["SimTrace", "Simulator", "State"]
