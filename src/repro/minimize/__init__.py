"""Bisimulation minimization and don't-care BDD reduction."""

from repro.minimize.bisim import (
    MinimizeReport,
    PartitionResult,
    bisimulation_partition,
    initial_partition,
    minimize_with_equivalence,
    minimize_with_reached,
    quotient_size,
    representatives,
)

__all__ = [
    "MinimizeReport",
    "PartitionResult",
    "bisimulation_partition",
    "initial_partition",
    "minimize_with_equivalence",
    "minimize_with_reached",
    "quotient_size",
    "representatives",
]
