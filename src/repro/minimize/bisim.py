"""State minimization: bisimulation and don't-care BDD reduction (paper §1
item 3 and §8 item 2).

Two distinct mechanisms are provided:

* **Symbolic bisimulation partition refinement** — classes are state-set
  BDDs; the initial partition separates states by their observable
  predicates, and refinement splits each class against the predecessors
  of every other class until stable.  The result is the coarsest
  bisimulation respecting the observables.
* **Don't-care BDD minimization** — HSIS shrinks intermediate BDDs using
  don't cares.  Reached-state don't cares minimize the transition
  relation with Coudert-Madre restrict; bisimulation classes supply a
  representative-state care set (all non-representative states become
  don't cares, since an equivalent representative carries their
  behaviour).  The paper reports "significant reduction in BDD size" —
  benchmark ``bench_minimize`` measures exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.lc.faircycle import FairGraph
from repro.network.fsm import SymbolicFsm


@dataclass
class PartitionResult:
    """Outcome of partition refinement."""

    classes: List[int]
    iterations: int

    @property
    def num_classes(self) -> int:
        return len(self.classes)


def initial_partition(fsm: SymbolicFsm, observables: Sequence[int], within: int) -> List[int]:
    """Split ``within`` by every boolean combination of ``observables``."""
    bdd = fsm.bdd
    classes = [within]
    for obs in observables:
        split: List[int] = []
        for cls in classes:
            inside = bdd.and_(cls, obs)
            outside = bdd.diff(cls, obs)
            if inside != bdd.false:
                split.append(inside)
            if outside != bdd.false:
                split.append(outside)
        classes = split
    return classes


def bisimulation_partition(
    fsm: SymbolicFsm,
    observables: Sequence[int],
    within: Optional[int] = None,
    max_iterations: int = 10_000,
) -> PartitionResult:
    """Coarsest bisimulation respecting ``observables`` (state-set BDDs).

    ``within`` restricts the computation (commonly the reached set); it
    defaults to the whole valid-encoding state space.
    """
    bdd = fsm.bdd
    graph = FairGraph(fsm)
    space = fsm.state_domain() if within is None else bdd.and_(within, fsm.state_domain())
    classes = initial_partition(fsm, observables, space)
    iterations = 0
    changed = True
    while changed and iterations < max_iterations:
        changed = False
        iterations += 1
        for splitter in list(classes):
            pre_split = bdd.and_(graph.pre(splitter), space)
            new_classes: List[int] = []
            for cls in classes:
                inside = bdd.and_(cls, pre_split)
                outside = bdd.diff(cls, pre_split)
                if inside != bdd.false and outside != bdd.false:
                    new_classes.append(inside)
                    new_classes.append(outside)
                    changed = True
                else:
                    new_classes.append(cls)
            classes = new_classes
    return PartitionResult(classes=classes, iterations=iterations)


def representatives(fsm: SymbolicFsm, partition: PartitionResult) -> int:
    """One representative state per class, as a care-set BDD."""
    bdd = fsm.bdd
    graph = FairGraph(fsm)
    care = bdd.false
    for cls in partition.classes:
        rep = graph.pick_state(cls)
        if rep is not None:
            care = bdd.or_(care, rep)
    return care


@dataclass
class MinimizeReport:
    """Size effect of a don't-care minimization."""

    original_nodes: int
    minimized_nodes: int

    @property
    def reduction(self) -> float:
        if self.original_nodes == 0:
            return 0.0
        return 1.0 - self.minimized_nodes / self.original_nodes


def minimize_with_reached(fsm: SymbolicFsm, reached: Optional[int] = None) -> Tuple[int, MinimizeReport]:
    """Minimize the transition relation with reached-state don't cares.

    Transitions from unreachable states are free: ``restrict(T, R(x))``
    keeps exactly the reachable behaviour while (usually) shrinking the
    BDD.  Returns ``(T_minimized, report)``.
    """
    bdd = fsm.bdd
    trans = fsm.require_transition()
    if reached is None:
        reached = fsm.reachable().reached
    care = bdd.and_(reached, fsm.state_domain())
    minimized = bdd.restrict_dc(trans, care)
    return minimized, MinimizeReport(
        original_nodes=bdd.size(trans), minimized_nodes=bdd.size(minimized)
    )


def minimize_with_equivalence(
    fsm: SymbolicFsm, partition: PartitionResult
) -> Tuple[int, MinimizeReport]:
    """Minimize the transition relation using bisimulation don't cares.

    States outside the representative care set behave like their class
    representative, so their rows in ``T`` are free (paper §1: "one
    source of don't cares comes from state equivalences, such as
    bisimulation").  Sound for any property insensitive to which class
    member is visited (all observable-respecting properties).
    """
    bdd = fsm.bdd
    trans = fsm.require_transition()
    care = representatives(fsm, partition)
    minimized = bdd.restrict_dc(trans, care)
    return minimized, MinimizeReport(
        original_nodes=bdd.size(trans), minimized_nodes=bdd.size(minimized)
    )


def quotient_size(partition: PartitionResult) -> int:
    """Number of states of the bisimulation quotient machine."""
    return partition.num_classes
