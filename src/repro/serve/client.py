"""Async client for the ``hsis serve`` protocol.

:class:`ServeClient` is the scripting/test surface: one TCP
connection, coroutine methods per protocol op.  ``hsis client``
wraps it for the shell.  The client is deliberately sequential per
connection — ``submit`` reads lines until its job's ``result``
arrives, handing any interleaved ``event`` lines to an optional
callback — so drive concurrent jobs with one client per job (the
server happily serves thousands of sockets) or use
:meth:`submit_nowait` / :meth:`wait_result` to overlap submission
and completion on one socket.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, Optional

from repro.serve.protocol import MAX_LINE_BYTES, ProtocolError, decode, encode


class ServeError(Exception):
    """The server answered with an error line, or hung up."""


class ServeClient:
    """One connection to a running ``hsis serve``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )

    async def close(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    # ------------------------------------------------------------------

    async def _send(self, message: Dict[str, Any]) -> None:
        assert self._writer is not None, "not connected"
        self._writer.write(encode(message))
        await self._writer.drain()

    async def _recv(self) -> Dict[str, Any]:
        assert self._reader is not None, "not connected"
        line = await self._reader.readline()
        if not line:
            raise ServeError("server closed the connection")
        try:
            return decode(line)
        except ProtocolError as exc:  # pragma: no cover - server bug
            raise ServeError(f"unparseable server line: {exc}")

    async def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response (status / cancel / ping)."""
        await self._send(message)
        return await self._recv()

    # ------------------------------------------------------------------

    async def submit_nowait(
        self,
        kind: str,
        design: Optional[Dict[str, str]] = None,
        pif: Optional[str] = None,
        knobs: Optional[Dict[str, Any]] = None,
        stream: bool = False,
        timeout: Optional[float] = None,
        client_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Send a submission; return the ack (``submitted``) — or, for
        a cache hit, the immediate ``result`` line — without waiting
        for execution.  Raises :class:`ServeError` on a refusal."""
        message: Dict[str, Any] = {"op": "submit", "kind": kind}
        if design is not None:
            message["design"] = design
        if pif is not None:
            message["pif"] = pif
        if knobs:
            message["knobs"] = knobs
        if stream:
            message["stream"] = True
        if timeout is not None:
            message["timeout"] = timeout
        if client_id is not None:
            message["id"] = client_id
        await self._send(message)
        reply = await self._recv()
        if not reply.get("ok") and reply.get("op") == "error":
            raise ServeError(reply.get("error") or "submission refused")
        return reply

    async def wait_result(
        self,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Read until the next ``result`` line; relay events en route."""
        while True:
            reply = await self._recv()
            op = reply.get("op")
            if op == "result":
                return reply
            if op == "event":
                if on_event is not None:
                    on_event(reply)
                continue
            if op == "error":
                raise ServeError(reply.get("error") or "server error")
            # submitted acks for pipelined jobs etc.: ignore here.

    async def submit(
        self,
        kind: str,
        design: Optional[Dict[str, str]] = None,
        pif: Optional[str] = None,
        knobs: Optional[Dict[str, Any]] = None,
        stream: bool = False,
        timeout: Optional[float] = None,
        client_id: Optional[str] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Submit one job and block until its ``result`` line."""
        ack = await self.submit_nowait(
            kind, design=design, pif=pif, knobs=knobs, stream=stream,
            timeout=timeout, client_id=client_id,
        )
        if ack.get("op") == "result":  # served straight from the cache
            return ack
        return await self.wait_result(on_event=on_event)

    async def status(self, job: Optional[str] = None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"op": "status"}
        if job is not None:
            message["job"] = job
        return await self.request(message)

    async def cancel(self, job: str) -> Dict[str, Any]:
        return await self.request({"op": "cancel", "job": job})

    async def ping(self) -> Dict[str, Any]:
        return await self.request({"op": "ping"})


async def wait_for_server(
    host: str, port: int, deadline: float = 10.0
) -> None:
    """Poll until a server accepts connections (for freshly booted ones)."""
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    while True:
        try:
            client = ServeClient(host, port)
            await client.connect()
            await client.ping()
            await client.close()
            return
        except (ConnectionError, OSError, ServeError):
            if loop.time() >= end:
                raise
            await asyncio.sleep(0.05)
