"""Job kinds the server dispatches, as picklable worker bodies.

Each verb of the protocol maps to one module-level function executed in
a :class:`~repro.parallel.pool.WorkerPool` worker process — the same
crash isolation the CLI's ``--jobs`` fan-out uses, so a job that
segfaults, overruns its deadline, or blows its memory quota is reaped
by the pool and surfaced as an explicit envelope, never a wedged
server.  The bodies run exactly the serial engine code the one-shot
CLI runs (``hsis check`` / ``hsis fuzz`` / ``hsis profile``), which is
what makes the served-vs-serial verdict parity tests meaningful.

Workers report a :class:`~repro.parallel.tasks.TaskResult` whose value
is a plain JSON-serializable dict (it goes straight onto the wire and
into the result cache) and whose stats are a detached
:class:`~repro.perf.EngineStats` — carrying the worker's tracer events
back to the server for per-job relay and server-level aggregation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.parallel.tasks import Task, TaskResult
from repro.perf import EngineStats
from repro.trace.tracer import Tracer


def _parse_design(design_kind: str, design_text: str,
                  shared_shapes: bool = False):
    """Resolved design text -> flat model (verilog via vl2mv, or mv).

    With ``shared_shapes`` the result is an
    :class:`~repro.blifmv.Elaboration` (shape-aware encoding; the
    engine accepts either form).
    """
    from repro.blifmv import elaborate, flatten, parse as parse_blifmv
    from repro.verilog import compile_verilog

    if design_kind == "verilog":
        design = compile_verilog(design_text)
    else:
        design = parse_blifmv(design_text)
    if shared_shapes:
        return elaborate(design)
    return flatten(design)


def _detach(stats: EngineStats) -> EngineStats:
    """Picklable snapshot: drops the kernel handle, keeps the events."""
    detached = EngineStats()
    detached.merge(stats)
    return detached


def run_check_job(
    design_kind: str,
    design_text: str,
    pif_text: Optional[str],
    knobs: Dict[str, Any],
    trace: bool = False,
) -> TaskResult:
    """Model check every CTL property of the submission, serially."""
    from repro.ctl import ModelChecker
    from repro.network import SymbolicFsm
    from repro.pif import parse_pif

    flat = _parse_design(
        design_kind, design_text,
        shared_shapes=bool(knobs.get("shared_shapes")),
    )
    pif = parse_pif(pif_text or "", source="<submission>")
    if not pif.ctl_props:
        raise ValueError("no CTL properties in the submitted PIF text")
    fsm = SymbolicFsm(
        flat,
        auto_gc=knobs.get("auto_gc"),
        cache_limit=knobs.get("cache_limit"),
        auto_reorder=knobs.get("auto_reorder"),
        tracer=Tracer() if trace else None,
        batch_apply=knobs.get("batch_apply"),
    )
    checker = ModelChecker(fsm, fairness=pif.bind_fairness(fsm))
    verdicts = []
    for name, formula in pif.ctl_props:
        result = checker.check(formula)
        verdicts.append(
            {
                "name": name,
                "formula": str(formula),
                "holds": result.holds,
                "seconds": result.seconds,
            }
        )
    fsm.stats.bump("serve.properties", len(verdicts))
    return TaskResult(
        {
            "verdicts": verdicts,
            "properties": len(verdicts),
            "passed": sum(1 for v in verdicts if v["holds"]),
        },
        _detach(fsm.stats),
    )


def run_portfolio_job(
    design_kind: str,
    design_text: str,
    pif_text: Optional[str],
    knobs: Dict[str, Any],
    trace: bool = False,
    orders_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    on_pool=None,
) -> TaskResult:
    """A check job run as an ordering-portfolio race.

    Unlike the other job bodies this does NOT run inside a pool worker:
    pool workers are daemonic processes and may not spawn children, but
    the race *is* a pool of K candidate workers.  The server calls this
    directly on its job-runner thread (``HsisServer._execute``), passing
    ``on_pool`` so the race's pool is registered for job cancellation.
    The race workers give the job the same crash isolation a plain
    check job gets from its single worker.
    """
    from repro.ordering_portfolio import DEFAULT_ORDERS_DIR, run_portfolio_check
    from repro.pif import parse_pif

    flat = _parse_design(design_kind, design_text)
    pif = parse_pif(pif_text or "", source="<submission>")
    if not pif.ctl_props:
        raise ValueError("no CTL properties in the submitted PIF text")
    stats = EngineStats()
    if trace:
        stats.tracer = Tracer()
    verdicts, provenance = run_portfolio_check(
        flat,
        pif.ctl_props,
        pif.fairness,
        k=knobs["portfolio"],
        orders_dir=orders_dir or DEFAULT_ORDERS_DIR,
        stats=stats,
        timeout=timeout,
        on_pool=on_pool,
    )
    payload = [
        {
            "name": v.name,
            "formula": v.formula,
            "holds": v.holds,
            "seconds": v.seconds,
        }
        for v in verdicts
    ]
    stats.bump("serve.properties", len(payload))
    return TaskResult(
        {
            "verdicts": payload,
            "properties": len(payload),
            "passed": sum(1 for v in payload if v["holds"]),
            "portfolio": provenance,
        },
        _detach(stats),
    )


def run_fuzz_job(knobs: Dict[str, Any], trace: bool = False) -> TaskResult:
    """One differential sweep (serial; the job itself is the shard)."""
    from repro.oracle import run_sweep

    stats = EngineStats()
    if trace:
        stats.tracer = Tracer()
    sweep = run_sweep(
        knobs["trials"],
        seed0=knobs["seed"],
        stats=stats,
        auto_reorder=knobs.get("auto_reorder"),
        shared_shapes=bool(knobs.get("shared_shapes")),
        batch_apply=knobs.get("batch_apply"),
    )
    stats.bump("serve.fuzz_trials", sweep.trials)
    return TaskResult(
        {
            "ok": sweep.ok,
            "trials": sweep.trials,
            "seed0": knobs["seed"],
            "divergences": [
                str(d) for r in sweep.reports for d in r.divergences
            ],
            "summary": sweep.summary(),
        },
        _detach(stats),
    )


def run_profile_job(
    design_kind: str,
    design_text: str,
    pif_text: Optional[str],
    knobs: Dict[str, Any],
    trace: bool = False,
) -> TaskResult:
    """Encode -> build_tr -> reach (-> mc) with phase timings reported."""
    from repro.ctl import ModelChecker
    from repro.network import SymbolicFsm
    from repro.pif import parse_pif

    flat = _parse_design(
        design_kind, design_text,
        shared_shapes=bool(knobs.get("shared_shapes")),
    )
    fsm = SymbolicFsm(
        flat,
        auto_reorder=knobs.get("auto_reorder"),
        tracer=Tracer() if trace else None,
        batch_apply=knobs.get("batch_apply"),
    )
    if not knobs["partitioned"]:
        fsm.build_transition(method=knobs["method"])
    reach = fsm.reachable(partitioned=knobs["partitioned"])
    verdicts = []
    if pif_text:
        pif = parse_pif(pif_text, source="<submission>")
        if pif.ctl_props:
            checker = ModelChecker(
                fsm, fairness=pif.bind_fairness(fsm), reached=reach.reached
            )
            for name, formula in pif.ctl_props:
                result = checker.check(formula)
                verdicts.append(
                    {"name": name, "holds": result.holds,
                     "seconds": result.seconds}
                )
    return TaskResult(
        {
            "states": int(fsm.count_states(reach.reached)),
            "iterations": reach.iterations,
            "seconds": reach.seconds,
            "verdicts": verdicts,
            "phases": {
                name: round(stat.seconds, 6)
                for name, stat in fsm.stats.phases.items()
            },
        },
        _detach(fsm.stats),
    )


#: Dispatch table; tests monkeypatch entries to inject hostile workers
#: (the table is consulted at dispatch time, and fork-started workers
#: inherit the patched module state).
WORKERS = {
    "check": run_check_job,
    "fuzz": run_fuzz_job,
    "profile": run_profile_job,
}


def build_task(
    job_id: str,
    kind: str,
    design_kind: Optional[str],
    design_text: Optional[str],
    pif_text: Optional[str],
    knobs: Dict[str, Any],
    trace: bool,
    timeout: Optional[float],
    memory_limit: Optional[int],
) -> Task:
    """Wrap one submission as a pool task with its quotas attached."""
    fn = WORKERS[kind]
    if kind == "fuzz":
        args = (knobs, trace)
    else:
        args = (design_kind, design_text, pif_text, knobs, trace)
    return Task(
        task_id=job_id,
        fn=fn,
        args=args,
        timeout=timeout,
        retries=0,
        memory_limit=memory_limit,
    )
