"""Content-addressed result cache for the job server (``.hsis-cache/``).

The serve layer's repeated-traffic win: the same verification request
hashed twice is verified once.  A cache entry is keyed by
:func:`cache_key` — a SHA-256 over the canonical JSON of (kind,
resolved design text, property text, canonical knobs) — so any change
to the design, the properties, or a result-affecting knob forks the
key, while formatting of the *request* (knob order, defaults spelled
out or not) does not.

Entries are one JSON file per key, written atomically via
:func:`repro.parallel.atomic.atomic_write_json` so a crashed server
can never leave a truncated entry.  Each entry carries an integrity
digest over its result payload; :meth:`ResultCache.load` re-derives it
and treats any mismatch (bit rot, manual truncation, a concurrent
writer from an older version) as a miss — the server recomputes and
rewrites the entry, again atomically.

With ``max_bytes`` set the cache is size-capped: every store sweeps
the directory and evicts least-recently-used entries (mtime order — a
cache hit touches its entry) until the total fits, never evicting the
entry just written.  Evictions are counted and surfaced in
:meth:`ResultCache.snapshot` (and thence ``hsis client status``).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.parallel.atomic import atomic_write_json

CACHE_VERSION = 1

#: Default cache directory, relative to the server's working directory.
DEFAULT_CACHE_DIR = ".hsis-cache"


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(
    kind: str,
    design_text: Optional[str],
    pif_text: Optional[str],
    knobs: Dict[str, Any],
) -> str:
    """The canonical content hash of one verification request."""
    blob = _canonical(
        {
            "v": CACHE_VERSION,
            "kind": kind,
            "design": design_text or "",
            "pif": pif_text or "",
            "knobs": knobs,
        }
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_digest(result: Any) -> str:
    """Integrity digest stored alongside (and checked against) a result."""
    return hashlib.sha256(_canonical(result).encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent, integrity-checked map from cache key to job result."""

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = root
        self.max_bytes = max_bytes
        os.makedirs(root, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0
        self.evictions = 0

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the verified entry for ``key``, or None.

        A present-but-unverifiable entry (unparseable JSON, key
        mismatch, digest mismatch) counts as corrupt *and* as a miss;
        the caller recomputes and overwrites it.
        """
        path = self.path(key)
        try:
            with open(path) as handle:
                entry = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self.corrupt += 1
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or "result" not in entry
            or entry.get("result_sha") != result_digest(entry["result"])
        ):
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass
        return entry

    def store(
        self,
        key: str,
        kind: str,
        result: Any,
        seconds: float,
    ) -> str:
        """Atomically write the entry for ``key``; returns its path."""
        path = self.path(key)
        atomic_write_json(
            path,
            {
                "version": CACHE_VERSION,
                "key": key,
                "kind": kind,
                "result": result,
                "result_sha": result_digest(result),
                "seconds": seconds,
            },
        )
        self.stores += 1
        self._evict(keep=path)
        return path

    def _evict(self, keep: str) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        ``keep`` (the entry just written) is never evicted, so a cap
        smaller than one entry still leaves the latest result cached.
        Concurrently removed files are skipped, never fatal.
        """
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                status = os.stat(path)
            except OSError:
                continue
            total += status.st_size
            entries.append((status.st_mtime, path, status.st_size))
        entries.sort()
        for _, path, size in entries:
            if total <= self.max_bytes:
                break
            if os.path.abspath(path) == os.path.abspath(keep):
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1

    def entry_count(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self.root) if name.endswith(".json")
            )
        except OSError:
            return 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "entries": self.entry_count(),
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "stores": self.stores,
            "evictions": self.evictions,
        }
