"""The ``hsis serve`` asyncio job server.

Architecture (verification-as-a-service over the existing substrate):

* an **asyncio front end** accepts newline-delimited JSON connections
  (:mod:`repro.serve.protocol`) and may pipeline many jobs per socket;
* submissions land on a **bounded queue** drained by ``jobs`` runner
  tasks; each runner executes one job at a time in its own
  single-worker :class:`~repro.parallel.pool.WorkerPool` (run in a
  thread via :func:`asyncio.to_thread`), so every job is a separate
  crash-isolated process with the pool's timeout/memory reaping;
* results are stored in the persistent content-addressed
  :class:`~repro.serve.cache.ResultCache`: a duplicate submission
  returns instantly with ``cached: true``, and **in-flight
  deduplication** coalesces concurrent identical submissions onto the
  one running worker (every waiter gets the same result line);
* ``status`` exposes the queue, the cache counters, and the
  server-level :class:`~repro.perf.EngineStats` (every job's worker
  stats are merged in); ``cancel`` removes a queued job or kills a
  running one through :meth:`WorkerPool.cancel`;
* with ``stream: true`` the worker's tracer events are relayed to the
  client as JSONL ``event`` lines (the server adds its own
  ``serve.job.*`` lifecycle instants), and ``trace_dir`` additionally
  persists one ``.jsonl`` trace file per job.

No client misbehavior — malformed JSON, oversized lines, disconnects
mid-stream — may take the server down; fault coverage lives in
``tests/test_serve_faults.py``.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.parallel.pool import WorkerPool
from repro.parallel.tasks import (
    STATUS_CANCELLED,
    STATUS_ERROR,
    STATUS_OK,
    ResultEnvelope,
)
from repro.perf import EngineStats
from repro.serve.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from repro.serve.jobs import build_task
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    SubmitRequest,
    decode,
    encode,
    parse_submit,
)
from repro.trace.export import safe_write_trace
from repro.trace.tracer import Tracer

#: Ceiling on tracer events relayed to one streaming client; a huge
#: job's full timeline still lands in ``trace_dir``, the stream only
#: carries the head (plus a truncation notice).
MAX_STREAM_EVENTS = 2000

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_CANCELLED = "cancelled"


@dataclass
class Job:
    """Server-side state of one deduplicated submission."""

    job_id: str
    key: str
    request: SubmitRequest
    future: "asyncio.Future[Dict[str, Any]]"
    state: str = JOB_QUEUED
    pool: Optional[WorkerPool] = None
    cancel_requested: bool = False
    coalesced: int = 0
    submitted: float = field(default_factory=time.monotonic)
    started: Optional[float] = None
    finished: Optional[float] = None
    subscribers: List[asyncio.StreamWriter] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        return {
            "job": self.job_id,
            "kind": self.request.kind,
            "key": self.key,
            "state": self.state,
            "coalesced": self.coalesced,
            "waited_s": round(
                (self.started or time.monotonic()) - self.submitted, 4
            ),
        }


class HsisServer:
    """Accepts concurrent check/fuzz/profile jobs over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 2,
        cache_dir: str = DEFAULT_CACHE_DIR,
        timeout: Optional[float] = 300.0,
        memory_limit: Optional[int] = None,
        backlog: int = 64,
        trace_dir: Optional[str] = None,
        tracer: Optional[Tracer] = None,
        cache_max_bytes: Optional[int] = None,
        orders_dir: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.memory_limit = memory_limit
        self.backlog = max(1, int(backlog))
        self.trace_dir = trace_dir
        self.orders_dir = orders_dir
        self.cache = ResultCache(cache_dir, max_bytes=cache_max_bytes)
        self.stats = EngineStats()
        if tracer is not None:
            self.stats.tracer = tracer
        self._ids = itertools.count(1)
        self._registry: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._queue: Optional["asyncio.Queue[Job]"] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._runners: List[asyncio.Task] = []

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (port 0 = ephemeral) and go live."""
        self._queue = asyncio.Queue(maxsize=self.backlog)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._runners = [
            asyncio.create_task(self._runner(), name=f"hsis-serve-runner-{i}")
            for i in range(self.jobs)
        ]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Shut down: stop accepting, cancel runners and pending jobs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for runner in self._runners:
            runner.cancel()
        await asyncio.gather(*self._runners, return_exceptions=True)
        for job in list(self._registry.values()):
            if job.pool is not None:
                job.pool.cancel()
            if not job.future.done():
                job.future.set_result(
                    self._result_message(
                        job,
                        ResultEnvelope(
                            task_id=job.job_id,
                            status=STATUS_CANCELLED,
                            error="server shut down",
                        ),
                    )
                )

    # -- connection handling --------------------------------------------

    async def _send(self, writer: asyncio.StreamWriter,
                    message: Dict[str, Any]) -> bool:
        """Serialize one line to one client; False if the client is gone."""
        # One lock per connection (responses from side tasks interleave);
        # stored on the writer so it dies with the connection.
        lock = getattr(writer, "_hsis_send_lock", None)
        if lock is None:
            lock = asyncio.Lock()
            writer._hsis_send_lock = lock
        try:
            async with lock:
                writer.write(encode(message))
                await writer.drain()
            return True
        except (ConnectionError, RuntimeError, OSError):
            return False

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pending: List[asyncio.Task] = []
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Framing is lost beyond an oversized line: report
                    # and close rather than misparse the remainder.
                    self.stats.bump("serve.protocol_errors")
                    await self._send(
                        writer,
                        {"ok": False, "op": "error",
                         "error": f"request line exceeds {MAX_LINE_BYTES} "
                                  "bytes; closing connection"},
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode(line)
                except ProtocolError as exc:
                    self.stats.bump("serve.protocol_errors")
                    await self._send(
                        writer, {"ok": False, "op": "error", "error": str(exc)}
                    )
                    continue
                op = message.get("op")
                if op == "submit":
                    # Handled on a side task so one connection can keep
                    # submitting (and receiving results) concurrently.
                    pending.append(
                        asyncio.create_task(
                            self._handle_submit(message, writer)
                        )
                    )
                elif op == "status":
                    await self._send(writer, self._status_message(message))
                elif op == "cancel":
                    await self._send(writer, self._cancel_message(message))
                elif op == "ping":
                    await self._send(
                        writer,
                        {"ok": True, "op": "pong",
                         "version": PROTOCOL_VERSION},
                    )
                else:
                    self.stats.bump("serve.protocol_errors")
                    await self._send(
                        writer,
                        {"ok": False, "op": "error",
                         "error": f"unknown op {op!r}"},
                    )
        except (ConnectionError, OSError):
            pass  # client vanished; its jobs (if any) keep running
        finally:
            for task in pending:
                if not task.done():
                    # Let in-flight submissions finish server-side; only
                    # their response writes will fail harmlessly.
                    task.add_done_callback(lambda _t: None)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- submit / dedup / cache -----------------------------------------

    async def _handle_submit(
        self, message: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = parse_submit(message)
        except ProtocolError as exc:
            self.stats.bump("serve.protocol_errors")
            await self._send(
                writer,
                {"ok": False, "op": "error", "id": message.get("id"),
                 "error": str(exc)},
            )
            return
        key = cache_key(
            request.kind, request.design_text, request.pif_text,
            request.knobs,
        )
        entry = self.cache.load(key)
        if entry is not None:
            self.stats.bump("serve.cache_hits")
            await self._send(
                writer,
                {
                    "ok": True,
                    "op": "result",
                    "id": request.client_id,
                    "job": None,
                    "key": key,
                    "cached": True,
                    "status": STATUS_OK,
                    "result": entry["result"],
                    "error": None,
                    "seconds": 0.0,
                    "cold_seconds": entry.get("seconds", 0.0),
                    "attempts": 0,
                },
            )
            return
        if self.cache.corrupt:
            # load() already classified any unverifiable entry; surface
            # the count in server stats for the integrity tests.
            self.stats.counters["serve.cache_corrupt"] = self.cache.corrupt
        job = self._inflight.get(key)
        coalesced = job is not None and job.state in (JOB_QUEUED, JOB_RUNNING)
        if not coalesced:
            job = Job(
                job_id=f"j{next(self._ids)}",
                key=key,
                request=request,
                future=asyncio.get_running_loop().create_future(),
            )
            assert self._queue is not None
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                self.stats.bump("serve.rejected")
                await self._send(
                    writer,
                    {"ok": False, "op": "error", "id": request.client_id,
                     "error": f"server busy: job queue is full "
                              f"({self.backlog} pending)"},
                )
                return
            self._registry[job.job_id] = job
            self._inflight[key] = job
            self.stats.bump("serve.submitted")
            self._emit_event(job, "serve.job.queued", kind=request.kind)
        else:
            job.coalesced += 1
            self.stats.bump("serve.coalesced")
        if request.stream:
            job.subscribers.append(writer)
        ok = await self._send(
            writer,
            {
                "ok": True,
                "op": "submitted",
                "id": request.client_id,
                "job": job.job_id,
                "key": key,
                "cached": False,
                "coalesced": coalesced,
            },
        )
        try:
            result = await asyncio.shield(job.future)
        except asyncio.CancelledError:
            return
        if ok:
            response = dict(result)
            response["id"] = request.client_id
            await self._send(writer, response)

    # -- execution ------------------------------------------------------

    async def _runner(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                if job.state == JOB_CANCELLED or job.cancel_requested:
                    self._complete(
                        job,
                        ResultEnvelope(
                            task_id=job.job_id,
                            status=STATUS_CANCELLED,
                            error="job cancelled while queued",
                        ),
                    )
                    continue
                job.state = JOB_RUNNING
                job.started = time.monotonic()
                self._emit_event(job, "serve.job.start", kind=job.request.kind)
                try:
                    envelope = await asyncio.to_thread(self._execute, job)
                except Exception as exc:  # server-side dispatch failure
                    envelope = ResultEnvelope(
                        task_id=job.job_id,
                        status=STATUS_ERROR,
                        error=f"server-side failure: {exc}",
                    )
                self._complete(job, envelope)
            finally:
                self._queue.task_done()

    def _execute(self, job: Job) -> ResultEnvelope:
        """Thread body: run one job in its own single-worker pool."""
        request = job.request
        timeout = self.timeout
        if request.timeout is not None:
            timeout = (
                min(timeout, request.timeout)
                if timeout is not None
                else request.timeout
            )
        trace = request.stream or self.trace_dir is not None
        if request.kind == "check" and request.knobs.get("portfolio"):
            return self._execute_portfolio(job, timeout, trace)
        pool = WorkerPool(jobs=1, timeout=timeout, retries=0)
        job.pool = pool
        if job.cancel_requested:
            pool.cancel()
        task = build_task(
            job.job_id,
            request.kind,
            request.design_kind,
            request.design_text,
            request.pif_text,
            request.knobs,
            trace,
            timeout,
            self.memory_limit,
        )
        with self.stats.phase("serve.job"):
            envelopes = pool.run([task])
        return envelopes[0]

    def _execute_portfolio(
        self, job: Job, timeout: Optional[float], trace: bool
    ) -> ResultEnvelope:
        """Thread body for ``check`` with the ``portfolio`` knob set.

        The race is a :class:`WorkerPool` of K candidate workers, and
        pool workers (daemonic processes) may not spawn children — so
        the race runs here on the runner thread, not inside a job
        worker.  ``on_pool`` registers the race's pool on the job, so
        ``cancel`` kills all K candidates at once.
        """
        from repro.ordering_portfolio import PortfolioCancelled
        from repro.serve.jobs import run_portfolio_job

        request = job.request
        start = time.monotonic()

        def on_pool(pool: WorkerPool) -> None:
            job.pool = pool
            if job.cancel_requested:
                pool.cancel()

        try:
            with self.stats.phase("serve.job"):
                result = run_portfolio_job(
                    request.design_kind,
                    request.design_text,
                    request.pif_text,
                    request.knobs,
                    trace,
                    orders_dir=self.orders_dir,
                    timeout=timeout,
                    on_pool=on_pool,
                )
        except PortfolioCancelled:
            return ResultEnvelope(
                task_id=job.job_id,
                status=STATUS_CANCELLED,
                error="job cancelled while racing candidate orders",
                seconds=time.monotonic() - start,
            )
        except Exception as exc:
            return ResultEnvelope(
                task_id=job.job_id,
                status=STATUS_ERROR,
                error=f"portfolio check failed: {exc}",
                seconds=time.monotonic() - start,
            )
        return ResultEnvelope(
            task_id=job.job_id,
            status=STATUS_OK,
            value=result.value,
            stats=result.stats,
            attempts=1,
            seconds=time.monotonic() - start,
        )

    def _complete(self, job: Job, envelope: ResultEnvelope) -> None:
        job.finished = time.monotonic()
        job.state = (
            JOB_CANCELLED
            if envelope.status == STATUS_CANCELLED
            else JOB_DONE
        )
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self.stats.bump("serve.jobs")
        self.stats.bump(f"serve.jobs.{envelope.status}")
        if envelope.stats is not None:
            self.stats.merge(envelope.stats)
        if envelope.ok:
            self.cache.store(
                job.key, job.request.kind, envelope.value, envelope.seconds
            )
        self._relay_worker_events(job, envelope)
        self._write_job_trace(job, envelope)
        self._emit_event(
            job, "serve.job.done", status=envelope.status,
            seconds=round(envelope.seconds, 4),
        )
        if not job.future.done():
            job.future.set_result(self._result_message(job, envelope))
        # Keep the registry bounded: drop the oldest finished jobs.
        if len(self._registry) > 4 * self.backlog:
            finished = [
                job_id for job_id, entry in self._registry.items()
                if entry.state in (JOB_DONE, JOB_CANCELLED)
            ]
            for job_id in finished[: len(finished) // 2]:
                del self._registry[job_id]

    def _result_message(
        self, job: Job, envelope: ResultEnvelope
    ) -> Dict[str, Any]:
        return {
            "ok": envelope.status == STATUS_OK,
            "op": "result",
            "job": job.job_id,
            "key": job.key,
            "cached": False,
            "status": envelope.status,
            "result": envelope.value,
            "error": envelope.error,
            "seconds": envelope.seconds,
            "attempts": envelope.attempts,
        }

    # -- progress streaming ---------------------------------------------

    def _emit_event(self, job: Job, name: str, **args: Any) -> None:
        """One lifecycle instant: server tracer + all stream subscribers."""
        self.stats.tracer.instant(name, cat="serve", job=job.job_id, **args)
        if job.subscribers:
            event = {"name": name, "cat": "serve", "ts": time.time(),
                     "args": dict(args, job=job.job_id)}
            self._broadcast(job, {"ok": True, "op": "event",
                                  "job": job.job_id, "event": event})

    def _broadcast(self, job: Job, message: Dict[str, Any]) -> None:
        for writer in list(job.subscribers):
            task = asyncio.ensure_future(self._send(writer, message))
            task.add_done_callback(
                lambda t, w=writer: (
                    job.subscribers.remove(w)
                    if w in job.subscribers
                    and (t.cancelled() or not t.result())
                    else None
                )
            )

    def _relay_worker_events(self, job: Job,
                             envelope: ResultEnvelope) -> None:
        """Forward the worker's tracer timeline as JSONL event lines."""
        if not job.subscribers or envelope.stats is None:
            return
        events = envelope.stats.tracer.events
        for event in events[:MAX_STREAM_EVENTS]:
            self._broadcast(
                job, {"ok": True, "op": "event", "job": job.job_id,
                      "event": event}
            )
        if len(events) > MAX_STREAM_EVENTS:
            self._broadcast(
                job,
                {"ok": True, "op": "event", "job": job.job_id,
                 "event": {"name": "serve.stream.truncated", "cat": "serve",
                           "args": {"total": len(events),
                                    "streamed": MAX_STREAM_EVENTS}}},
            )

    def _write_job_trace(self, job: Job, envelope: ResultEnvelope) -> None:
        """Persist the per-job trace file (best effort, never fatal)."""
        if self.trace_dir is None or envelope.stats is None:
            return
        if not envelope.stats.tracer.events:
            return
        import os

        os.makedirs(self.trace_dir, exist_ok=True)
        path = os.path.join(self.trace_dir, f"{job.job_id}.jsonl")
        fmt, error = safe_write_trace(envelope.stats.tracer, path)
        if error is not None:
            self.stats.bump("serve.trace_write_errors")
            self._emit_event(job, "serve.trace_error", error=error)

    # -- status / cancel -------------------------------------------------

    def _status_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job")
        if job_id is not None:
            job = self._registry.get(job_id)
            if job is None:
                return {"ok": False, "op": "error",
                        "error": f"unknown job {job_id!r}"}
            return {"ok": True, "op": "status", "detail": job.summary()}
        states: Dict[str, int] = {}
        for job in self._registry.values():
            states[job.state] = states.get(job.state, 0) + 1
        snapshot = self.stats.snapshot()
        return {
            "ok": True,
            "op": "status",
            "jobs": states,
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "inflight": len(self._inflight),
            "cache": self.cache.snapshot(),
            "counters": dict(self.stats.counters),
            "phases": snapshot["phases"],
            "recent": [
                job.summary()
                for job in list(self._registry.values())[-8:]
            ],
        }

    def _cancel_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = message.get("job")
        job = self._registry.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            return {"ok": False, "op": "error",
                    "error": f"unknown job {job_id!r}"}
        if job.state in (JOB_DONE, JOB_CANCELLED):
            return {"ok": True, "op": "cancelled", "job": job.job_id,
                    "state": job.state, "already_finished": True}
        job.cancel_requested = True
        if job.state == JOB_QUEUED:
            # The runner will see the flag when it dequeues the job; the
            # client still gets its result line (status: cancelled).
            job.state = JOB_CANCELLED
        if job.pool is not None:
            job.pool.cancel()
        self.stats.bump("serve.cancelled_requests")
        return {"ok": True, "op": "cancelled", "job": job.job_id,
                "state": job.state, "already_finished": False}
