"""Verification-as-a-service: the ``hsis serve`` async job server.

Turns the crash-isolated :mod:`repro.parallel` pool and the structured
:mod:`repro.trace` tracer into a serving substrate:

* :mod:`repro.serve.protocol` — newline-delimited JSON wire format,
  submission validation, knob canonicalization.
* :mod:`repro.serve.cache` — persistent content-addressed result cache
  (``.hsis-cache/``) with integrity-checked, atomically written entries.
* :mod:`repro.serve.jobs` — picklable worker bodies for the ``check`` /
  ``fuzz`` / ``profile`` job kinds (the same code the one-shot CLI runs).
* :mod:`repro.serve.server` — :class:`HsisServer`: bounded job queue,
  per-job process isolation with timeout/memory quotas, in-flight
  deduplication, tracer-event streaming, ``status``/``cancel``.
* :mod:`repro.serve.client` — :class:`ServeClient` plus the ``hsis
  client`` scripting surface.

Semantics are pinned by ``tests/test_serve.py`` (concurrency, dedup,
serial==served parity), ``tests/test_serve_faults.py`` (hostile
workers and clients), and ``tests/test_serve_cache.py`` (on-disk
integrity); see ``docs/serving.md``.
"""

from repro.serve.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from repro.serve.client import ServeClient, ServeError, wait_for_server
from repro.serve.protocol import (
    KINDS,
    KNOB_DEFAULTS,
    MAX_LINE_BYTES,
    ProtocolError,
    SubmitRequest,
    canonical_knobs,
    parse_submit,
)
from repro.serve.server import HsisServer

__all__ = [
    "DEFAULT_CACHE_DIR",
    "HsisServer",
    "KINDS",
    "KNOB_DEFAULTS",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "SubmitRequest",
    "cache_key",
    "canonical_knobs",
    "parse_submit",
    "wait_for_server",
]
