"""Wire protocol for ``hsis serve``: newline-delimited JSON.

Every request and every response is one JSON object on one line
(UTF-8, ``\\n``-terminated).  A connection may carry any number of
requests; responses to a ``submit`` are interleaved per job (the
``job`` field ties them together), so a client can pipeline many
submissions over one socket.

Client -> server operations (the ``op`` field):

* ``submit`` — run a job.  Fields: ``kind`` (``check`` | ``fuzz`` |
  ``profile``), ``design`` (``{"gallery": name}`` / ``{"verilog":
  text}`` / ``{"blifmv": text}``; absent for ``fuzz``), ``pif``
  (property text; optional — gallery designs bring their own),
  ``knobs`` (kind-specific, see :data:`KNOB_DEFAULTS`), ``stream``
  (bool: relay tracer events as ``event`` lines), ``timeout``
  (seconds, clamped by the server's quota), ``id`` (opaque client
  tag, echoed back).
* ``status`` — queue/cache/stats snapshot; with ``job`` set, one
  job's detail.
* ``cancel`` — cancel a queued or running job by ``job`` id.
* ``ping`` — liveness check.

Server -> client lines: ``submitted`` (ack carrying the ``job`` id,
the cache ``key``, and ``coalesced``), zero or more ``event`` lines
(when streaming), and exactly one ``result`` per submission::

    {"ok": true, "op": "result", "job": "j1", "key": "...",
     "cached": false, "status": "ok", "result": {...},
     "error": null, "seconds": 1.2, "attempts": 1}

``status`` is an envelope status from :mod:`repro.parallel.tasks`
(``ok`` / ``error`` / ``timeout`` / ``crashed`` / ``cancelled``).
Malformed input never kills the connection silently: the server
answers ``{"ok": false, "op": "error", "error": ...}`` (and closes it
only when the line was oversized, since framing is lost).

The cache key is :func:`repro.serve.cache.cache_key` over the
*resolved* design text — a gallery name and its verbatim Verilog hash
identically — plus the property text and the canonicalized knobs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Hard cap on one request/response line.  Submissions carry whole
#: designs inline, so this is generous; anything larger is rejected
#: and the connection closed (framing can no longer be trusted).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Cap on the design / property text inside one submission.
MAX_TEXT_BYTES = 2 * 1024 * 1024

PROTOCOL_VERSION = 1

KINDS = ("check", "fuzz", "profile")

#: Result-affecting knobs per job kind, with their defaults.  The
#: canonical knob dict always contains every key, so ``{"trials": 25}``
#: and ``{"trials": 25, "seed": 0}`` hash to the same cache key, while
#: any knob that changes the computation changes the key.
KNOB_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "check": {"auto_gc": None, "cache_limit": None, "auto_reorder": None,
              "portfolio": None, "shared_shapes": True, "batch_apply": None},
    "fuzz": {"trials": 25, "seed": 0, "auto_reorder": None,
             "shared_shapes": False, "batch_apply": None},
    "profile": {"method": "greedy", "partitioned": False,
                "auto_reorder": None, "shared_shapes": True,
                "batch_apply": None},
}

_BOOL_KNOBS = {"partitioned", "shared_shapes", "batch_apply"}
_STR_KNOBS = {"method"}


class ProtocolError(Exception):
    """A request the server refuses: bad JSON, bad fields, too big."""


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol line: compact JSON + newline."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line) -> Dict[str, Any]:
    """Parse one line into a message dict, or raise ProtocolError."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not valid UTF-8: {exc}")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def canonical_knobs(kind: str, knobs: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Validate and normalize a submission's knobs for ``kind``.

    Unknown knobs are rejected (a typo must not silently fork the cache
    key); known knobs are type-checked and defaults filled in, so the
    returned dict is total and deterministic.
    """
    defaults = KNOB_DEFAULTS[kind]
    knobs = dict(knobs or {})
    unknown = sorted(set(knobs) - set(defaults))
    if unknown:
        raise ProtocolError(
            f"unknown knob(s) for {kind!r}: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(defaults))})"
        )
    out = dict(defaults)
    for name, value in knobs.items():
        if value is None:
            continue
        if name in _BOOL_KNOBS:
            if not isinstance(value, bool):
                raise ProtocolError(f"knob {name!r} must be a boolean")
        elif name in _STR_KNOBS:
            if not isinstance(value, str):
                raise ProtocolError(f"knob {name!r} must be a string")
        else:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"knob {name!r} must be an integer")
            if name != "seed" and value <= 0:
                raise ProtocolError(f"knob {name!r} must be positive")
        out[name] = value
    return out


@dataclass
class SubmitRequest:
    """A validated, fully resolved submission."""

    kind: str
    design_kind: Optional[str]  # "verilog" | "blifmv" | None (fuzz)
    design_text: Optional[str]
    pif_text: Optional[str]
    knobs: Dict[str, Any] = field(default_factory=dict)
    stream: bool = False
    timeout: Optional[float] = None
    client_id: Optional[str] = None


def _text_field(container: Dict[str, Any], name: str) -> str:
    value = container[name]
    if not isinstance(value, str):
        raise ProtocolError(f"{name!r} must be a string")
    if len(value.encode("utf-8", "ignore")) > MAX_TEXT_BYTES:
        raise ProtocolError(
            f"{name!r} exceeds the {MAX_TEXT_BYTES} byte limit"
        )
    return value


def _resolve_design(kind: str, message: Dict[str, Any]):
    """Resolve the ``design``/``pif`` fields to concrete text.

    A gallery reference is expanded to its Verilog (and bundled PIF, if
    the submission carries none) here, so the cache key sees the same
    bytes whether the client named the design or inlined it.
    """
    design = message.get("design")
    pif_text = None
    if "pif" in message and message["pif"] is not None:
        pif_text = _text_field(message, "pif")
    if kind == "fuzz":
        if design is not None:
            raise ProtocolError("fuzz jobs take no design")
        return None, None, pif_text
    if not isinstance(design, dict) or len(design) != 1:
        raise ProtocolError(
            f"{kind} jobs need a design: one of "
            '{"gallery": name}, {"verilog": text}, {"blifmv": text}'
        )
    ((form, payload),) = design.items()
    if form == "gallery":
        from repro.models import get_spec

        if not isinstance(payload, str):
            raise ProtocolError("gallery design name must be a string")
        try:
            spec = get_spec(payload)
        except KeyError as exc:
            raise ProtocolError(f"unknown gallery design: {exc}")
        return "verilog", spec.verilog, (
            pif_text if pif_text is not None else spec.pif_text
        )
    if form in ("verilog", "blifmv"):
        return form, _text_field(design, form), pif_text
    raise ProtocolError(f"unknown design form {form!r}")


def parse_submit(message: Dict[str, Any]) -> SubmitRequest:
    """Validate a ``submit`` message into a :class:`SubmitRequest`."""
    kind = message.get("kind")
    if kind not in KINDS:
        raise ProtocolError(
            f"kind must be one of {', '.join(KINDS)} (got {kind!r})"
        )
    knobs = message.get("knobs")
    if knobs is not None and not isinstance(knobs, dict):
        raise ProtocolError("knobs must be an object")
    design_kind, design_text, pif_text = _resolve_design(kind, message)
    if kind in ("check",) and not pif_text:
        raise ProtocolError("check jobs need properties (pif)")
    timeout = message.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ProtocolError("timeout must be a number of seconds")
        if timeout <= 0:
            raise ProtocolError("timeout must be positive")
        timeout = float(timeout)
    client_id = message.get("id")
    if client_id is not None and not isinstance(client_id, str):
        raise ProtocolError("id must be a string")
    return SubmitRequest(
        kind=kind,
        design_kind=design_kind,
        design_text=design_text,
        pif_text=pif_text,
        knobs=canonical_knobs(kind, knobs),
        stream=bool(message.get("stream", False)),
        timeout=timeout,
        client_id=client_id,
    )
