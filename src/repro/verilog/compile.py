"""vl2mv: compile the Verilog subset to BLIF-MV (paper §3-4).

Each module compiles to one BLIF-MV model; instances become ``.subckt``
references, so the blifmv hierarchy flattener finishes elaboration.  The
compiler mirrors the real vl2mv's style: expressions are decomposed into
*many small tables* over fresh intermediate variables (the paper reports
~1600 relations and ~1500 variables to quantify for one design — exactly
the workload the early-quantification scheduler is built for).

Lowering rules:

* scalar nets are binary; ``[msb:lsb]`` nets get the integer domain
  ``0 .. 2^width - 1``; ``enum { ... }`` nets get their symbolic domain;
* each operator node becomes a fresh variable defined by an enumerated
  table (domains are small by construction; a guard rejects blowups);
* ``cond ? a : b`` becomes a two-row table using BLIF-MV's ``=``
  output construct — no enumeration needed;
* ``$ND(c1, ..., ck)`` becomes a non-deterministic zero-input table;
* ``always @(posedge clk)`` bodies are executed symbolically into one
  next-state expression per register (if/case become ternary merges,
  unassigned paths hold the register); registers become ``.latch`` with
  ``.reset`` rows from ``initial`` assignments;
* ``always @(*)`` bodies execute the same way but define wires and must
  assign on every path (no implied latches).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.blifmv.ast import (
    ANY,
    Design,
    Eq,
    Latch,
    Model,
    Row,
    Subckt,
    Table,
)
from repro.verilog.ast import (
    AlwaysComb,
    AlwaysSeq,
    Assignment,
    Binop,
    Block,
    CaseStmt,
    ContAssign,
    EnumConst,
    Expr,
    Id,
    IfStmt,
    Index,
    InitialBlock,
    Instance,
    ModuleDecl,
    NDChoice,
    NetDecl,
    Num,
    ParamDecl,
    SourceFile,
    Stmt,
    Ternary,
    Unop,
)
from repro.verilog.lexer import VerilogError
from repro.verilog.parser import parse_verilog

MAX_TABLE_ROWS = 4096

Domain = Tuple[str, ...]
BIN: Domain = ("0", "1")


def int_domain(size: int) -> Domain:
    return tuple(str(i) for i in range(size))


@dataclass
class _Net:
    name: str
    domain: Domain
    kind: str  # input/output/wire/reg
    is_enum: bool = False


class _ModuleCompiler:
    def __init__(self, module: ModuleDecl, all_modules: Dict[str, ModuleDecl]):
        self.module = module
        self.all_modules = all_modules
        self.model = Model(name=module.name)
        self.nets: Dict[str, _Net] = {}
        self.params: Dict[str, int] = {}
        self.enum_values: Dict[str, Domain] = {}  # value name -> its domain
        self.resets: Dict[str, List[str]] = {}
        self.seq_regs: Set[str] = set()
        self.tmp_count = 0

    # -- helpers -----------------------------------------------------------

    def error(self, message: str) -> VerilogError:
        return VerilogError(f"module {self.module.name}: {message}")

    def fresh(self, domain: Domain, hint: str = "t") -> str:
        name = f"_{hint}{self.tmp_count}"
        self.tmp_count += 1
        self.declare_net(name, domain, "wire")
        return name

    def declare_net(self, name: str, domain: Domain, kind: str, is_enum: bool = False) -> None:
        if name in self.nets:
            raise self.error(f"net {name!r} declared twice")
        self.nets[name] = _Net(name=name, domain=domain, kind=kind, is_enum=is_enum)
        if domain != BIN:
            self.model.domains[name] = domain

    def domain_of(self, name: str) -> Domain:
        try:
            return self.nets[name].domain
        except KeyError:
            raise self.error(f"undeclared net {name!r}") from None

    # -- declarations -------------------------------------------------------

    def run(self) -> Model:
        port_dirs: Dict[str, str] = {}
        for item in self.module.items:
            if isinstance(item, ParamDecl):
                self.params[item.name] = self.const_eval(item.value)
        for item in self.module.items:
            if isinstance(item, NetDecl):
                domain: Domain
                if item.enum_values is not None:
                    domain = tuple(item.enum_values)
                    for value in item.enum_values:
                        if value in self.enum_values and self.enum_values[value] != domain:
                            raise self.error(
                                f"enum value {value!r} declared in two domains"
                            )
                        self.enum_values[value] = domain
                elif item.range is not None:
                    width = item.range.width
                    if width > 12:
                        raise self.error(
                            f"width {width} too large for enumeration-based "
                            "lowering (max 12)"
                        )
                    domain = int_domain(1 << width)
                else:
                    domain = BIN
                for name in item.names:
                    if item.kind in ("input", "output"):
                        if name in self.nets:
                            # 'output reg x;' after port: refine kind
                            raise self.error(f"net {name!r} declared twice")
                        port_dirs[name] = item.kind
                        self.declare_net(
                            name, domain, item.kind, is_enum=item.enum_values is not None
                        )
                    else:
                        if name in self.nets:
                            # 'output' + later 'reg name' refinement
                            net = self.nets[name]
                            if net.domain != domain:
                                raise self.error(
                                    f"net {name!r} redeclared with a different domain"
                                )
                            net.kind = net.kind  # direction wins
                        else:
                            self.declare_net(
                                name, domain, item.kind,
                                is_enum=item.enum_values is not None,
                            )
        for port in self.module.ports:
            if port not in port_dirs:
                raise self.error(f"port {port!r} has no direction declaration")
        self.model.inputs = [p for p in self.module.ports if port_dirs[p] == "input"]
        self.model.outputs = [p for p in self.module.ports if port_dirs[p] == "output"]

        # Classify sequential registers first (needed for hold semantics).
        for item in self.module.items:
            if isinstance(item, AlwaysSeq):
                for target in _assigned_targets(item.body):
                    self.seq_regs.add(target)

        for item in self.module.items:
            if isinstance(item, InitialBlock):
                for assign in item.assignments:
                    self.resets[assign.target] = self.reset_values(assign)

        for item in self.module.items:
            if isinstance(item, ContAssign):
                self.compile_cont_assign(item)
            elif isinstance(item, AlwaysComb):
                self.compile_comb(item)
            elif isinstance(item, AlwaysSeq):
                self.compile_seq(item)
            elif isinstance(item, Instance):
                self.compile_instance(item)
        return self.model

    def reset_values(self, assign: Assignment) -> List[str]:
        domain = self.domain_of(assign.target)
        expr = assign.value
        choices = expr.choices if isinstance(expr, NDChoice) else (expr,)
        values = []
        for choice in choices:
            values.append(self.const_value(choice, domain))
        return values

    def const_value(self, expr: Expr, domain: Domain) -> str:
        if isinstance(expr, Num):
            text = str(expr.value)
            if text not in domain:
                raise self.error(f"constant {text} outside domain {domain}")
            return text
        if isinstance(expr, Id):
            if expr.name in self.params:
                text = str(self.params[expr.name])
                if text not in domain:
                    raise self.error(f"constant {text} outside domain {domain}")
                return text
            if expr.name in self.enum_values:
                if self.enum_values[expr.name] != domain:
                    raise self.error(
                        f"enum constant {expr.name!r} has the wrong domain"
                    )
                return expr.name
        raise self.error(f"expected a constant, got {expr!r}")

    def const_eval(self, expr: Expr) -> int:
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Id) and expr.name in self.params:
            return self.params[expr.name]
        if isinstance(expr, Binop):
            left = self.const_eval(expr.left)
            right = self.const_eval(expr.right)
            return _int_binop(expr.op, left, right)
        raise self.error(f"expression is not compile-time constant: {expr!r}")

    # -- structural items -----------------------------------------------------

    def compile_instance(self, inst: Instance) -> None:
        child = self.all_modules.get(inst.module)
        if child is None:
            raise self.error(f"unknown module {inst.module!r}")
        connections: Dict[str, str] = {}
        for position, (port, net) in enumerate(inst.connections):
            if port is None:
                if position >= len(child.ports):
                    raise self.error(
                        f"instance {inst.name}: too many positional connections"
                    )
                port = child.ports[position]
            if net not in self.nets:
                raise self.error(f"instance {inst.name}: unknown net {net!r}")
            connections[port] = net
        self.model.subckts.append(
            Subckt(model=inst.module, instance=inst.name, connections=connections)
        )

    def compile_cont_assign(self, item: ContAssign) -> None:
        source = self.lower(item.value)
        self.copy_into(source, item.target)

    # -- behavioural items -----------------------------------------------------

    def compile_comb(self, item: AlwaysComb) -> None:
        env = self.execute(item.body, {}, sequential=False)
        for target, expr in env.items():
            if expr is None:
                raise self.error(
                    f"combinational always block may not assign {target!r} "
                    "on only some paths (implied latch)"
                )
            source = self.lower(expr)
            self.copy_into(source, target)

    def compile_seq(self, item: AlwaysSeq) -> None:
        env = self.execute(item.body, {}, sequential=True)
        lines_of = _assignment_lines(item.body)
        for target, expr in env.items():
            if target not in self.nets:
                raise self.error(f"undeclared register {target!r}")
            assert expr is not None  # sequential merges fall back to hold
            source = self.lower(expr)
            coerced = self.coerce(source, self.domain_of(target), hint=f"n_{target}")
            latch = Latch(input=coerced, output=target,
                          reset=list(self.resets.get(target, [])))
            self.model.latches.append(latch)
            lines = sorted(lines_of.get(target, []))
            if lines:
                # Source-level debugging (§8 item 7): remember where this
                # register is assigned so traces can point back at the HDL.
                rendered = ",".join(str(n) for n in lines)
                self.model.sources[target] = f"{self.module.name}.v:{rendered}"

    def execute(
        self,
        stmt: Stmt,
        env: Dict[str, Optional[Expr]],
        sequential: bool,
    ) -> Dict[str, Optional[Expr]]:
        """Symbolic execution of a statement: target -> value expression.

        ``None`` marks "unassigned on some path" (legal only for
        sequential logic, where it means "hold").
        """
        if isinstance(stmt, Block):
            for sub in stmt.stmts:
                env = self.execute(sub, env, sequential)
            return env
        if isinstance(stmt, Assignment):
            if sequential and not stmt.nonblocking:
                raise self.error(
                    f"sequential always blocks must use '<=' (register "
                    f"{stmt.target!r})"
                )
            if not sequential and stmt.nonblocking:
                raise self.error(
                    f"combinational always blocks must use '=' ({stmt.target!r})"
                )
            value = self.substitute(stmt.value, env) if not sequential else stmt.value
            env = dict(env)
            env[stmt.target] = value
            return env
        if isinstance(stmt, IfStmt):
            then_env = self.execute(stmt.then, env, sequential)
            else_env = (
                self.execute(stmt.other, env, sequential)
                if stmt.other is not None
                else dict(env)
            )
            return self.merge(stmt.cond, then_env, else_env, sequential)
        if isinstance(stmt, CaseStmt):
            return self.execute(self.case_to_if(stmt), env, sequential)
        raise self.error(f"unsupported statement {stmt!r}")

    def case_to_if(self, case: CaseStmt) -> Stmt:
        default: Stmt = Block()
        chain: Stmt = default
        items = list(case.items)
        default_items = [i for i in items if i.labels is None]
        if len(default_items) > 1:
            raise self.error("case statement has two default items")
        if default_items:
            chain = default_items[0].stmt
        for item in reversed([i for i in items if i.labels is not None]):
            assert item.labels is not None
            cond: Optional[Expr] = None
            for label in item.labels:
                test = Binop(op="==", left=case.subject, right=label)
                cond = test if cond is None else Binop(op="||", left=cond, right=test)
            assert cond is not None
            chain = IfStmt(cond=cond, then=item.stmt, other=chain)
        return chain

    def merge(
        self,
        cond: Expr,
        then_env: Dict[str, Optional[Expr]],
        else_env: Dict[str, Optional[Expr]],
        sequential: bool,
    ) -> Dict[str, Optional[Expr]]:
        merged: Dict[str, Optional[Expr]] = {}
        for target in set(then_env) | set(else_env):
            hold: Optional[Expr] = Id(target) if sequential else None
            then_val = then_env.get(target, hold)
            else_val = else_env.get(target, hold)
            if then_val is None or else_val is None:
                merged[target] = None
            elif then_val == else_val:
                merged[target] = then_val
            else:
                merged[target] = Ternary(cond=cond, then=then_val, other=else_val)
        return merged

    def substitute(self, expr: Expr, env: Dict[str, Optional[Expr]]) -> Expr:
        """Blocking-assignment semantics: reads see earlier writes."""
        if isinstance(expr, Id) and expr.name in env and env[expr.name] is not None:
            replacement = env[expr.name]
            assert replacement is not None
            return replacement
        if isinstance(expr, Unop):
            return Unop(expr.op, self.substitute(expr.operand, env))
        if isinstance(expr, Binop):
            return Binop(
                expr.op, self.substitute(expr.left, env), self.substitute(expr.right, env)
            )
        if isinstance(expr, Ternary):
            return Ternary(
                self.substitute(expr.cond, env),
                self.substitute(expr.then, env),
                self.substitute(expr.other, env),
            )
        if isinstance(expr, NDChoice):
            return NDChoice(tuple(self.substitute(c, env) for c in expr.choices))
        if isinstance(expr, Index):
            return Index(self.substitute(expr.base, env), expr.index)
        return expr

    # -- expression lowering -----------------------------------------------------

    def lower(self, expr: Expr) -> str:
        """Lower an expression tree to a net name, emitting tables."""
        if isinstance(expr, Id):
            if expr.name in self.params:
                return self.lower(Num(value=self.params[expr.name]))
            if expr.name in self.enum_values:
                return self.constant_net(expr.name, self.enum_values[expr.name])
            if expr.name not in self.nets:
                raise self.error(f"undeclared net {expr.name!r}")
            return expr.name
        if isinstance(expr, Num):
            if expr.width is not None:
                domain = int_domain(1 << expr.width)
            else:
                domain = int_domain(max(2, expr.value + 1))
            return self.constant_net(str(expr.value), domain)
        if isinstance(expr, EnumConst):
            if expr.name not in self.enum_values:
                raise self.error(f"unknown enum constant {expr.name!r}")
            return self.constant_net(expr.name, self.enum_values[expr.name])
        if isinstance(expr, Unop):
            return self.lower_unop(expr)
        if isinstance(expr, Binop):
            return self.lower_binop(expr)
        if isinstance(expr, Ternary):
            return self.lower_ternary(expr)
        if isinstance(expr, NDChoice):
            return self.lower_nd(expr)
        if isinstance(expr, Index):
            return self.lower_index(expr)
        raise self.error(f"unsupported expression {expr!r}")

    def constant_net(self, value: str, domain: Domain) -> str:
        net = self.fresh(domain, hint="c")
        self.model.tables.append(
            Table(inputs=[], outputs=[net], rows=[Row(inputs=(), outputs=(value,))])
        )
        return net

    def copy_into(self, source: str, target: str) -> None:
        """Identity table from ``source`` to ``target`` (domain-checked)."""
        src_domain = self.domain_of(source)
        dst_domain = self.domain_of(target)
        missing = [v for v in src_domain if v not in dst_domain]
        if missing:
            raise self.error(
                f"cannot assign {source!r} to {target!r}: values {missing} "
                f"outside target domain"
            )
        rows = [Row(inputs=(v,), outputs=(v,)) for v in src_domain]
        self.model.tables.append(
            Table(inputs=[source], outputs=[target], rows=rows)
        )

    def coerce(self, source: str, domain: Domain, hint: str = "z") -> str:
        """Return a net with exactly ``domain`` carrying ``source``'s value."""
        if self.domain_of(source) == domain:
            return source
        target = self.fresh(domain, hint=hint)
        self.copy_into(source, target)
        return target

    def lower_ternary(self, expr: Ternary) -> str:
        cond = self.to_binary(self.lower(expr.cond))
        then_net = self.lower(expr.then)
        else_net = self.lower(expr.other)
        domain = self.join_domain(then_net, else_net)
        then_net = self.coerce(then_net, domain)
        else_net = self.coerce(else_net, domain)
        out = self.fresh(domain, hint="mux")
        self.model.tables.append(
            Table(
                inputs=[cond, then_net, else_net],
                outputs=[out],
                rows=[
                    Row(inputs=("1", ANY, ANY), outputs=(Eq(then_net),)),
                    Row(inputs=("0", ANY, ANY), outputs=(Eq(else_net),)),
                ],
            )
        )
        return out

    def lower_nd(self, expr: NDChoice) -> str:
        values: List[str] = []
        domains: List[Domain] = []
        for choice in expr.choices:
            if isinstance(choice, Num):
                values.append(str(choice.value))
                domains.append(int_domain(max(2, choice.value + 1)))
            elif isinstance(choice, Id) and choice.name in self.enum_values:
                values.append(choice.name)
                domains.append(self.enum_values[choice.name])
            elif isinstance(choice, Id) and choice.name in self.params:
                value = self.params[choice.name]
                values.append(str(value))
                domains.append(int_domain(max(2, value + 1)))
            else:
                raise self.error(
                    "$ND choices must be constants (paper's non-determinism "
                    "construct)"
                )
        domain = max(domains, key=len)
        for d in domains:
            if d[0] not in domain:  # enum vs int mix
                raise self.error("$ND mixes enum and integer constants")
        out = self.fresh(domain, hint="nd")
        rows = [Row(inputs=(), outputs=(v,)) for v in values]
        self.model.tables.append(Table(inputs=[], outputs=[out], rows=rows))
        return out

    def lower_index(self, expr: Index) -> str:
        if not isinstance(expr.base, Id):
            raise self.error("bit-select base must be a net")
        index = self.const_eval(expr.index)
        base = self.lower(expr.base)
        domain = self.domain_of(base)
        out = self.fresh(BIN, hint="bit")
        rows = [
            Row(inputs=(v,), outputs=(str((int(v) >> index) & 1),)) for v in domain
        ]
        self.model.tables.append(Table(inputs=[base], outputs=[out], rows=rows))
        return out

    def to_binary(self, net: str) -> str:
        """Truth value of a net: 0 iff the value is '0' (Verilog-style)."""
        domain = self.domain_of(net)
        if domain == BIN:
            return net
        if self.nets[net].is_enum:
            raise self.error(f"enum net {net!r} used as a condition")
        out = self.fresh(BIN, hint="b")
        rows = [
            Row(inputs=(v,), outputs=("0" if int(v) == 0 else "1",)) for v in domain
        ]
        self.model.tables.append(Table(inputs=[net], outputs=[out], rows=rows))
        return out

    def join_domain(self, a: str, b: str) -> Domain:
        da, db = self.domain_of(a), self.domain_of(b)
        if da == db:
            return da
        ea, eb = self.nets[a].is_enum, self.nets[b].is_enum
        if ea or eb:
            raise self.error(
                f"enum domain mismatch between {a!r} ({da}) and {b!r} ({db})"
            )
        return da if len(da) >= len(db) else db

    def lower_unop(self, expr: Unop) -> str:
        operand = self.lower(expr.operand)
        domain = self.domain_of(operand)
        if self.nets[operand].is_enum:
            raise self.error(f"operator {expr.op!r} not defined on enums")
        size = len(domain)
        width = (size - 1).bit_length() if size > 1 else 1

        def compute(v: int) -> int:
            if expr.op == "!":
                return 0 if v else 1
            if expr.op == "~":
                return (~v) & ((1 << width) - 1) if size == (1 << width) else (
                    (size - 1 - v)
                )
            if expr.op == "-":
                return (-v) % size
            if expr.op == "&":
                return 1 if v == size - 1 else 0
            if expr.op == "|":
                return 1 if v != 0 else 0
            raise self.error(f"unsupported unary operator {expr.op!r}")

        out_domain = BIN if expr.op in ("!", "&", "|") else domain
        out = self.fresh(out_domain, hint="u")
        rows = [
            Row(inputs=(v,), outputs=(str(compute(int(v))),)) for v in domain
        ]
        self.model.tables.append(Table(inputs=[operand], outputs=[out], rows=rows))
        return out

    def lower_binop(self, expr: Binop) -> str:
        left = self.lower(expr.left)
        right = self.lower(expr.right)
        la, lb = self.nets[left], self.nets[right]
        da, db = la.domain, lb.domain
        if la.is_enum or lb.is_enum:
            return self.lower_enum_binop(expr.op, left, right)
        if len(da) * len(db) > MAX_TABLE_ROWS:
            raise self.error(
                f"operator {expr.op!r} table would need {len(da) * len(db)} rows"
            )
        size = max(len(da), len(db))
        if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            out_domain = BIN
        else:
            out_domain = da if len(da) >= len(db) else db
        out = self.fresh(out_domain, hint="o")
        rows = []
        for va in da:
            for vb in db:
                result = _int_binop(expr.op, int(va), int(vb), size)
                rows.append(Row(inputs=(va, vb), outputs=(str(result),)))
        self.model.tables.append(
            Table(inputs=[left, right], outputs=[out], rows=rows)
        )
        return out

    def lower_enum_binop(self, op: str, left: str, right: str) -> str:
        da, db = self.domain_of(left), self.domain_of(right)
        if da != db:
            raise self.error(
                f"enum comparison between different domains {da} and {db}"
            )
        if op not in ("==", "!="):
            raise self.error(f"operator {op!r} not defined on enums")
        out = self.fresh(BIN, hint="e")
        rows = []
        for va in da:
            for vb in db:
                equal = va == vb
                value = "1" if (equal if op == "==" else not equal) else "0"
                rows.append(Row(inputs=(va, vb), outputs=(value,)))
        self.model.tables.append(
            Table(inputs=[left, right], outputs=[out], rows=rows)
        )
        return out


def _assignment_lines(stmt: Stmt) -> Dict[str, Set[int]]:
    """Target -> set of source lines assigning it (for ``.source``)."""
    out: Dict[str, Set[int]] = {}

    def walk(node: Stmt) -> None:
        if isinstance(node, Assignment):
            if node.line:
                out.setdefault(node.target, set()).add(node.line)
        elif isinstance(node, Block):
            for sub in node.stmts:
                walk(sub)
        elif isinstance(node, IfStmt):
            walk(node.then)
            if node.other is not None:
                walk(node.other)
        elif isinstance(node, CaseStmt):
            for item in node.items:
                walk(item.stmt)

    walk(stmt)
    return out


def _assigned_targets(stmt: Stmt) -> Set[str]:
    if isinstance(stmt, Assignment):
        return {stmt.target}
    if isinstance(stmt, Block):
        out: Set[str] = set()
        for sub in stmt.stmts:
            out |= _assigned_targets(sub)
        return out
    if isinstance(stmt, IfStmt):
        out = _assigned_targets(stmt.then)
        if stmt.other is not None:
            out |= _assigned_targets(stmt.other)
        return out
    if isinstance(stmt, CaseStmt):
        out = set()
        for item in stmt.items:
            out |= _assigned_targets(item.stmt)
        return out
    return set()


def _int_binop(op: str, a: int, b: int, size: int = 1 << 30) -> int:
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    if op == "&":
        return (a & b) % size
    if op == "|":
        return (a | b) % size
    if op == "^":
        return (a ^ b) % size
    if op == "+":
        return (a + b) % size
    if op == "-":
        return (a - b) % size
    if op == "*":
        return (a * b) % size
    if op == "/":
        return (a // b) % size if b else 0
    if op == "%":
        return (a % b) % size if b else 0
    if op == "<<":
        return (a << b) % size
    if op == ">>":
        return (a >> b) % size
    raise VerilogError(f"unsupported binary operator {op!r}")


def compile_source(source: SourceFile, root: Optional[str] = None) -> Design:
    """Compile parsed Verilog into a BLIF-MV design.

    ``root`` defaults to the unique module not instantiated anywhere.
    """
    modules = {m.name: m for m in source.modules}
    design = Design()
    for module in source.modules:
        model = _ModuleCompiler(module, modules).run()
        design.add(model)
    instantiated = {
        inst.module
        for module in source.modules
        for inst in module.items
        if isinstance(inst, Instance)
    }
    if root is None:
        candidates = [m.name for m in source.modules if m.name not in instantiated]
        if not candidates:
            raise VerilogError("no root module (instantiation cycle?)")
        root = candidates[-1]
    if root not in design.models:
        raise VerilogError(f"unknown root module {root!r}")
    design.root = root
    design.validate()
    return design


def compile_verilog(text: str, root: Optional[str] = None) -> Design:
    """Parse and compile Verilog text to a BLIF-MV design (vl2mv)."""
    return compile_source(parse_verilog(text), root=root)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: ``vl2mv input.v [-o output.mv] [--root name]``."""
    import argparse

    from repro.blifmv.writer import write

    cli = argparse.ArgumentParser(
        prog="vl2mv", description="Compile a Verilog subset to BLIF-MV"
    )
    cli.add_argument("input", help="Verilog source file")
    cli.add_argument("-o", "--output", help="output BLIF-MV file (default stdout)")
    cli.add_argument("--root", help="root module name")
    args = cli.parse_args(argv)
    with open(args.input) as handle:
        design = compile_verilog(handle.read(), root=args.root)
    text = write(design) + "\n"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
