"""Recursive-descent parser for the vl2mv Verilog subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.verilog.ast import (
    AlwaysComb,
    AlwaysSeq,
    Assignment,
    Binop,
    Block,
    CaseItem,
    CaseStmt,
    ContAssign,
    Expr,
    Id,
    IfStmt,
    Index,
    InitialBlock,
    Instance,
    ModuleDecl,
    NDChoice,
    NetDecl,
    Num,
    ParamDecl,
    Range,
    SourceFile,
    Stmt,
    Ternary,
    Unop,
)
from repro.verilog.lexer import Token, VerilogError, parse_sized_literal, tokenize

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self, offset: int = 0) -> Optional[Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise VerilogError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.next()
        if tok.text != text:
            raise VerilogError(f"line {tok.line}: expected {text!r}, got {tok.text!r}")
        return tok

    def expect_id(self) -> str:
        tok = self.next()
        if tok.kind != "id":
            raise VerilogError(f"line {tok.line}: expected identifier, got {tok.text!r}")
        return tok.text

    # -- top level ---------------------------------------------------------

    def source(self) -> SourceFile:
        out = SourceFile()
        while self.peek() is not None:
            out.modules.append(self.module())
        return out

    def module(self) -> ModuleDecl:
        self.expect("module")
        name = self.expect_id()
        ports: List[str] = []
        if self.at("("):
            self.next()
            while not self.at(")"):
                ports.append(self.expect_id())
                if self.at(","):
                    self.next()
            self.expect(")")
        self.expect(";")
        mod = ModuleDecl(name=name, ports=ports)
        while not self.at("endmodule"):
            mod.items.append(self.module_item())
        self.expect("endmodule")
        return mod

    def module_item(self):
        tok = self.peek()
        assert tok is not None
        if tok.text in ("input", "output", "wire", "reg"):
            return self.net_decl()
        if tok.text == "enum":
            return self.enum_decl()
        if tok.text in ("parameter", "localparam"):
            return self.param_decl()
        if tok.text == "assign":
            return self.cont_assign()
        if tok.text == "always":
            return self.always()
        if tok.text == "initial":
            return self.initial()
        if tok.kind == "id":
            return self.instance()
        raise VerilogError(f"line {tok.line}: unexpected {tok.text!r}")

    def net_decl(self) -> NetDecl:
        kind = self.next().text
        rng = self.opt_range()
        # 'output reg [..] name' style
        if self.at("reg") or self.at("wire"):
            self.next()
            if rng is None:
                rng = self.opt_range()
        names = [self.expect_id()]
        while self.at(","):
            self.next()
            names.append(self.expect_id())
        self.expect(";")
        return NetDecl(kind=kind, names=names, range=rng)

    def enum_decl(self) -> NetDecl:
        self.expect("enum")
        self.expect("{")
        values = [self.expect_id()]
        while self.at(","):
            self.next()
            values.append(self.expect_id())
        self.expect("}")
        kind = "wire"
        if self.at("reg") or self.at("wire"):
            kind = self.next().text
        names = [self.expect_id()]
        while self.at(","):
            self.next()
            names.append(self.expect_id())
        self.expect(";")
        return NetDecl(kind=kind, names=names, enum_values=values)

    def opt_range(self) -> Optional[Range]:
        if not self.at("["):
            return None
        self.next()
        msb = self.const_int()
        self.expect(":")
        lsb = self.const_int()
        self.expect("]")
        return Range(msb=msb, lsb=lsb)

    def const_int(self) -> int:
        tok = self.next()
        if tok.kind == "number":
            return int(tok.text)
        if tok.kind == "sized":
            value, _width = parse_sized_literal(tok.text)
            return value
        raise VerilogError(f"line {tok.line}: expected constant, got {tok.text!r}")

    def param_decl(self) -> ParamDecl:
        self.next()  # parameter | localparam
        name = self.expect_id()
        self.expect("=")
        value = self.expression()
        self.expect(";")
        return ParamDecl(name=name, value=value)

    def cont_assign(self) -> ContAssign:
        self.expect("assign")
        target = self.expect_id()
        self.expect("=")
        value = self.expression()
        self.expect(";")
        return ContAssign(target=target, value=value)

    def always(self):
        self.expect("always")
        self.expect("@")
        self.expect("(")
        tok = self.peek()
        assert tok is not None
        if tok.text == "posedge" or tok.text == "negedge":
            self.next()
            clock = self.expect_id()
            self.expect(")")
            return AlwaysSeq(clock=clock, body=self.statement())
        # combinational: '*' or sensitivity list 'a or b or c'
        if tok.text == "*":
            self.next()
        else:
            self.expect_id()
            while self.at("or"):
                self.next()
                self.expect_id()
        self.expect(")")
        return AlwaysComb(body=self.statement())

    def initial(self) -> InitialBlock:
        self.expect("initial")
        block = InitialBlock()
        stmt = self.statement()
        for assign in _flatten_assignments(stmt):
            block.assignments.append(assign)
        return block

    def instance(self) -> Instance:
        module = self.expect_id()
        name = self.expect_id()
        self.expect("(")
        connections: List[Tuple[Optional[str], str]] = []
        while not self.at(")"):
            if self.at("."):
                self.next()
                port = self.expect_id()
                self.expect("(")
                net = self.expect_id()
                self.expect(")")
                connections.append((port, net))
            else:
                connections.append((None, self.expect_id()))
            if self.at(","):
                self.next()
        self.expect(")")
        self.expect(";")
        return Instance(module=module, name=name, connections=connections)

    # -- statements ----------------------------------------------------------

    def statement(self) -> Stmt:
        tok = self.peek()
        assert tok is not None
        if tok.text == "begin":
            self.next()
            block = Block()
            while not self.at("end"):
                block.stmts.append(self.statement())
            self.expect("end")
            return block
        if tok.text == "if":
            self.next()
            self.expect("(")
            cond = self.expression()
            self.expect(")")
            then = self.statement()
            other = None
            if self.at("else"):
                self.next()
                other = self.statement()
            return IfStmt(cond=cond, then=then, other=other)
        if tok.text in ("case", "casex"):
            self.next()
            self.expect("(")
            subject = self.expression()
            self.expect(")")
            case = CaseStmt(subject=subject)
            while not self.at("endcase"):
                case.items.append(self.case_item())
            self.expect("endcase")
            return case
        # assignment
        target = self.expect_id()
        op = self.next()
        if op.text == "<=":
            nonblocking = True
        elif op.text == "=":
            nonblocking = False
        else:
            raise VerilogError(
                f"line {op.line}: expected assignment operator, got {op.text!r}"
            )
        value = self.expression()
        self.expect(";")
        return Assignment(target=target, value=value, nonblocking=nonblocking,
                          line=op.line)

    def case_item(self) -> CaseItem:
        if self.at("default"):
            self.next()
            if self.at(":"):
                self.next()
            return CaseItem(labels=None, stmt=self.statement())
        labels = [self.expression()]
        while self.at(","):
            self.next()
            labels.append(self.expression())
        self.expect(":")
        return CaseItem(labels=labels, stmt=self.statement())

    # -- expressions -----------------------------------------------------------

    def expression(self) -> Expr:
        return self.ternary()

    def ternary(self) -> Expr:
        cond = self.binary(0)
        if self.at("?"):
            self.next()
            then = self.ternary()
            self.expect(":")
            other = self.ternary()
            return Ternary(cond=cond, then=then, other=other)
        return cond

    def binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self.unary()
        ops = _BINARY_LEVELS[level]
        left = self.binary(level + 1)
        while True:
            tok = self.peek()
            if tok is None or tok.text not in ops:
                return left
            self.next()
            right = self.binary(level + 1)
            left = Binop(op=tok.text, left=left, right=right)

    def unary(self) -> Expr:
        tok = self.peek()
        assert tok is not None
        if tok.text in ("!", "~", "-", "&", "|"):
            self.next()
            return Unop(op=tok.text, operand=self.unary())
        return self.primary()

    def primary(self) -> Expr:
        tok = self.next()
        if tok.text == "(":
            inner = self.expression()
            self.expect(")")
            return inner
        if tok.kind == "number":
            return Num(value=int(tok.text))
        if tok.kind == "sized":
            value, width = parse_sized_literal(tok.text)
            return Num(value=value, width=width)
        if tok.kind == "system":
            if tok.text != "$ND":
                raise VerilogError(
                    f"line {tok.line}: unsupported system call {tok.text}"
                )
            self.expect("(")
            choices = [self.expression()]
            while self.at(","):
                self.next()
                choices.append(self.expression())
            self.expect(")")
            return NDChoice(choices=tuple(choices))
        if tok.kind == "id":
            base: Expr = Id(name=tok.text)
            if self.at("["):
                self.next()
                index = self.expression()
                self.expect("]")
                base = Index(base=base, index=index)
            return base
        raise VerilogError(f"line {tok.line}: unexpected token {tok.text!r}")


def _flatten_assignments(stmt: Stmt) -> List[Assignment]:
    if isinstance(stmt, Assignment):
        return [stmt]
    if isinstance(stmt, Block):
        out: List[Assignment] = []
        for sub in stmt.stmts:
            out.extend(_flatten_assignments(sub))
        return out
    raise VerilogError("initial blocks may only contain plain assignments")


def parse_verilog(text: str) -> SourceFile:
    """Parse Verilog source text into a :class:`SourceFile`."""
    return _Parser(tokenize(text)).source()
