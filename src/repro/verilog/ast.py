"""AST for the vl2mv Verilog subset.

The subset follows the paper (§3): synthesizable constructs only, plus
the HSIS extensions — ``$ND(...)`` non-deterministic choice (for both
register and wire non-determinism, after Balarin-York) and enumerated
types (``enum { idle, busy } state;``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- expressions ---------------------------------------------------------


class Expr:
    pass


@dataclass(frozen=True)
class Id(Expr):
    name: str


@dataclass(frozen=True)
class Num(Expr):
    value: int
    width: Optional[int] = None  # from sized literals


@dataclass(frozen=True)
class EnumConst(Expr):
    """A reference to an enumerated value (resolved during compilation)."""

    name: str


@dataclass(frozen=True)
class Unop(Expr):
    op: str  # ! ~ - &(reduction) |(reduction)
    operand: Expr


@dataclass(frozen=True)
class Binop(Expr):
    op: str  # == != && || & | ^ + - * / % < <= > >= << >>
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True)
class NDChoice(Expr):
    """``$ND(v1, ..., vk)``: non-deterministically one of the choices."""

    choices: Tuple[Expr, ...]


@dataclass(frozen=True)
class Index(Expr):
    """Constant bit-select ``v[i]`` (only constant indices supported)."""

    base: Expr
    index: Expr


# -- statements ----------------------------------------------------------


class Stmt:
    pass


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass
class CaseItem:
    labels: Optional[List[Expr]]  # None = default
    stmt: Stmt


@dataclass
class CaseStmt(Stmt):
    subject: Expr
    items: List[CaseItem] = field(default_factory=list)


@dataclass
class Assignment(Stmt):
    target: str
    value: Expr
    nonblocking: bool = False
    line: int = 0  # source line, for source-level debugging (§8 item 7)


# -- module items --------------------------------------------------------


@dataclass
class Range:
    msb: int
    lsb: int

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1


@dataclass
class NetDecl:
    kind: str  # 'input' | 'output' | 'wire' | 'reg'
    names: List[str]
    range: Optional[Range] = None
    enum_values: Optional[List[str]] = None


@dataclass
class ParamDecl:
    name: str
    value: Expr


@dataclass
class ContAssign:
    target: str
    value: Expr


@dataclass
class AlwaysSeq:
    """``always @(posedge clk) ...`` — all latches share the global clock."""

    clock: str
    body: Stmt


@dataclass
class AlwaysComb:
    """``always @(*)`` / ``always @(a or b)``."""

    body: Stmt


@dataclass
class InitialBlock:
    """``initial r = value;`` reset values (possibly ``$ND``)."""

    assignments: List[Assignment] = field(default_factory=list)


@dataclass
class Instance:
    module: str
    name: str
    # Named connections .port(net); positional become indices.
    connections: List[Tuple[Optional[str], str]] = field(default_factory=list)


ModuleItem = Union[
    NetDecl, ParamDecl, ContAssign, AlwaysSeq, AlwaysComb, InitialBlock, Instance
]


@dataclass
class ModuleDecl:
    name: str
    ports: List[str]
    items: List[ModuleItem] = field(default_factory=list)


@dataclass
class SourceFile:
    modules: List[ModuleDecl] = field(default_factory=list)
