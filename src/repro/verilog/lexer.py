"""Lexer for the synthesizable Verilog subset accepted by vl2mv.

Handles identifiers (including escaped ``\\name`` and system names
``$ND``), decimal and sized literals (``4'b0101``, ``2'd3``), operators,
and both comment styles.  Produces a flat token list consumed by the
recursive-descent parser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Tuple


class VerilogError(Exception):
    """Raised on lexical/syntactic/semantic errors in Verilog input."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'id', 'number', 'sized', 'op', 'keyword', 'system'
    text: str
    line: int

    def __repr__(self) -> str:
        return f"{self.text!r}@{self.line}"


KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "initial", "begin", "end", "if", "else", "case",
    "casex", "endcase", "default", "posedge", "negedge", "or", "parameter",
    "enum", "integer", "localparam",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<sized>[0-9]+'[bBdDhHoO][0-9a-fA-FxXzZ_]+)
  | (?P<number>[0-9][0-9_]*)
  | (?P<system>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<id>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op><=|>=|==|!=|&&|\|\||<<|>>|->|[-+*/%<>!~&|^?:=(){}\[\],;.#@])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str) -> List[Token]:
    """Lex Verilog source into tokens (comments and whitespace dropped)."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise VerilogError(f"line {line}: unexpected character {text[pos]!r}")
        group = match.lastgroup
        value = match.group()
        line += value.count("\n")
        pos = match.end()
        if group in ("ws", "line_comment", "block_comment"):
            continue
        if group == "id" and value in KEYWORDS:
            tokens.append(Token("keyword", value, line))
        elif group == "id":
            tokens.append(Token("id", value, line))
        elif group == "system":
            tokens.append(Token("system", value, line))
        elif group == "sized":
            tokens.append(Token("sized", value, line))
        elif group == "number":
            tokens.append(Token("number", value, line))
        else:
            tokens.append(Token("op", value, line))
    return tokens


def parse_sized_literal(text: str) -> Tuple[int, int]:
    """Parse ``4'b0101`` style literals into ``(value, width)``."""
    width_text, rest = text.split("'", 1)
    base_char = rest[0].lower()
    digits = rest[1:].replace("_", "")
    base = {"b": 2, "d": 10, "h": 16, "o": 8}[base_char]
    if any(c in "xXzZ" for c in digits):
        raise VerilogError(f"x/z digits are not synthesizable: {text!r}")
    return int(digits, base), int(width_text)
