"""Verilog front end (vl2mv): a synthesizable subset extended with
``$ND`` non-determinism and enumerated types, compiled to BLIF-MV."""

from repro.verilog.lexer import VerilogError, tokenize
from repro.verilog.parser import parse_verilog
from repro.verilog.compile import compile_source, compile_verilog

__all__ = [
    "VerilogError",
    "tokenize",
    "parse_verilog",
    "compile_source",
    "compile_verilog",
]
