"""Trace exporters: JSONL, Chrome trace-event JSON, text summary tree.

* :func:`write_jsonl` / :func:`read_jsonl` — one event object per line,
  lossless round trip of the tracer's native schema.
* :func:`to_chrome` / :func:`write_chrome` — the Chrome trace-event
  format (the ``{"traceEvents": [...]}`` JSON object), loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Spans
  become complete (``"ph": "X"``) events, instants become thread-scoped
  instant (``"ph": "i"``) events; timestamps are microseconds relative
  to the earliest event.
* :func:`summary` — a human-readable aggregation: the span tree with
  accumulated wall time and call counts, instant counts attached to
  their enclosing span.

``write_trace`` picks the exporter from the file extension (``.jsonl``,
``.txt``/``.tree``, anything else: Chrome JSON) — the CLI's ``--trace
FILE`` goes through it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.trace.tracer import Event, Tracer

#: pid stamped on every exported Chrome event (one logical process).
CHROME_PID = 1


def _events(source) -> List[Event]:
    return source.events if isinstance(source, Tracer) else list(source)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def write_jsonl(source, path: str) -> int:
    """Write one event per line; returns the number of events written."""
    events = _events(source)
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
    return len(events)


def read_jsonl(path: str) -> List[Event]:
    """Parse a JSONL trace back into the native event list."""
    events: List[Event] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def to_chrome(source, process_name: str = "hsis") -> Dict[str, Any]:
    """Convert to the Chrome trace-event JSON object."""
    events = sorted(_events(source), key=lambda e: e["ts"])
    epoch = events[0]["ts"] if events else 0.0
    out: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": CHROME_PID,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for event in events:
        converted: Dict[str, Any] = {
            "name": event["name"],
            "cat": event.get("cat") or "trace",
            "ph": event["ph"],
            "ts": (event["ts"] - epoch) * 1e6,
            "pid": CHROME_PID,
            "tid": event.get("tid", 0),
            "args": event.get("args", {}),
        }
        if event["ph"] == "X":
            converted["dur"] = event["dur"] * 1e6
        elif event["ph"] == "i":
            converted["s"] = "t"  # thread-scoped instant
        out.append(converted)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome(source, path: str, process_name: str = "hsis") -> int:
    """Write Chrome trace JSON; returns the number of events exported."""
    payload = to_chrome(source, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"]) - 1  # minus the metadata record


def load_chrome(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def validate_chrome(payload: Dict[str, Any]) -> List[str]:
    """Spec-check a Chrome trace object; returns a list of problems."""
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for i, event in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"event {i} lacks required field {field!r}")
        ph = event.get("ph")
        if ph == "X" and "dur" not in event:
            problems.append(f"complete event {i} ({event.get('name')}) lacks dur")
        if ph == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"instant event {i} ({event.get('name')}) has bad scope")
    return problems


# ----------------------------------------------------------------------
# Text summary tree
# ----------------------------------------------------------------------

class _Agg:
    __slots__ = ("seconds", "calls", "instants", "children", "order")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.calls = 0
        self.instants: Dict[str, int] = {}
        self.children: Dict[str, "_Agg"] = {}
        self.order: List[str] = []

    def child(self, name: str) -> "_Agg":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = _Agg()
            self.order.append(name)
        return node


def summary(source, title: str = "trace summary") -> str:
    """Aggregate the span tree per tid lane into an indented report."""
    by_tid: Dict[int, List[Event]] = {}
    for event in sorted(_events(source), key=lambda e: (e.get("tid", 0), e["ts"])):
        by_tid.setdefault(event.get("tid", 0), []).append(event)
    lines = [f"{title}:"]
    if not by_tid:
        lines.append("  (no events)")
        return "\n".join(lines)
    for tid in sorted(by_tid):
        root = _Agg()
        path: List[str] = []
        for event in by_tid[tid]:
            depth = event.get("depth", 0)
            del path[depth:]
            node = root
            for name in path:
                node = node.child(name)
            if event["ph"] == "X":
                span = node.child(event["name"])
                span.seconds += event["dur"]
                span.calls += 1
                path.append(event["name"])
            else:
                node.instants[event["name"]] = (
                    node.instants.get(event["name"], 0) + 1
                )
        if len(by_tid) > 1:
            lines.append(f"  [lane {tid}]")
        _render(root, lines, indent=2 + (2 if len(by_tid) > 1 else 0))
    return "\n".join(lines)


def _render(node: _Agg, lines: List[str], indent: int) -> None:
    pad = " " * indent
    for name, count in sorted(node.instants.items()):
        lines.append(f"{pad}* {name} x{count}")
    for name in node.order:
        child = node.children[name]
        lines.append(f"{pad}{name}  {child.seconds:.3f}s  x{child.calls}")
        _render(child, lines, indent + 2)


# ----------------------------------------------------------------------
# Extension dispatch
# ----------------------------------------------------------------------

def write_trace(source, path: str) -> str:
    """Write ``source`` to ``path`` in the format its extension implies.

    ``.jsonl`` — JSONL event log; ``.txt``/``.tree`` — text summary;
    everything else — Chrome trace JSON.  Returns the format used.
    """
    lower = path.lower()
    if lower.endswith(".jsonl"):
        write_jsonl(source, path)
        return "jsonl"
    if lower.endswith((".txt", ".tree")):
        with open(path, "w") as handle:
            handle.write(summary(source))
            handle.write("\n")
        return "summary"
    write_chrome(source, path)
    return "chrome"


def safe_write_trace(source, path: str) -> Tuple[Optional[str], Optional[str]]:
    """:func:`write_trace` that reports failure instead of raising.

    Returns ``(format, None)`` on success and ``(None, reason)`` when
    the file cannot be written (unwritable directory, read-only file,
    disk full).  Both the CLI's ``--trace FILE`` and the serve layer's
    per-job trace files go through this, so a bad trace path surfaces
    as a clear one-line error and never aborts the run that produced
    the events.
    """
    try:
        return write_trace(source, path), None
    except OSError as exc:
        return None, f"cannot write trace file {path!r}: {exc}"


def _fmt_args(args: Sequence) -> str:  # pragma: no cover - debug helper
    return " ".join(f"{k}={v}" for k, v in args)
