"""Structured tracing for the verification pipeline.

A :class:`Tracer` records two kinds of typed events on a single
timeline:

* **spans** — nestable named intervals (``with tracer.span("reach")``)
  covering the pipeline phases: encode, transition-relation build,
  reachability, model checking, language containment, fuzz trials;
* **instants** — point events carrying structured arguments: one BDD
  garbage-collection sweep, one computed-cache eviction, one quantify
  schedule step, one BFS onion ring, one fixpoint iteration, one worker
  task state change.

Events are plain dictionaries (picklable, JSON-serializable) with the
schema::

    {"ph": "X", "name": ..., "cat": ..., "ts": <perf_counter seconds>,
     "dur": <seconds>, "tid": 0, "depth": <nesting depth>, "args": {...}}
    {"ph": "i", "name": ..., "cat": ..., "ts": ..., "tid": 0,
     "depth": ..., "args": {...}}

``ts`` is an absolute :func:`time.perf_counter` reading.  On the
platforms we care about that clock is ``CLOCK_MONOTONIC``, which is
shared by every process of one boot, so events recorded in worker
processes line up with the parent's timeline after :meth:`absorb` (each
absorbed tracer gets its own ``tid`` lane).

The **disabled** tracer is the default everywhere and is near-free: each
emit site is one attribute check (``tracer.enabled``) or one method call
returning a shared no-op span.  Engines therefore instrument their hot
loops unconditionally and guard only the *argument computation* (node
counts, state counts) behind ``tracer.enabled``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

Event = Dict[str, Any]


class Span:
    """Handle for one open interval; closes (records) on ``__exit__``.

    Extra arguments discovered mid-span can be attached with
    :meth:`add`; they land in the recorded event's ``args``.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0
        self._depth = 0

    def add(self, **args: Any) -> None:
        """Attach further arguments to the span before it closes."""
        self.args.update(args)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self._depth = tracer._depth
        tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._depth -= 1
        tracer.events.append(
            {
                "ph": "X",
                "name": self.name,
                "cat": self.cat,
                "ts": self._start,
                "dur": end - self._start,
                "tid": 0,
                "depth": self._depth,
                "args": self.args,
            }
        )
        return False


class _NullSpan:
    """Shared no-op span returned by a disabled tracer."""

    __slots__ = ()

    def add(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects structured events; disabled instances are near-free."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: List[Event] = []
        self._depth = 0
        self._next_tid = 1

    @classmethod
    def disabled(cls) -> "Tracer":
        """A fresh no-op tracer (the engine-wide default)."""
        return cls(enabled=False)

    # ------------------------------------------------------------------

    def span(self, name: str, cat: str = "", **args: Any):
        """Open a nestable interval; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        """Record a point event with structured arguments."""
        if not self.enabled:
            return
        self.events.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "ts": time.perf_counter(),
                "tid": 0,
                "depth": self._depth,
                "args": args,
            }
        )

    # ------------------------------------------------------------------

    def absorb(self, other: "Tracer", tid: Optional[int] = None) -> int:
        """Fold another tracer's events in on a fresh ``tid`` lane.

        Used to merge per-worker traces into the parent: the worker
        recorded on its own tid 0 (plus lanes it absorbed itself); every
        lane is shifted so it cannot collide with an existing one.
        Returns the base tid assigned (-1 if ``other`` was empty).
        Absorbing works even on a disabled tracer, so traces survive
        multi-hop relays (worker -> detached stats -> parent).
        """
        if other is self or not other.events:
            return -1
        base = self._next_tid if tid is None else tid
        top = base
        for event in other.events:
            moved = dict(event)
            moved["tid"] = base + event.get("tid", 0)
            top = max(top, moved["tid"])
            self.events.append(moved)
        self._next_tid = max(self._next_tid, top + 1)
        return base

    def clear(self) -> None:
        self.events.clear()
        self._depth = 0
        self._next_tid = 1

    def __len__(self) -> int:
        return len(self.events)
