"""Structured event tracing and profiling for the verification engine.

See docs/observability.md for the event schema, the exporters, and how
to view traces in Perfetto.
"""

from repro.trace.tracer import NULL_SPAN, Span, Tracer
from repro.trace.export import (
    load_chrome,
    read_jsonl,
    safe_write_trace,
    summary,
    to_chrome,
    validate_chrome,
    write_chrome,
    write_jsonl,
    write_trace,
)

#: Shared disabled tracer — the default for every engine object.  Never
#: enable this instance in place; create a fresh ``Tracer()`` instead.
NULL_TRACER = Tracer(enabled=False)

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "load_chrome",
    "read_jsonl",
    "safe_write_trace",
    "summary",
    "to_chrome",
    "validate_chrome",
    "write_chrome",
    "write_jsonl",
    "write_trace",
]
