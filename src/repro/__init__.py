"""repro — HSIS: A BDD-Based Environment for Formal Verification.

A from-scratch Python reproduction of the HSIS system (Aziz et al.,
DAC 1994): the BLIF-MV intermediate format, a Verilog front end (vl2mv),
a pure-Python BDD/MDD package, fair CTL model checking, ω-automata
language containment with edge-Streett/edge-Rabin fairness, early
quantification, early failure detection, error-trace debugging,
bisimulation minimization and a state-based simulator.

Quickstart::

    from repro import compile_verilog, flatten, SymbolicFsm, check_ctl

    design = compile_verilog(open("design.v").read())
    fsm = SymbolicFsm(flatten(design))
    result = check_ctl(fsm, "AG !(out1=1 & out2=1)")
    assert result.holds
"""

from repro.bdd import BDD, MddManager, MvVar
from repro.blifmv import Design, Model, flatten, parse, parse_file, write
from repro.verilog import compile_verilog, parse_verilog
from repro.network import SymbolicFsm, compose, multiply_and_quantify
from repro.automata import (
    Automaton,
    BuchiEdge,
    BuchiState,
    FairnessSpec,
    NegativeStateSet,
    RabinPair,
    StreettPair,
    atom as guard_atom,
    attach,
)
from repro.ctl import ModelChecker, check_ctl, parse_ctl
from repro.lc import check_containment, language_empty
from repro.debug import CtlDebugger, format_lc_report, lc_counterexample
from repro.sim import Simulator
from repro.minimize import bisimulation_partition, minimize_with_reached
from repro.pif import parse_pif, parse_pif_file

__version__ = "1.0.0"

__all__ = [
    "BDD",
    "MddManager",
    "MvVar",
    "Design",
    "Model",
    "flatten",
    "parse",
    "parse_file",
    "write",
    "compile_verilog",
    "parse_verilog",
    "SymbolicFsm",
    "compose",
    "multiply_and_quantify",
    "Automaton",
    "BuchiEdge",
    "BuchiState",
    "FairnessSpec",
    "NegativeStateSet",
    "RabinPair",
    "StreettPair",
    "guard_atom",
    "attach",
    "ModelChecker",
    "check_ctl",
    "parse_ctl",
    "check_containment",
    "language_empty",
    "CtlDebugger",
    "format_lc_report",
    "lc_counterexample",
    "Simulator",
    "bisimulation_partition",
    "minimize_with_reached",
    "parse_pif",
    "parse_pif_file",
    "__version__",
]

from repro.network import (
    DelayBound,
    bounded_response_automaton,
    cone_of_influence,
    elaborate_delays,
    freeing_abstraction,
)
from repro.refine import RefinementResult, check_refinement
from repro.pif import instantiate as property_template

__all__ += [
    "DelayBound",
    "bounded_response_automaton",
    "cone_of_influence",
    "elaborate_delays",
    "freeing_abstraction",
    "RefinementResult",
    "check_refinement",
    "property_template",
]
