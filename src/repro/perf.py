"""Unified engine telemetry.

:class:`EngineStats` is the single aggregation point for everything the
verification engines want to report: per-phase wall time (encode, build
of the transition relation, reachability, model checking, language
containment), named event counters, and — when attached to a
:class:`~repro.bdd.manager.BDD` — the kernel's own numbers (live/peak
nodes, GC runs, computed-cache hit rates per operator).

Engines create one ``EngineStats`` per :class:`SymbolicFsm` and share it
down the stack, replacing the scattered ``time.perf_counter()`` calls
that used to live in ``network/fsm.py``, ``ctl/modelcheck.py``,
``lc/containment.py`` and ``cli.py``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, TYPE_CHECKING

from repro.trace.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.bdd.manager import BDD


@dataclass
class PhaseTimer:
    """Handle yielded by :meth:`EngineStats.phase`.

    ``seconds`` is filled in when the ``with`` block exits, so callers
    can read the elapsed time of the phase they just ran.
    """

    name: str
    seconds: float = 0.0


@dataclass
class PhaseStat:
    """Accumulated wall time and invocation count for one phase."""

    seconds: float = 0.0
    calls: int = 0


@dataclass
class EngineStats:
    """Aggregator for engine-level and kernel-level statistics."""

    bdd: Optional["BDD"] = None
    phases: Dict[str, PhaseStat] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    #: Structured event sink shared down the engine stack.  Disabled by
    #: default (near-zero overhead); ``hsis --trace`` swaps in a live
    #: :class:`~repro.trace.tracer.Tracer`.
    tracer: Tracer = field(default_factory=Tracer.disabled)
    #: String-valued provenance facts (e.g. which ordering-portfolio
    #: heuristic won, whether the order cache hit).  Last writer wins on
    #: merge; numeric facts belong in ``counters``.
    meta: Dict[str, str] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseTimer]:
        """Time a named phase; accumulates across repeated invocations.

        Every phase is also a trace span, so the encode / build_tr /
        reach / mc / lc intervals appear in exported timelines for free.
        """
        timer = PhaseTimer(name)
        span = self.tracer.span(name, cat="phase")
        span.__enter__()
        start = time.perf_counter()
        try:
            yield timer
        finally:
            timer.seconds = time.perf_counter() - start
            span.__exit__(None, None, None)
            stat = self.phases.setdefault(name, PhaseStat())
            stat.seconds += timer.seconds
            stat.calls += 1

    def phase_seconds(self, name: str) -> float:
        """Total accumulated wall time for ``name`` (0.0 if never run)."""
        stat = self.phases.get(name)
        return stat.seconds if stat else 0.0

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named event counter."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        """Current value of a named counter (0 if never bumped)."""
        return self.counters.get(name, 0)

    def rate(self, counter: str, phase: str) -> float:
        """Events per second: ``counter`` over ``phase`` wall time.

        The serve layer aggregates every job's worker ``EngineStats``
        into one server-level collector via :meth:`merge`; this derives
        throughput numbers (jobs/s, trials/s) from the merged totals.
        Returns 0.0 when the phase never ran.
        """
        seconds = self.phase_seconds(phase)
        return self.counter(counter) / seconds if seconds > 0 else 0.0

    def merge(self, other: "EngineStats") -> None:
        """Fold another collector's phases and counters into this one.

        The fuzz harness creates a short-lived :class:`SymbolicFsm` (and
        hence a fresh ``EngineStats``) per trial; merging lets the sweep
        report aggregate timing across all of them.  Kernel-level numbers
        are not merged — they belong to each trial's own manager.
        """
        for name, stat in other.phases.items():
            mine = self.phases.setdefault(name, PhaseStat())
            mine.seconds += stat.seconds
            mine.calls += stat.calls
        for name, amount in other.counters.items():
            self.bump(name, amount)
        self.meta.update(other.meta)
        # Fold worker trace events in on their own tid lane.  This works
        # even when this collector's tracer is disabled, so traces
        # survive the worker -> detached stats -> parent relay.  Engines
        # that *share* a tracer (fsm created with tracer=stats.tracer)
        # must not absorb it into itself.
        if other.tracer is not self.tracer and other.tracer.events:
            self.tracer.absorb(other.tracer)

    def snapshot(self) -> Dict[str, object]:
        """Flat dictionary of everything known right now."""
        out: Dict[str, object] = {}
        if self.bdd is not None:
            out.update(self.bdd.stats())
            out["cache_hit_rate"] = round(self.bdd.cache_hit_rate(), 4)
            out["op_cache"] = self.bdd.cache_stats()
            frontiers = out.get("batch_frontiers", 0)
            out["batch_mean_width"] = round(
                out.get("batch_frontier_nodes", 0) / frontiers, 2
            ) if frontiers else 0.0
        out["phases"] = {
            name: {"seconds": round(stat.seconds, 6), "calls": stat.calls}
            for name, stat in self.phases.items()
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def format(self) -> str:
        """Human-readable multi-line report (used by ``--stats``)."""
        lines = ["engine statistics:"]
        if self.bdd is not None:
            s = self.bdd.stats()
            live = s["live_nodes"]
            lines.append(
                f"  nodes: {live} live / "
                f"{s['peak_live_nodes']} peak / {s['allocated_nodes']} allocated"
            )
            ce = s["complement_edges"]
            lines.append(
                f"  complement edges: {ce} live"
                + (f" ({ce / live:.1%} of nodes)" if live else "")
                + f"   not_ calls: {s['not_calls']} (zero-allocation)"
                + f"   ite std rewrites: {s['std_rewrites']}"
            )
            lines.append(
                f"  gc runs: {s['gc_runs']}   cache: {s['cache_entries']} entries, "
                f"{s['cache_evictions']} evictions, "
                f"{self.bdd.cache_hit_rate():.1%} hit rate"
            )
            lines.append(
                "  store: "
                f"{s['node_capacity']} node slots "
                f"({s['allocated_nodes'] / s['node_capacity']:.1%} allocated)   "
                f"unique table: {s['unique_used']}/{s['unique_slots']} "
                f"({s['unique_used'] / s['unique_slots']:.1%} load)   "
                f"cache occupancy: {s['cache_entries']}/{s['cache_capacity']} "
                f"({s['cache_entries'] / s['cache_capacity']:.1%})"
            )
            if s["batch_calls"] or s["batch_scalar_requests"]:
                frontiers = s["batch_frontiers"]
                mean = (
                    s["batch_frontier_nodes"] / frontiers if frontiers else 0.0
                )
                lines.append(
                    f"  batch apply: {s['batch_calls']} call(s), "
                    f"{s['batch_requests']} request(s) over "
                    f"{frontiers} frontier(s) "
                    f"(mean width {mean:.1f}, max {s['batch_max_width']})   "
                    f"scalar-routed: {s['batch_scalar_requests']}"
                )
            if s["compact_runs"]:
                lines.append(f"  compactions: {s['compact_runs']} run(s)")
            if s["reorder_runs"]:
                lines.append(
                    f"  reorder: {s['reorder_runs']} run(s), "
                    f"{s['reorder_swaps']} full + "
                    f"{s['reorder_fast_swaps']} fast swaps"
                )
            ops = [
                (op, d) for op, d in self.bdd.cache_stats().items() if d["lookups"]
            ]
            if ops:
                lines.append(
                    f"  {'op':<10} {'lookups':>10} {'hits':>10} {'hit rate':>9}"
                )
                for op, d in sorted(
                    ops, key=lambda kv: kv[1]["lookups"], reverse=True
                ):
                    lines.append(
                        f"  {op:<10} {int(d['lookups']):>10} "
                        f"{int(d['hits']):>10} {d['hit_rate']:>9.1%}"
                    )
        if self.phases:
            for name, stat in self.phases.items():
                lines.append(
                    f"  phase {name}: {stat.seconds:.3f}s over {stat.calls} call(s)"
                )
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name}: {value}")
        for name, value in sorted(self.meta.items()):
            lines.append(f"  {name}: {value}")
        return "\n".join(lines)
