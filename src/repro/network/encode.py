"""Encoding of flat BLIF-MV models into BDD relation conjuncts.

Every BLIF-MV relation (table) becomes a characteristic-function BDD over
the log-encoded multi-valued variables it mentions; every latch becomes
an equality conjunct tying the latch's next-state variable to its input
wire.  The conjunct list — *not* the monolithic product — is the output:
building the product transition relation with a good quantification
schedule is the job of :mod:`repro.network.quantify`.

Variable order is chosen up front with the interacting-FSM affinity
heuristic (:func:`repro.bdd.ordering.affinity_order`): variables that
appear in the same table are placed close together, and each latch's
present/next bits are interleaved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.bdd.manager import BDD
from repro.bdd.mdd import MddManager, MvVar
from repro.bdd.ordering import affinity_order, validate_permutation
from repro.blifmv.ast import Any_, BlifMvError, Eq, Model, Table, ValueSet
from repro.blifmv.hierarchy import Elaboration, InstanceInfo
from repro.network.quantify import Conjunct

NEXT_SUFFIX = "#n"


@dataclass
class LatchVars:
    """Symbolic variables of one latch: present state, next state, input wire."""

    name: str
    x: MvVar
    y: MvVar
    input_wire: str
    reset: Tuple[str, ...]


@dataclass
class EncodedNetwork:
    """A flat model encoded into BDD conjuncts.

    ``conjuncts`` together with existential quantification of every
    non-(x, y) variable defines the product transition relation
    ``T(x, y)`` of the c/s model.
    """

    model: Model
    mdd: MddManager
    latches: List[LatchVars]
    vars: Dict[str, MvVar]
    conjuncts: List[Conjunct]
    init: int
    order_method: str = "affinity"
    # Shared-shape encoding telemetry (set when encoding an Elaboration):
    # distinct (shape, aliasing) groups whose tables were actually
    # encoded, instances instantiated by variable substitution instead,
    # and per-instance conjunct index groups for symmetry-aware
    # quantification scheduling (None when the design has one instance).
    shapes_encoded: int = 0
    instances_substituted: int = 0
    conjunct_groups: Optional[List[List[int]]] = None

    @property
    def bdd(self) -> BDD:
        return self.mdd.bdd

    def x_vars(self) -> List[MvVar]:
        return [l.x for l in self.latches]

    def y_vars(self) -> List[MvVar]:
        return [l.y for l in self.latches]

    def nonstate_names(self) -> List[str]:
        state = {l.name for l in self.latches}
        state |= {l.name + NEXT_SUFFIX for l in self.latches}
        return [n for n in self.vars if n not in state]


def variable_order(model: Model) -> List[str]:
    """Affinity order of the model's variables (latch outputs anchor)."""
    groups: List[Set[str]] = [set(t.variables) for t in model.tables]
    groups += [{l.input, l.output} for l in model.latches]
    return affinity_order(groups, model.declared_variables())


def encode(
    model: Model,
    order_method: str = "affinity",
    auto_gc: Optional[int] = None,
    cache_limit: Optional[int] = None,
    auto_reorder: Optional[int] = None,
    order: Optional[List[str]] = None,
    elaboration: Optional[Elaboration] = None,
    stats=None,
    batch_apply: Optional[bool] = None,
) -> EncodedNetwork:
    """Encode a flat model (no subcircuits) into an :class:`EncodedNetwork`.

    ``order_method`` is ``"affinity"`` (interacting-FSM heuristic) or
    ``"declared"`` (first-use order; the naive baseline for the ordering
    ablation).  ``order`` overrides both with an explicit permutation of
    the model's declared variables (the ordering portfolio races such
    candidates; see :mod:`repro.ordering_portfolio`) — latch outputs in
    the order still get their present/next bits interleaved.  ``auto_gc``,
    ``cache_limit``, ``auto_reorder`` and ``batch_apply`` configure the
    kernel's self-management knobs (see :class:`repro.bdd.manager.BDD`;
    ``batch_apply`` routes table-row conjunct building and shared-shape
    instantiation through the frontier-batched apply engine).

    ``elaboration`` (from :func:`repro.blifmv.elaborate`) switches on
    shared-shape encoding: table conjuncts are built once per distinct
    subcircuit shape and every further instance is instantiated by
    variable substitution over the representative's BDDs (see
    docs/hierarchy.md).  ``model`` must then be ``elaboration.flat``.
    ``stats`` is an optional :class:`repro.stats.EngineStats` receiving
    ``shapes_encoded`` / ``instances_substituted`` counters and tracer
    instants.
    """
    if model.subckts:
        raise BlifMvError("encode() needs a flat model; call flatten() first")
    if elaboration is not None and elaboration.flat is not model:
        raise BlifMvError("encode(): model must be elaboration.flat")
    model.validate()
    if order is not None:
        problem = validate_permutation(order, model.declared_variables())
        if problem is not None:
            raise BlifMvError(f"explicit variable order rejected: {problem}")
        order = list(order)
        order_method = "explicit"
    elif order_method == "affinity":
        if elaboration is not None and len(elaboration.instances) > 1:
            order = shape_variable_order(elaboration)
            order_method = "shape"
        else:
            order = variable_order(model)
    elif order_method == "declared":
        order = model.declared_variables()
    else:
        raise ValueError(f"unknown order_method {order_method!r}")

    mdd = MddManager(
        BDD(
            auto_gc=auto_gc,
            cache_limit=cache_limit,
            auto_reorder=auto_reorder,
            batch_apply=batch_apply,
        )
    )
    latch_of_output = {l.output: l for l in model.latches}
    variables: Dict[str, MvVar] = {}
    latch_vars: Dict[str, LatchVars] = {}
    for name in order:
        domain = model.domain(name)
        latch = latch_of_output.get(name)
        if latch is not None:
            x, y = mdd.declare_pair(name, name + NEXT_SUFFIX, domain)
            variables[name] = x
            variables[name + NEXT_SUFFIX] = y
            latch_vars[name] = LatchVars(
                name=name,
                x=x,
                y=y,
                input_wire=latch.input,
                reset=tuple(latch.reset),
            )
        else:
            variables[name] = mdd.declare(name, domain)

    conjuncts: List[Conjunct] = []
    bdd = mdd.bdd
    shapes_encoded = 0
    instances_substituted = 0
    if elaboration is not None and len(elaboration.instances) > 1:
        nodes, shapes_encoded, instances_substituted = _encode_tables_shared(
            mdd, variables, model, elaboration, stats
        )
    else:
        nodes = [encode_table(mdd, variables, model, t) for t in model.tables]
        if elaboration is not None:
            shapes_encoded = len(elaboration.instances)
    for index, (table, node) in enumerate(zip(model.tables, nodes)):
        label = "{}:{}".format(",".join(table.outputs), index)
        conjuncts.append(
            Conjunct(node=node, support=frozenset(bdd.support(node)), label=label)
        )

    # Latch conjuncts: next-state variable equals the input wire.  Under
    # a synchrony tree (extended c/s, paper §4) a latch only copies its
    # input when selected; otherwise it holds its present value.  When a
    # latch feeds itself (constant latch) the wire *is* the present state.
    update_conditions = _synchrony_conditions(mdd, model, conjuncts)
    latch_conjunct_index: Dict[str, int] = {}
    for lv in latch_vars.values():
        wire = variables[lv.input_wire]
        if wire.values != lv.y.values:
            raise BlifMvError(
                f"latch {lv.name!r}: domain of input {lv.input_wire!r} "
                f"{wire.values} differs from state domain {lv.y.values}"
            )
        move = lv.y.eq_var(wire)
        condition = update_conditions.get(lv.name)
        if condition is None:
            node = move
        else:
            hold = lv.y.eq_var(lv.x)
            node = bdd.ite(condition, move, hold)
        latch_conjunct_index[lv.name] = len(conjuncts)
        conjuncts.append(
            Conjunct(
                node=node,
                support=frozenset(bdd.support(node)),
                label=f"latch:{lv.name}",
            )
        )

    # Primary inputs of a non-closed model range freely over their domain;
    # their domain constraint must participate in quantification.
    for name in model.inputs:
        var = variables[name]
        if var.domain_constraint != bdd.true:
            conjuncts.append(
                Conjunct(
                    node=var.domain_constraint,
                    support=frozenset(bdd.support(var.domain_constraint)),
                    label=f"domain:{name}",
                )
            )

    init = bdd.true
    for lv in latch_vars.values():
        allowed = lv.reset if lv.reset else lv.x.values
        init = bdd.and_(init, lv.x.literal(allowed))

    conjunct_groups: Optional[List[List[int]]] = None
    if elaboration is not None and len(elaboration.instances) > 1:
        conjunct_groups = []
        for inst in elaboration.instances:
            group = list(range(inst.tables[0], inst.tables[1]))
            for latch in model.latches[inst.latches[0]:inst.latches[1]]:
                index = latch_conjunct_index.get(latch.output)
                if index is not None:
                    group.append(index)
            if group:
                conjunct_groups.append(group)
        if stats is not None:
            stats.bump("shapes_encoded", shapes_encoded)
            stats.bump("instances_substituted", instances_substituted)
            stats.tracer.instant(
                "encode.shared_shapes",
                cat="encode",
                instances=len(elaboration.instances),
                shapes_encoded=shapes_encoded,
                instances_substituted=instances_substituted,
            )

    return EncodedNetwork(
        model=model,
        mdd=mdd,
        latches=list(latch_vars.values()),
        vars=variables,
        conjuncts=conjuncts,
        init=init,
        order_method=order_method,
        shapes_encoded=shapes_encoded,
        instances_substituted=instances_substituted,
        conjunct_groups=conjunct_groups,
    )


def shape_variable_order(elaboration: Elaboration) -> List[str]:
    """Instance-contiguous affinity order for a shape-aware encode.

    Each shape gets one canonical internal layout (affinity order over
    the representative's own tables and latches, expressed in canonical
    positions); every instance then lays out its copy through its own
    rename map, in hierarchy pre-order.  Instances of one shape thus get
    identical internal bit layouts, which keeps the per-instance
    substitution maps order-preserving (the fast :meth:`BDD.rename`
    path) and clusters each instance's variables for the grouped
    quantification schedules.
    """
    flat = elaboration.flat
    order: List[str] = []
    seen: Set[str] = set()
    layouts: Dict[str, List[int]] = {}
    for inst in elaboration.instances:
        layout = layouts.get(inst.shape)
        if layout is None:
            pos = {name: i for i, name in enumerate(inst.canon)}
            local = {flat_name: pos[name] for name, flat_name in inst.rename.items()}
            groups: List[Set[int]] = []
            for table in flat.tables[inst.tables[0]:inst.tables[1]]:
                groups.append({local[v] for v in table.variables if v in local})
            for latch in flat.latches[inst.latches[0]:inst.latches[1]]:
                groups.append(
                    {p for p in (local.get(latch.input), local.get(latch.output))
                     if p is not None}
                )
            layout = affinity_order(groups, list(range(len(inst.canon))))
            layouts[inst.shape] = layout
        for position in layout:
            name = inst.rename[inst.canon[position]]
            if name not in seen:
                seen.add(name)
                order.append(name)
    for name in flat.declared_variables():
        if name not in seen:
            seen.add(name)
            order.append(name)
    return order


def _alias_pattern(inst: InstanceInfo) -> Tuple[int, ...]:
    """Canonical intra-instance aliasing of flat nets.

    Two canonical positions share a flat net when the parent ties two
    ports to one actual.  A representative whose ports are aliased has
    already identified the corresponding BDD variables, so it can only
    stand in for instances aliased the same way — the alias pattern is
    therefore part of the substitution group key.
    """
    first: Dict[str, int] = {}
    return tuple(
        first.setdefault(inst.rename[name], i) for i, name in enumerate(inst.canon)
    )


def _encode_tables_shared(
    mdd: MddManager,
    variables: Dict[str, MvVar],
    model: Model,
    elaboration: Elaboration,
    stats,
) -> Tuple[List[int], int, int]:
    """Encode flat tables once per shape; substitute for other instances.

    Returns ``(nodes, shapes_encoded, instances_substituted)`` where
    ``nodes[i]`` is the BDD of ``model.tables[i]``.  The first instance
    of each (shape digest, alias pattern) group is the representative:
    its tables run through :func:`encode_table`.  Every later instance
    builds one bit-level substitution map from the canonical-position
    bijection and instantiates each representative conjunct with
    :meth:`BDD.rename` (order-preserving fast path under the shape
    variable order, ``vector_compose`` fallback otherwise).  All
    conjuncts of one instance share the same map, so the kernel's
    computed cache acts as the shared per-shape sub-BDD cache.
    """
    bdd = mdd.bdd
    nodes: List[Optional[int]] = [None] * len(model.tables)
    representatives: Dict[Tuple[str, Tuple[int, ...]], InstanceInfo] = {}
    shapes_encoded = 0
    instances_substituted = 0
    for inst in elaboration.instances:
        lo, hi = inst.tables
        key = (inst.shape, _alias_pattern(inst))
        rep = representatives.get(key)
        if rep is None:
            representatives[key] = inst
            for index in range(lo, hi):
                nodes[index] = encode_table(mdd, variables, model, model.tables[index])
            shapes_encoded += 1
            if stats is not None:
                stats.tracer.instant(
                    "hierarchy.shape_encoded",
                    cat="encode",
                    model=inst.model,
                    shape=inst.shape[:12],
                    tables=hi - lo,
                )
            continue
        mapping: Dict[int, int] = {}
        for rep_name, inst_name in zip(rep.canon, inst.canon):
            rep_flat = rep.rename[rep_name]
            inst_flat = inst.rename[inst_name]
            if rep_flat == inst_flat:
                continue
            rep_var = variables.get(rep_flat)
            inst_var = variables.get(inst_flat)
            if rep_var is None or inst_var is None:
                continue
            for rep_bit, inst_bit in zip(rep_var.bits, inst_var.bits):
                mapping[rep_bit] = inst_bit
        # One n-ary batched rename per instance: every conjunct of the
        # representative replays through a single shared frontier (the
        # PR 9 follow-up's shape-aware fast path).
        nodes[lo:hi] = bdd.rename_many(
            [nodes[ri] for ri in range(rep.tables[0], rep.tables[1])],
            mapping,
            strict=False,
        )
        instances_substituted += 1
        if stats is not None:
            stats.tracer.instant(
                "hierarchy.instance_substituted",
                cat="encode",
                instance=inst.path,
                model=inst.model,
                shape=inst.shape[:12],
                tables=hi - lo,
            )
    return [n for n in nodes], shapes_encoded, instances_substituted


def _synchrony_conditions(
    mdd: MddManager, model: Model, conjuncts: List[Conjunct]
) -> Dict[str, int]:
    """Per-latch update conditions from the model's synchrony tree.

    Every asynchronous (A) node gets a fresh non-deterministic selector
    variable choosing one branch; a latch updates when every A-ancestor
    selects its branch.  Selector domain constraints join the conjunct
    pool (they are non-state variables, quantified out with the rest).
    Returns an empty mapping for fully synchronous models.
    """
    if model.synchrony is None:
        return {}
    from repro.blifmv.synchrony import SyncLeaf, SyncNode, validate_tree

    validate_tree(model.synchrony, {latch.output for latch in model.latches})
    bdd = mdd.bdd
    conditions: Dict[str, int] = {}
    counter = [0]

    def walk(tree, condition: int) -> None:
        if isinstance(tree, SyncLeaf):
            previous = conditions.get(tree.latch, bdd.false)
            conditions[tree.latch] = bdd.or_(previous, condition)
            return
        assert isinstance(tree, SyncNode)
        if tree.label == "S" or len(tree.children) == 1:
            for child in tree.children:
                walk(child, condition)
            return
        selector = mdd.declare(
            f"#sel{counter[0]}", [str(i) for i in range(len(tree.children))]
        )
        counter[0] += 1
        if selector.domain_constraint != bdd.true:
            conjuncts.append(
                Conjunct(
                    node=selector.domain_constraint,
                    support=frozenset(bdd.support(selector.domain_constraint)),
                    label=f"domain:{selector.name}",
                )
            )
        for index, child in enumerate(tree.children):
            walk(child, bdd.and_(condition, selector.literal(str(index))))

    walk(model.synchrony, bdd.true)
    return conditions


def _reduce_each(bdd: BDD, op: str, lists: List[List[int]]) -> List[int]:
    """Tree-reduce every operand list to one handle, batching across lists.

    Each round pairs adjacent operands within every list and issues all
    pairs as one :meth:`BDD.apply_many` frontier, so N rows reduce in
    ``ceil(log2(width))`` batched calls instead of ``N * width`` scalar
    ones.  Empty lists reduce to the operator identity.
    """
    identity = bdd.true if op == "and" else bdd.false
    pending = [list(l) for l in lists]
    while True:
        pairs: List[Tuple[int, int]] = []
        slots: List[Tuple[int, int]] = []
        nxt: List[List[int]] = []
        for i, l in enumerate(pending):
            nl: List[int] = []
            j = 0
            while j + 1 < len(l):
                slots.append((i, len(nl)))
                pairs.append((l[j], l[j + 1]))
                nl.append(-1)
                j += 2
            if j < len(l):
                nl.append(l[j])
            nxt.append(nl)
        if not pairs:
            return [l[0] if l else identity for l in pending]
        for (i, p), r in zip(slots, bdd.apply_many(op, pairs)):
            nxt[i][p] = r
        pending = nxt


def encode_table(
    mdd: MddManager, variables: Dict[str, MvVar], model: Model, table: Table
) -> int:
    """Characteristic function of one (possibly non-deterministic) table.

    Row conjuncts build as balanced tree reductions batched *across*
    rows (see :func:`_reduce_each`): all rows' input literals AND
    together in shared frontiers, then all row relations OR together.
    The reduction shape is the same whether the kernel executes it
    batched or scalar, so ``batch_apply`` never changes the handles.
    """
    bdd = mdd.bdd
    in_lists = [
        [_entry_bdd(variables, name, entry, table)
         for entry, name in zip(row.inputs, table.inputs)]
        for row in table.rows
    ]
    out_lists = [
        [_entry_bdd(variables, name, entry, table)
         for entry, name in zip(row.outputs, table.outputs)]
        for row in table.rows
    ]
    if table.rows:
        in_parts = _reduce_each(bdd, "and", in_lists)
        out_parts = _reduce_each(bdd, "and", out_lists)
        row_nodes = bdd.apply_many("and", list(zip(in_parts, out_parts)))
        rows, input_cover = _reduce_each(bdd, "or", [row_nodes, in_parts])
    else:
        rows = bdd.false
        input_cover = bdd.false
    if table.default is not None:
        default_part = bdd.true
        for entry, name in zip(table.default, table.outputs):
            default_part = bdd.and_(default_part, _entry_bdd(variables, name, entry, table))
        rows = bdd.or_(rows, bdd.and_(bdd.not_(input_cover), default_part))
    # Valid encodings only, on every column.
    for name in table.variables:
        rows = bdd.and_(rows, variables[name].domain_constraint)
    return rows


def _entry_bdd(
    variables: Dict[str, MvVar], name: str, entry, table: Table
) -> int:
    var = variables[name]
    if isinstance(entry, Any_):
        return var.bdd.true
    if isinstance(entry, Eq):
        return var.eq_var(variables[entry.name])
    if isinstance(entry, ValueSet):
        return var.literal(entry.values)
    return var.literal(entry)


def is_deterministic_table(
    mdd: MddManager, variables: Dict[str, MvVar], model: Model, table: Table
) -> bool:
    """True iff the table defines at most one output pattern per input.

    A BLIF-MV description with only deterministic tables is synthesizable
    hardware (paper §4).
    """
    bdd = mdd.bdd
    relation = encode_table(mdd, variables, model, table)
    in_bits: List[int] = []
    for name in table.inputs:
        in_bits.extend(variables[name].bits)
    out_vars = [variables[name] for name in table.outputs]
    out_bits = [b for v in out_vars for b in v.bits]
    care_in = [b for b in in_bits]
    # For each input pattern the number of allowed outputs must be <= 1:
    # count pairs and count patterns with at least one output.
    pairs = bdd.sat_count(relation, care_in + out_bits)
    some_output = bdd.exist(out_bits, relation)
    patterns = bdd.sat_count(some_output, care_in)
    return pairs == patterns
