"""Model-level product: splice a monitor model onto a system model.

In the HSIS flow, property automata transition structures are themselves
written in Verilog/BLIF-MV (paper §7) and observe the system through
shared net names.  ``compose`` merges a monitor model into a system model
the same way: monitor inputs bind to the system nets of the same name,
and the monitor's internals are prefixed to avoid capture.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.blifmv.ast import BlifMvError, Model


def compose(system: Model, monitor: Model, prefix: Optional[str] = None) -> Model:
    """Product of ``system`` and ``monitor`` (both flat) as one flat model.

    Every input of ``monitor`` must be a net of ``system``; outputs and
    internals of the monitor are renamed ``<prefix>.<name>``.  The result
    is a closed model suitable for :class:`repro.network.fsm.SymbolicFsm`.
    """
    if system.subckts or monitor.subckts:
        raise BlifMvError("compose() needs flat models; call flatten() first")
    prefix = prefix if prefix is not None else monitor.name
    system_nets = set(system.declared_variables())
    missing = [i for i in monitor.inputs if i not in system_nets]
    if missing:
        raise BlifMvError(
            f"monitor {monitor.name!r} observes nets absent from the system: "
            f"{missing}"
        )
    # The monitor watches system nets by name (including system-internal
    # nets, which are not ports), so the product is built by inlining the
    # system unrenamed and the monitor with prefixed internals.
    merged = Model(name=f"{system.name}*{monitor.name}")
    merged.inputs = list(system.inputs)
    merged.outputs = list(system.outputs)
    _merge_into(merged, system, rename={})
    monitor_rename = {
        name: f"{prefix}.{name}"
        for name in monitor.declared_variables()
        if name not in monitor.inputs
    }
    _merge_into(merged, monitor, rename=monitor_rename)
    merged.validate()
    return merged


def _merge_into(target: Model, source: Model, rename: Dict[str, str]) -> None:
    from repro.blifmv.ast import Eq, Latch, Row, Table

    def r(name: str) -> str:
        return rename.get(name, name)

    def r_entry(entry):
        if isinstance(entry, Eq):
            return Eq(r(entry.name))
        return entry

    for var, domain in source.domains.items():
        new = r(var)
        existing = target.domains.get(new)
        if existing is not None and existing != domain:
            raise BlifMvError(f"conflicting domains for {new!r}")
        target.domains[new] = domain
    for table in source.tables:
        target.tables.append(
            Table(
                inputs=[r(v) for v in table.inputs],
                outputs=[r(v) for v in table.outputs],
                rows=[
                    Row(
                        inputs=tuple(r_entry(e) for e in row.inputs),
                        outputs=tuple(r_entry(e) for e in row.outputs),
                    )
                    for row in table.rows
                ],
                default=None
                if table.default is None
                else tuple(r_entry(e) for e in table.default),
            )
        )
    for latch in source.latches:
        target.latches.append(
            Latch(input=r(latch.input), output=r(latch.output), reset=list(latch.reset))
        )
