"""Symbolic FSM: transition relation, image computation, reachability.

This is the engine the property checkers run on.  A :class:`SymbolicFsm`
wraps an :class:`~repro.network.encode.EncodedNetwork` and provides:

* product transition-relation construction ``T(x, y)`` with a selectable
  early-quantification schedule (paper §4),
* forward/backward image with the present/next rename maps,
* a *partitioned* image that never builds the monolithic ``T`` (paper
  §8 future-work item 4, implemented),
* breadth-first reachability that records the frontier "onion rings"
  needed by the debuggers to extract shortest error-trace prefixes,
* state counting and enumeration in terms of the original multi-valued
  latch values.

Monitors (property automata) may be attached *before* the transition
relation is built; their state variables then become part of the product
machine (paper §5.2's language-containment product).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bdd.manager import BDD, BddError
from repro.bdd.mdd import MddManager, MvVar
from repro.blifmv.ast import Model
from repro.blifmv.hierarchy import Elaboration
from repro.network.encode import NEXT_SUFFIX, EncodedNetwork, LatchVars, encode
from repro.network.quantify import (
    Conjunct,
    ImageSchedule,
    QuantifyResult,
    execute_schedule,
    multiply_and_quantify,
    plan_schedule,
)
from repro.perf import EngineStats
from repro.trace.tracer import Tracer

GC_NODE_THRESHOLD = 2_000_000


@dataclass
class ReachResult:
    """Reachable state set plus the BFS onion rings and run statistics."""

    reached: int
    rings: List[int]
    iterations: int
    converged: bool
    seconds: float


class SymbolicFsm:
    """The product machine of a flat BLIF-MV model (plus attached monitors)."""

    def __init__(
        self,
        model: "Model | Elaboration",
        order_method: str = "affinity",
        auto_gc: Optional[int] = None,
        cache_limit: Optional[int] = None,
        auto_reorder: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        order: Optional[List[str]] = None,
        batch_apply: Optional[bool] = None,
    ):
        self.stats = EngineStats()
        if tracer is not None:
            self.stats.tracer = tracer
        # An Elaboration (repro.blifmv.elaborate) switches on shared-shape
        # encoding: each distinct subcircuit shape is table-encoded once
        # and other instances are instantiated by variable substitution.
        elaboration = model if isinstance(model, Elaboration) else None
        if elaboration is not None:
            model = elaboration.flat
        with self.stats.phase("encode"):
            self.network: EncodedNetwork = encode(
                model,
                order_method=order_method,
                auto_gc=auto_gc,
                cache_limit=cache_limit,
                auto_reorder=auto_reorder,
                order=order,
                elaboration=elaboration,
                stats=self.stats,
                batch_apply=batch_apply,
            )
        self.mdd: MddManager = self.network.mdd
        self.bdd: BDD = self.mdd.bdd
        self.stats.bdd = self.bdd
        self.bdd.tracer = self.stats.tracer
        self.latches: List[LatchVars] = list(self.network.latches)
        self.conjuncts: List[Conjunct] = list(self.network.conjuncts)
        self.init: int = self.network.init
        self.trans: Optional[int] = None
        self.quantify_result: Optional[QuantifyResult] = None
        self._frozen = False
        # Partitioned-image schedule, planned once and replayed every
        # iteration; invalidated whenever the conjunct pool changes.
        self._part_plan: Optional[ImageSchedule] = None
        # Watermark gating full GC sweeps inside reachable(); see there.
        self._hard_gc_rearm = 0
        # Everything the FSM holds long-term must be a GC root so auto-GC
        # at engine safe points can never sweep it.
        self.bdd.register_root("fsm.init", self.init)
        self._register_conjunct_roots()

    def _register_conjunct_roots(self) -> None:
        self.bdd.register_root_group(
            "fsm.conjunct", (c.node for c in self.conjuncts)
        )

    # ------------------------------------------------------------------
    # Variable bookkeeping
    # ------------------------------------------------------------------

    @property
    def model(self) -> Model:
        return self.network.model

    def var(self, name: str) -> MvVar:
        """Look up any encoded variable (state, next-state or wire)."""
        return self.mdd[name]

    def x_vars(self) -> List[MvVar]:
        return [l.x for l in self.latches]

    def y_vars(self) -> List[MvVar]:
        return [l.y for l in self.latches]

    def x_bits(self) -> List[int]:
        return [b for l in self.latches for b in l.x.bits]

    def y_bits(self) -> List[int]:
        return [b for l in self.latches for b in l.y.bits]

    def x_cube(self) -> int:
        return self.bdd.cube(self.x_bits())

    def y_cube(self) -> int:
        return self.bdd.cube(self.y_bits())

    def x_to_y(self) -> Dict[int, int]:
        return self.mdd.rename_map((l.x, l.y) for l in self.latches)

    def y_to_x(self) -> Dict[int, int]:
        return self.mdd.rename_map((l.y, l.x) for l in self.latches)

    def state_domain(self) -> int:
        """Conjunction of present-state domain constraints (valid codes)."""
        return self.mdd.domain_constraint(l.x for l in self.latches)

    # ------------------------------------------------------------------
    # Monitor attachment (product machine construction, paper §5.2)
    # ------------------------------------------------------------------

    def add_state_var(
        self, name: str, values: Sequence[str], initial: Iterable[str]
    ) -> Tuple[MvVar, MvVar]:
        """Declare an extra latch pair (used by property monitors).

        Must be called before :meth:`build_transition`.  Returns the
        present/next :class:`MvVar` pair.  The initial-state set is
        conjoined into ``init``.
        """
        if self._frozen:
            raise BddError("cannot add state variables after build_transition()")
        x, y = self.mdd.declare_pair(name, name + NEXT_SUFFIX, values)
        self.latches.append(
            LatchVars(name=name, x=x, y=y, input_wire=name + NEXT_SUFFIX,
                      reset=tuple(initial))
        )
        self.init = self.bdd.and_(self.init, x.literal(list(initial)))
        self.bdd.register_root("fsm.init", self.init)
        self._part_plan = None
        return x, y

    def add_conjunct(self, node: int, label: str) -> None:
        """Add a transition-relation conjunct (monitor transition table)."""
        if self._frozen:
            raise BddError("cannot add conjuncts after build_transition()")
        self.conjuncts.append(
            Conjunct(node=node, support=frozenset(self.bdd.support(node)), label=label)
        )
        self._register_conjunct_roots()
        self._part_plan = None

    # ------------------------------------------------------------------
    # Transition relation
    # ------------------------------------------------------------------

    def nonstate_bits(self) -> Set[int]:
        keep = set(self.x_bits()) | set(self.y_bits())
        quantify: Set[int] = set()
        for c in self.conjuncts:
            quantify |= set(c.support)
        return quantify - keep

    def build_transition(self, method: str = "greedy") -> int:
        """Build the product transition relation ``T(x, y)``.

        All non-state variables are existentially quantified using the
        chosen early-quantification schedule.  Idempotent: rebuilding
        with a different method replaces the stored relation.
        """
        with self.stats.phase("build_tr"):
            result = multiply_and_quantify(
                self.bdd, self.conjuncts, self.nonstate_bits(), method=method,
                groups=self.network.conjunct_groups,
            )
        self.trans = result.node
        self.quantify_result = result
        self._frozen = True
        self.bdd.register_root("fsm.trans", self.trans)
        self.bdd.register_root("fsm.init", self.init)
        return self.trans

    def require_transition(self) -> int:
        if self.trans is None:
            self.build_transition()
        assert self.trans is not None
        return self.trans

    # ------------------------------------------------------------------
    # Images
    # ------------------------------------------------------------------

    def image(self, states: int, trans: Optional[int] = None) -> int:
        """Forward image: states reachable from ``states`` in one step."""
        t = self.require_transition() if trans is None else trans
        nxt = self.bdd.and_exists(t, states, self.x_cube())
        return self.bdd.rename(nxt, self.y_to_x(), strict=False)

    def preimage(self, states: int, trans: Optional[int] = None) -> int:
        """Backward image: states with a successor in ``states``."""
        t = self.require_transition() if trans is None else trans
        primed = self.bdd.rename(states, self.x_to_y(), strict=False)
        return self.bdd.and_exists(t, primed, self.y_cube())

    def partition_schedule(self) -> ImageSchedule:
        """The (cached) greedy schedule for partitioned images.

        The pool, the quantify set and the elimination order depend only
        on the conjunct supports — not on the frontier's value — so the
        schedule is planned once and replayed every BFS iteration.  The
        frontier slot is planned with the conservative support
        ``x_bits`` (a superset of any concrete frontier's support, which
        keeps early quantification sound).  The cache is invalidated by
        :meth:`add_conjunct` / :meth:`add_state_var`.
        """
        if self._part_plan is None:
            keep = set(self.y_bits())
            quantify = set()
            for c in self.conjuncts:
                quantify |= set(c.support)
            quantify |= set(self.x_bits())
            quantify -= keep
            supports = [c.support for c in self.conjuncts]
            supports.append(frozenset(self.x_bits()))
            # Instance conjunct groups (shared-shape encode) cluster each
            # instance's private wires inside the instance first; monitor
            # conjuncts and the frontier slot are appended after the
            # network's conjuncts, so the recorded indices stay valid.
            self._part_plan = plan_schedule(
                supports, quantify, groups=self.network.conjunct_groups
            )
            self.stats.bump("partitioned_plans_built")
            if self.stats.tracer.enabled:
                self.stats.tracer.instant(
                    "fsm.partition_plan", cat="fsm",
                    conjuncts=len(self.conjuncts),
                    steps=len(self._part_plan.steps),
                )
        return self._part_plan

    def image_partitioned(self, states: int) -> int:
        """Forward image straight from the conjunct list (no monolithic T).

        Implements the paper's future-work item 4 (partitioned transition
        relations): the reached-state set is computed without ever forming
        the product machine.  The multiply/quantify schedule is planned
        once (:meth:`partition_schedule`) and only the frontier conjunct
        changes between calls.
        """
        plan = self.partition_schedule()
        nodes = [c.node for c in self.conjuncts]
        nodes.append(states)
        result = execute_schedule(self.bdd, nodes, plan)
        self.stats.bump("partitioned_images")
        if self.stats.tracer.enabled:
            self.stats.tracer.instant(
                "fsm.image_partitioned", cat="fsm",
                plan_steps=len(plan.steps),
                peak_size=result.peak_size,
            )
        return self.bdd.rename(result.node, self.y_to_x(), strict=False)

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable(
        self,
        init: Optional[int] = None,
        max_iterations: Optional[int] = None,
        partitioned: bool = False,
        observer: Optional[Callable[[int, int], None]] = None,
    ) -> ReachResult:
        """Breadth-first reachable states from ``init`` (default: reset states).

        ``rings[k]`` holds exactly the states first reached at depth ``k``
        (the BFS onion rings) — the debuggers walk these backwards to
        produce shortest counterexample prefixes.  ``observer(depth,
        frontier)`` is called once per iteration (used by early failure
        detection).  ``max_iterations`` bounds the search; ``converged``
        tells whether a fixpoint was reached.
        """
        bdd = self.bdd
        tracer = self.stats.tracer
        if not partitioned:
            self.require_transition()
        self._hard_gc_rearm = 0
        with self.stats.phase("reach") as timer:
            current = self.init if init is None else init
            reached = current
            rings = [current]
            # The image computations below run their own GC/reorder safe
            # points that only know about registered roots and the
            # quantification-local pool — the onion rings must be durable
            # roots, not just extra_roots at this loop's own safe point.
            # (frontier is always rings[-1] and current is rings[0] when
            # image() runs, so the group covers every handle the loop
            # holds besides reached, which is registered separately.)
            bdd.register_root_group("fsm.rings", rings)
            iterations = 0
            converged = False
            frontier = current
            while frontier != bdd.false:
                if max_iterations is not None and iterations >= max_iterations:
                    break
                if observer is not None:
                    observer(iterations, frontier)
                step = (
                    self.image_partitioned(frontier)
                    if partitioned
                    else self.image(frontier)
                )
                frontier = bdd.diff(step, reached)
                iterations += 1
                if frontier == bdd.false:
                    converged = True
                    break
                reached = bdd.or_(reached, frontier)
                rings.append(frontier)
                bdd.register_root_group("fsm.rings", rings)
                bdd.register_root("fsm.reached", reached)
                if tracer.enabled:
                    tracer.instant(
                        "reach.ring", cat="reach",
                        depth=iterations,
                        frontier_nodes=bdd.size(frontier),
                        reached_nodes=bdd.size(reached),
                        frontier_states=self.count_states(frontier),
                        reached_states=self.count_states(reached),
                    )
                # Safe point: every live node the loop holds is either a
                # registered root or in extra_roots below.
                if len(bdd) > GC_NODE_THRESHOLD and len(bdd) >= self._hard_gc_rearm:
                    freed = bdd.gc(extra_roots=rings + [frontier, current])
                    after = len(bdd)
                    # A live set permanently above the threshold used to
                    # trigger a full sweep on *every* iteration even when
                    # the previous sweep freed almost nothing.  Re-arm
                    # only once the table has regrown past the survivors
                    # by half, so sweeps track actual garbage build-up.
                    self._hard_gc_rearm = max(
                        GC_NODE_THRESHOLD + 1, after + after // 2
                    )
                    self.stats.bump("reach_hard_gc")
                    self.stats.bump("reach_hard_gc_freed", freed)
                    if tracer.enabled:
                        tracer.instant(
                            "reach.hard_gc", cat="reach",
                            depth=iterations, freed=freed, live=after,
                        )
                else:
                    freed = bdd.maybe_gc(
                        extra_roots=rings + [frontier, current]
                    )
                    if freed:
                        self.stats.bump("auto_gc_freed", freed)
        return ReachResult(
            reached=reached,
            rings=rings,
            iterations=iterations,
            converged=converged,
            seconds=timer.seconds,
        )

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    def count_states(self, states: int) -> int:
        """Number of distinct states in ``states`` (valid encodings only)."""
        constrained = self.bdd.and_(states, self.state_domain())
        return self.bdd.sat_count(constrained, self.x_bits())

    def decode_state(self, assignment: Dict[int, bool]) -> Dict[str, str]:
        """Boolean assignment -> latch-name to value mapping."""
        return {l.name: l.x.decode(assignment) for l in self.latches}

    def states_iter(self, states: int, limit: Optional[int] = None) -> Iterator[Dict[str, str]]:
        """Enumerate states as latch-value dictionaries (up to ``limit``)."""
        constrained = self.bdd.and_(states, self.state_domain())
        for i, assignment in enumerate(self.bdd.sat_iter(constrained, self.x_bits())):
            if limit is not None and i >= limit:
                return
            yield self.decode_state(assignment)

    def state_cube(self, valuation: Dict[str, str]) -> int:
        """BDD of the single state (or partial state set) ``valuation``."""
        f = self.bdd.true
        for name, value in valuation.items():
            f = self.bdd.and_(f, self.mdd[name].literal(value))
        return f

    def pick_state(self, states: int) -> Optional[Dict[str, str]]:
        """One concrete state out of ``states`` (None if empty)."""
        constrained = self.bdd.and_(states, self.state_domain())
        cube = self.bdd.pick_cube(constrained, self.x_bits())
        if cube is None:
            return None
        return self.decode_state(cube)
