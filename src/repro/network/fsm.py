"""Symbolic FSM: transition relation, image computation, reachability.

This is the engine the property checkers run on.  A :class:`SymbolicFsm`
wraps an :class:`~repro.network.encode.EncodedNetwork` and provides:

* product transition-relation construction ``T(x, y)`` with a selectable
  early-quantification schedule (paper §4),
* forward/backward image with the present/next rename maps,
* a *partitioned* image that never builds the monolithic ``T`` (paper
  §8 future-work item 4, implemented),
* breadth-first reachability that records the frontier "onion rings"
  needed by the debuggers to extract shortest error-trace prefixes,
* state counting and enumeration in terms of the original multi-valued
  latch values.

Monitors (property automata) may be attached *before* the transition
relation is built; their state variables then become part of the product
machine (paper §5.2's language-containment product).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bdd.manager import BDD, BddError
from repro.bdd.mdd import MddManager, MvVar
from repro.blifmv.ast import Model
from repro.network.encode import NEXT_SUFFIX, EncodedNetwork, LatchVars, encode
from repro.network.quantify import Conjunct, QuantifyResult, multiply_and_quantify
from repro.perf import EngineStats

GC_NODE_THRESHOLD = 2_000_000


@dataclass
class ReachResult:
    """Reachable state set plus the BFS onion rings and run statistics."""

    reached: int
    rings: List[int]
    iterations: int
    converged: bool
    seconds: float


class SymbolicFsm:
    """The product machine of a flat BLIF-MV model (plus attached monitors)."""

    def __init__(
        self,
        model: Model,
        order_method: str = "affinity",
        auto_gc: Optional[int] = None,
        cache_limit: Optional[int] = None,
    ):
        self.stats = EngineStats()
        with self.stats.phase("encode"):
            self.network: EncodedNetwork = encode(
                model,
                order_method=order_method,
                auto_gc=auto_gc,
                cache_limit=cache_limit,
            )
        self.mdd: MddManager = self.network.mdd
        self.bdd: BDD = self.mdd.bdd
        self.stats.bdd = self.bdd
        self.latches: List[LatchVars] = list(self.network.latches)
        self.conjuncts: List[Conjunct] = list(self.network.conjuncts)
        self.init: int = self.network.init
        self.trans: Optional[int] = None
        self.quantify_result: Optional[QuantifyResult] = None
        self._frozen = False
        # Everything the FSM holds long-term must be a GC root so auto-GC
        # at engine safe points can never sweep it.
        self.bdd.register_root("fsm.init", self.init)
        self._register_conjunct_roots()

    def _register_conjunct_roots(self) -> None:
        self.bdd.register_root_group(
            "fsm.conjunct", (c.node for c in self.conjuncts)
        )

    # ------------------------------------------------------------------
    # Variable bookkeeping
    # ------------------------------------------------------------------

    @property
    def model(self) -> Model:
        return self.network.model

    def var(self, name: str) -> MvVar:
        """Look up any encoded variable (state, next-state or wire)."""
        return self.mdd[name]

    def x_vars(self) -> List[MvVar]:
        return [l.x for l in self.latches]

    def y_vars(self) -> List[MvVar]:
        return [l.y for l in self.latches]

    def x_bits(self) -> List[int]:
        return [b for l in self.latches for b in l.x.bits]

    def y_bits(self) -> List[int]:
        return [b for l in self.latches for b in l.y.bits]

    def x_cube(self) -> int:
        return self.bdd.cube(self.x_bits())

    def y_cube(self) -> int:
        return self.bdd.cube(self.y_bits())

    def x_to_y(self) -> Dict[int, int]:
        return self.mdd.rename_map((l.x, l.y) for l in self.latches)

    def y_to_x(self) -> Dict[int, int]:
        return self.mdd.rename_map((l.y, l.x) for l in self.latches)

    def state_domain(self) -> int:
        """Conjunction of present-state domain constraints (valid codes)."""
        return self.mdd.domain_constraint(l.x for l in self.latches)

    # ------------------------------------------------------------------
    # Monitor attachment (product machine construction, paper §5.2)
    # ------------------------------------------------------------------

    def add_state_var(
        self, name: str, values: Sequence[str], initial: Iterable[str]
    ) -> Tuple[MvVar, MvVar]:
        """Declare an extra latch pair (used by property monitors).

        Must be called before :meth:`build_transition`.  Returns the
        present/next :class:`MvVar` pair.  The initial-state set is
        conjoined into ``init``.
        """
        if self._frozen:
            raise BddError("cannot add state variables after build_transition()")
        x, y = self.mdd.declare_pair(name, name + NEXT_SUFFIX, values)
        self.latches.append(
            LatchVars(name=name, x=x, y=y, input_wire=name + NEXT_SUFFIX,
                      reset=tuple(initial))
        )
        self.init = self.bdd.and_(self.init, x.literal(list(initial)))
        self.bdd.register_root("fsm.init", self.init)
        return x, y

    def add_conjunct(self, node: int, label: str) -> None:
        """Add a transition-relation conjunct (monitor transition table)."""
        if self._frozen:
            raise BddError("cannot add conjuncts after build_transition()")
        self.conjuncts.append(
            Conjunct(node=node, support=frozenset(self.bdd.support(node)), label=label)
        )
        self._register_conjunct_roots()

    # ------------------------------------------------------------------
    # Transition relation
    # ------------------------------------------------------------------

    def nonstate_bits(self) -> Set[int]:
        keep = set(self.x_bits()) | set(self.y_bits())
        quantify: Set[int] = set()
        for c in self.conjuncts:
            quantify |= set(c.support)
        return quantify - keep

    def build_transition(self, method: str = "greedy") -> int:
        """Build the product transition relation ``T(x, y)``.

        All non-state variables are existentially quantified using the
        chosen early-quantification schedule.  Idempotent: rebuilding
        with a different method replaces the stored relation.
        """
        with self.stats.phase("build_tr"):
            result = multiply_and_quantify(
                self.bdd, self.conjuncts, self.nonstate_bits(), method=method
            )
        self.trans = result.node
        self.quantify_result = result
        self._frozen = True
        self.bdd.register_root("fsm.trans", self.trans)
        self.bdd.register_root("fsm.init", self.init)
        return self.trans

    def require_transition(self) -> int:
        if self.trans is None:
            self.build_transition()
        assert self.trans is not None
        return self.trans

    # ------------------------------------------------------------------
    # Images
    # ------------------------------------------------------------------

    def image(self, states: int, trans: Optional[int] = None) -> int:
        """Forward image: states reachable from ``states`` in one step."""
        t = self.require_transition() if trans is None else trans
        nxt = self.bdd.and_exists(t, states, self.x_cube())
        return self.bdd.rename(nxt, self.y_to_x())

    def preimage(self, states: int, trans: Optional[int] = None) -> int:
        """Backward image: states with a successor in ``states``."""
        t = self.require_transition() if trans is None else trans
        primed = self.bdd.rename(states, self.x_to_y())
        return self.bdd.and_exists(t, primed, self.y_cube())

    def image_partitioned(self, states: int) -> int:
        """Forward image straight from the conjunct list (no monolithic T).

        Implements the paper's future-work item 4 (partitioned transition
        relations): the reached-state set is computed without ever forming
        the product machine.
        """
        keep = set(self.y_bits())
        quantify = set()
        for c in self.conjuncts:
            quantify |= set(c.support)
        quantify |= set(self.x_bits())
        quantify -= keep
        pool = list(self.conjuncts) + [
            Conjunct(node=states, support=frozenset(self.bdd.support(states)),
                     label="frontier")
        ]
        result = multiply_and_quantify(self.bdd, pool, quantify, method="greedy")
        return self.bdd.rename(result.node, self.y_to_x())

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------

    def reachable(
        self,
        init: Optional[int] = None,
        max_iterations: Optional[int] = None,
        partitioned: bool = False,
        observer: Optional[Callable[[int, int], None]] = None,
    ) -> ReachResult:
        """Breadth-first reachable states from ``init`` (default: reset states).

        ``rings[k]`` holds exactly the states first reached at depth ``k``
        (the BFS onion rings) — the debuggers walk these backwards to
        produce shortest counterexample prefixes.  ``observer(depth,
        frontier)`` is called once per iteration (used by early failure
        detection).  ``max_iterations`` bounds the search; ``converged``
        tells whether a fixpoint was reached.
        """
        bdd = self.bdd
        if not partitioned:
            self.require_transition()
        with self.stats.phase("reach") as timer:
            current = self.init if init is None else init
            reached = current
            rings = [current]
            iterations = 0
            converged = False
            frontier = current
            while frontier != bdd.false:
                if max_iterations is not None and iterations >= max_iterations:
                    break
                if observer is not None:
                    observer(iterations, frontier)
                step = (
                    self.image_partitioned(frontier)
                    if partitioned
                    else self.image(frontier)
                )
                frontier = bdd.diff(step, reached)
                iterations += 1
                if frontier == bdd.false:
                    converged = True
                    break
                reached = bdd.or_(reached, frontier)
                rings.append(frontier)
                bdd.register_root("fsm.reached", reached)
                # Safe point: every live node the loop holds is either a
                # registered root or in extra_roots below.
                if len(bdd) > GC_NODE_THRESHOLD:
                    bdd.gc(extra_roots=rings + [frontier, current])
                else:
                    freed = bdd.maybe_gc(
                        extra_roots=rings + [frontier, current]
                    )
                    if freed:
                        self.stats.bump("auto_gc_freed", freed)
        return ReachResult(
            reached=reached,
            rings=rings,
            iterations=iterations,
            converged=converged,
            seconds=timer.seconds,
        )

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------

    def count_states(self, states: int) -> int:
        """Number of distinct states in ``states`` (valid encodings only)."""
        constrained = self.bdd.and_(states, self.state_domain())
        return self.bdd.sat_count(constrained, self.x_bits())

    def decode_state(self, assignment: Dict[int, bool]) -> Dict[str, str]:
        """Boolean assignment -> latch-name to value mapping."""
        return {l.name: l.x.decode(assignment) for l in self.latches}

    def states_iter(self, states: int, limit: Optional[int] = None) -> Iterator[Dict[str, str]]:
        """Enumerate states as latch-value dictionaries (up to ``limit``)."""
        constrained = self.bdd.and_(states, self.state_domain())
        for i, assignment in enumerate(self.bdd.sat_iter(constrained, self.x_bits())):
            if limit is not None and i >= limit:
                return
            yield self.decode_state(assignment)

    def state_cube(self, valuation: Dict[str, str]) -> int:
        """BDD of the single state (or partial state set) ``valuation``."""
        f = self.bdd.true
        for name, value in valuation.items():
            f = self.bdd.and_(f, self.mdd[name].literal(value))
        return f

    def pick_state(self, states: int) -> Optional[Dict[str, str]]:
        """One concrete state out of ``states`` (None if empty)."""
        constrained = self.bdd.and_(states, self.state_domain())
        cube = self.bdd.pick_cube(constrained, self.x_bits())
        if cube is None:
            return None
        return self.decode_state(cube)
