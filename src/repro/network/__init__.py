"""Symbolic FSM network layer: encoding, early quantification, images.

The network layer marries :mod:`repro.blifmv` (structure) with
:mod:`repro.bdd` (symbolic representation).  Build a machine with::

    from repro.blifmv import parse, flatten
    from repro.network import SymbolicFsm

    fsm = SymbolicFsm(flatten(parse(text)))
    fsm.build_transition(method="greedy")
    result = fsm.reachable()
"""

from repro.network.encode import (
    NEXT_SUFFIX,
    EncodedNetwork,
    LatchVars,
    encode,
    encode_table,
    is_deterministic_table,
    variable_order,
)
from repro.network.fsm import ReachResult, SymbolicFsm
from repro.network.product import compose
from repro.network.quantify import (
    Conjunct,
    METHODS,
    QuantifyResult,
    ScheduleStep,
    make_conjuncts,
    multiply_and_quantify,
)

__all__ = [
    "NEXT_SUFFIX",
    "EncodedNetwork",
    "LatchVars",
    "encode",
    "encode_table",
    "is_deterministic_table",
    "variable_order",
    "ReachResult",
    "SymbolicFsm",
    "compose",
    "Conjunct",
    "METHODS",
    "QuantifyResult",
    "ScheduleStep",
    "make_conjuncts",
    "multiply_and_quantify",
]

from repro.network.abstraction import (
    ConeReport,
    cone_of_influence,
    freeing_abstraction,
    support_closure,
)
from repro.network.timing import (
    DelayBound,
    bounded_response_automaton,
    elaborate_delays,
)

__all__ += [
    "ConeReport",
    "cone_of_influence",
    "freeing_abstraction",
    "support_closure",
    "DelayBound",
    "bounded_response_automaton",
    "elaborate_delays",
]
