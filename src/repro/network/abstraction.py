"""Automatic abstraction (paper §8 item 2).

    "Very large designs have to be abstracted manually for tractability
    of the verification algorithms.  Research is in progress on how to
    achieve automatic abstractions."

Two sound automatic abstractions on flat BLIF-MV models:

* **Cone of influence** (:func:`cone_of_influence`) — keep only the
  latches and tables in the transitive fanin of the nets a property
  observes; everything else cannot affect the verdict.  Exact (the
  abstraction is bisimilar on the observed nets).
* **Free-variable abstraction** (:func:`freeing_abstraction`) — cut
  chosen nets loose: their drivers are replaced by unconstrained
  non-deterministic tables.  This over-approximates behaviour, so
  universal properties (invariants, containment) that *pass* on the
  abstraction pass on the concrete design; failures may be spurious.
  This is the standard manual-abstraction move (§2's environment
  modeling) made mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.blifmv.ast import BlifMvError, Model, Row, Table


@dataclass
class ConeReport:
    """What the cone-of-influence reduction kept and dropped."""

    kept_latches: List[str]
    dropped_latches: List[str]
    kept_tables: int
    dropped_tables: int


def _driver_map(model: Model) -> Dict[str, List[Table]]:
    drivers: Dict[str, List[Table]] = {}
    for table in model.tables:
        for out in table.outputs:
            drivers.setdefault(out, []).append(table)
    return drivers


def support_closure(model: Model, observed: Iterable[str]) -> Set[str]:
    """All nets in the transitive fanin of ``observed`` (including them)."""
    drivers = _driver_map(model)
    latch_by_output = {latch.output: latch for latch in model.latches}
    seen: Set[str] = set()
    stack = list(observed)
    while stack:
        net = stack.pop()
        if net in seen:
            continue
        seen.add(net)
        for table in drivers.get(net, ()):
            for name in table.inputs:
                stack.append(name)
            # '=col' rows couple outputs to inputs, already covered.
        latch = latch_by_output.get(net)
        if latch is not None:
            stack.append(latch.input)
    return seen


def cone_of_influence(
    model: Model, observed: Iterable[str]
) -> tuple:
    """Reduce ``model`` to the cone of influence of the ``observed`` nets.

    Returns ``(reduced_model, report)``.  The reduced model has exactly
    the behaviour of the original projected on the kept nets, so any
    property over ``observed`` has the same verdict — at a fraction of
    the state space when the design contains unrelated machinery.
    """
    observed = list(observed)
    missing = [n for n in observed if n not in model.declared_variables()]
    if missing:
        raise BlifMvError(f"observed nets not in the model: {missing}")
    keep = support_closure(model, observed)
    reduced = Model(name=f"{model.name}#coi")
    reduced.inputs = [n for n in model.inputs if n in keep]
    reduced.outputs = [n for n in model.outputs if n in keep]
    kept_tables = dropped_tables = 0
    for table in model.tables:
        if any(out in keep for out in table.outputs):
            reduced.tables.append(table)
            kept_tables += 1
        else:
            dropped_tables += 1
    kept_latches: List[str] = []
    dropped_latches: List[str] = []
    for latch in model.latches:
        if latch.output in keep:
            reduced.latches.append(latch)
            kept_latches.append(latch.output)
        else:
            dropped_latches.append(latch.output)
    used: Set[str] = set()
    for table in reduced.tables:
        used.update(table.variables)
    for latch in reduced.latches:
        used.add(latch.input)
        used.add(latch.output)
    used.update(reduced.inputs)
    used.update(reduced.outputs)
    reduced.domains = {
        name: dom for name, dom in model.domains.items() if name in used
    }
    reduced.validate()
    report = ConeReport(
        kept_latches=kept_latches,
        dropped_latches=dropped_latches,
        kept_tables=kept_tables,
        dropped_tables=dropped_tables,
    )
    return reduced, report


def freeing_abstraction(model: Model, freed: Iterable[str]) -> Model:
    """Replace the drivers of ``freed`` nets with unconstrained tables.

    The freed nets become pure non-deterministic sources over their
    domains (and freed latches become combinational free nets), which
    over-approximates the design's behaviour: if an invariant or a
    containment check passes on the abstraction, it passes on the
    concrete model.  The usual use is cutting off a large submachine the
    property only samples through a few nets.
    """
    freed = set(freed)
    unknown = freed - set(model.declared_variables())
    if unknown:
        raise BlifMvError(f"freed nets not in the model: {sorted(unknown)}")
    abstract = Model(name=f"{model.name}#free")
    abstract.inputs = list(model.inputs)
    abstract.outputs = list(model.outputs)
    abstract.domains = dict(model.domains)
    for table in model.tables:
        if any(out in freed for out in table.outputs):
            # Split: freed outputs get free tables, kept outputs keep the
            # original rows projected on them.
            kept = [o for o in table.outputs if o not in freed]
            if kept:
                indices = [table.outputs.index(o) for o in kept]
                abstract.tables.append(
                    Table(
                        inputs=list(table.inputs),
                        outputs=kept,
                        rows=[
                            Row(
                                inputs=row.inputs,
                                outputs=tuple(row.outputs[i] for i in indices),
                            )
                            for row in table.rows
                        ],
                        default=None
                        if table.default is None
                        else tuple(table.default[i] for i in indices),
                    )
                )
        else:
            abstract.tables.append(table)
    for net in freed:
        domain = model.domain(net)
        abstract.tables.append(
            Table(
                inputs=[],
                outputs=[net],
                rows=[Row(inputs=(), outputs=(value,)) for value in domain],
            )
        )
    for latch in model.latches:
        if latch.output not in freed:
            abstract.latches.append(latch)
    abstract.validate()
    return abstract
