"""Early quantification: schedules for multiply-and-quantify (paper §4, item 5).

Building the product transition relation requires conjoining many
relation BDDs and existentially quantifying the non-state variables.  If
a variable appears only in conjuncts that have already been multiplied,
it can be quantified *early* from the partial product, which keeps the
intermediate BDDs small.  The early quantification problem — find a
schedule minimizing the peak BDD size — is NP-hard; HSIS ships heuristic
schedulers ([Hojati-Krishnan-Brayton, UCB M94/11]); we provide three:

* ``greedy`` — bucket elimination by minimum combined support: repeatedly
  pick the quantifiable variable whose elimination touches the smallest
  combined support, conjoin exactly the conjuncts mentioning it with a
  fused ``and_exists``, and put the result back in the pool.
* ``linear`` — multiply conjuncts in the given order, quantifying each
  variable as soon as no remaining conjunct mentions it.
* ``monolithic`` — multiply everything, quantify at the end (the baseline
  that early quantification beats; kept for the ablation benchmark).

All schedulers record the peak intermediate size so benchmarks can
compare memory behaviour, and return the same final BDD (the product
with all requested variables quantified out).  Every executed
:class:`ScheduleStep` also emits a ``quantify.step`` trace instant when
the manager's tracer is enabled.

For image computations that run the *same* pool against a changing
frontier every iteration (partitioned reachability), the schedule can be
computed once from the supports alone (:func:`plan_schedule`) and then
replayed cheaply against fresh BDDs (:func:`execute_schedule`) — the
greedy cost function only ever looks at supports, so planning needs no
BDD operations at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bdd.manager import BDD

METHODS = ("greedy", "linear", "monolithic")


@dataclass
class Conjunct:
    """A relation BDD together with its boolean-variable support."""

    node: int
    support: FrozenSet[int]
    label: str = ""


@dataclass
class ScheduleStep:
    """One multiply/quantify step, for introspection and tests."""

    combined: Tuple[str, ...]
    quantified: Tuple[int, ...]
    result_size: int


@dataclass
class QuantifyResult:
    """Outcome of a multiply-and-quantify run."""

    node: int
    peak_size: int
    steps: List[ScheduleStep] = field(default_factory=list)


def make_conjuncts(bdd: BDD, nodes: Iterable[Tuple[int, str]]) -> List[Conjunct]:
    """Wrap ``(node, label)`` pairs into :class:`Conjunct` with supports."""
    return [
        Conjunct(node=node, support=frozenset(bdd.support(node)), label=label)
        for node, label in nodes
    ]


def multiply_and_quantify(
    bdd: BDD,
    conjuncts: Sequence[Conjunct],
    quantify: Set[int],
    method: str = "greedy",
    groups: Optional[Sequence[Sequence[int]]] = None,
) -> QuantifyResult:
    """Conjoin ``conjuncts`` and existentially quantify ``quantify``.

    ``quantify`` is a set of boolean variable indices.  Variables in
    ``quantify`` that appear in no conjunct are vacuous and ignored.
    ``groups`` (optional, greedy only) lists conjunct index groups —
    e.g. the conjuncts of one hierarchy instance — that are clustered
    first, eliminating each group's private variables inside the group
    before the global elimination runs (see :func:`plan_schedule`).
    """
    if method not in METHODS:
        raise ValueError(f"unknown scheduling method {method!r}; want one of {METHODS}")
    pool = [
        Conjunct(c.node, c.support, c.label or f"r{i}")
        for i, c in enumerate(conjuncts)
    ]
    if not pool:
        return QuantifyResult(node=bdd.true, peak_size=1)
    with bdd.tracer.span(
        "quantify", cat="quantify",
        method=method, conjuncts=len(pool), variables=len(quantify),
    ) as span:
        if method == "monolithic":
            result = _monolithic(bdd, pool, quantify)
        elif method == "linear":
            result = _linear(bdd, pool, quantify)
        elif groups:
            schedule = plan_schedule(
                [c.support for c in pool], quantify, groups=groups
            )
            result = execute_schedule(bdd, [c.node for c in pool], schedule)
        else:
            result = _greedy(bdd, pool, quantify)
        span.add(peak_size=result.peak_size, result_size=bdd.size(result.node))
    return result


def _safe_point(bdd: BDD, pool: Iterable[Conjunct], *extra: int) -> None:
    """Run a pending auto-GC keeping the scheduler's working set alive."""
    bdd.maybe_gc(extra_roots=[c.node for c in pool] + list(extra))


def _reduce_and(
    bdd: BDD, result: QuantifyResult, lists: List[List[int]]
) -> List[int]:
    """Tree-AND every operand list to one node, batching across lists.

    Each round pairs adjacent operands within every list and issues all
    pairs as a single :meth:`BDD.apply_many` frontier, recording every
    intermediate product in ``result.peak_size``.  The reduction shape
    is fixed regardless of ``batch_apply`` (the kernel merely executes
    it scalar when the knob is off), so both settings build identical
    op DAGs.  Empty lists reduce to TRUE.  For lists of up to three
    operands the tree is the same left fold the scalar schedulers used.
    """
    pending = [list(l) for l in lists]
    while True:
        pairs: List[Tuple[int, int]] = []
        slots: List[Tuple[int, int]] = []
        nxt: List[List[int]] = []
        for i, l in enumerate(pending):
            nl: List[int] = []
            j = 0
            while j + 1 < len(l):
                slots.append((i, len(nl)))
                pairs.append((l[j], l[j + 1]))
                nl.append(-1)
                j += 2
            if j < len(l):
                nl.append(l[j])
            nxt.append(nl)
        if not pairs:
            return [l[0] if l else bdd.true for l in pending]
        for (i, p), r in zip(slots, bdd.apply_many("and", pairs)):
            nxt[i][p] = r
            result.peak_size = max(result.peak_size, bdd.size(r))
        pending = nxt


def _record_step(
    bdd: BDD,
    result: QuantifyResult,
    combined: Tuple[str, ...],
    quantified: Tuple[int, ...],
    size: int,
) -> None:
    """Append one :class:`ScheduleStep` and mirror it as a trace instant."""
    result.steps.append(
        ScheduleStep(combined=combined, quantified=quantified, result_size=size)
    )
    if bdd.tracer.enabled:
        bdd.tracer.instant(
            "quantify.step", cat="quantify",
            combined=len(combined), quantified=len(quantified),
            result_size=size, peak_size=result.peak_size,
        )


def _monolithic(bdd: BDD, pool: List[Conjunct], quantify: Set[int]) -> QuantifyResult:
    result = QuantifyResult(node=bdd.true, peak_size=1)
    product = bdd.true
    for c in pool:
        product = bdd.and_(product, c.node)
        size = bdd.size(product)
        result.peak_size = max(result.peak_size, size)
        _record_step(bdd, result, (c.label,), (), size)
        _safe_point(bdd, pool, product)
    present = quantify & set(bdd.support(product))
    product = bdd.exist(sorted(present), product)
    size = bdd.size(product)
    result.peak_size = max(result.peak_size, size)
    _record_step(bdd, result, (), tuple(sorted(present)), size)
    result.node = product
    return result


def _linear(bdd: BDD, pool: List[Conjunct], quantify: Set[int]) -> QuantifyResult:
    result = QuantifyResult(node=bdd.true, peak_size=1)
    product = bdd.true
    product_support: Set[int] = set()
    for idx, c in enumerate(pool):
        remaining = pool[idx + 1:]
        # Quantify, during this conjunction, every variable whose last
        # occurrence is this conjunct.
        dying = {
            v
            for v in (quantify & (c.support | product_support))
            if all(v not in r.support for r in remaining)
        }
        product = bdd.and_exists(product, c.node, sorted(dying))
        product_support = set(bdd.support(product))
        size = bdd.size(product)
        result.peak_size = max(result.peak_size, size)
        _record_step(bdd, result, (c.label,), tuple(sorted(dying)), size)
        _safe_point(bdd, remaining, product)
    result.node = product
    return result


def _greedy(bdd: BDD, pool: List[Conjunct], quantify: Set[int]) -> QuantifyResult:
    """Bucket elimination with an incremental var -> cluster index.

    ``by_var`` maps each variable to the ids of the live conjuncts whose
    support mentions it; it is updated on every merge, so picking the
    cheapest variable inspects only the clusters that actually contain
    it instead of rescanning the whole pool per pending variable
    (previously O(|pending|² · |pool| · |support|) across a run).
    Conjunct ids increase monotonically and ``table`` preserves
    insertion order, which reproduces the original pool-order semantics
    exactly (rest in input order, merged cluster appended).
    """
    result = QuantifyResult(node=bdd.true, peak_size=1)
    table: Dict[int, Conjunct] = dict(enumerate(pool))
    next_id = len(pool)
    by_var: Dict[int, Set[int]] = {}
    for cid, c in table.items():
        for v in c.support:
            by_var.setdefault(v, set()).add(cid)
    pending = {v for v in quantify if by_var.get(v)}
    while pending:
        # Cheapest variable: smallest combined support of the cluster
        # that mentions it (ties broken by cluster size then var index).
        def cost(var: int) -> Tuple[int, int, int]:
            union: Set[int] = set()
            for cid in by_var[var]:
                union |= table[cid].support
            return (len(union), len(by_var[var]), var)

        var = min(pending, key=cost)
        cluster_ids = sorted(by_var[var])
        cluster_id_set = set(cluster_ids)
        cluster = [table[cid] for cid in cluster_ids]
        # Quantify var plus any pending variable entirely local to the cluster.
        local = {
            v for v in pending
            if by_var.get(v) and by_var[v] <= cluster_id_set
        }
        cluster.sort(key=lambda c: len(c.support))
        if len(cluster) > 1:
            [product] = _reduce_and(
                bdd, result, [[c.node for c in cluster[:-1]]]
            )
            product = bdd.and_exists(product, cluster[-1].node, sorted(local))
        else:
            product = bdd.exist(sorted(local), cluster[0].node)
        size = bdd.size(product)
        result.peak_size = max(result.peak_size, size)
        _record_step(
            bdd, result,
            tuple(c.label for c in cluster), tuple(sorted(local)), size,
        )
        merged = Conjunct(
            node=product,
            support=frozenset(bdd.support(product)),
            label="(" + "*".join(c.label for c in cluster) + ")",
        )
        # Incremental index update: retire the cluster, append the merge.
        for cid in cluster_ids:
            for v in table[cid].support:
                ids = by_var[v]
                ids.discard(cid)
                if not ids:
                    del by_var[v]
            del table[cid]
        table[next_id] = merged
        for v in merged.support:
            by_var.setdefault(v, set()).add(next_id)
        next_id += 1
        pending -= local
        pending = {v for v in pending if by_var.get(v)}
        _safe_point(bdd, table.values())
    # Conjoin whatever is left (no quantifiable variables remain).
    live = sorted(table.values(), key=lambda c: len(c.support))
    [product] = _reduce_and(bdd, result, [[c.node for c in live]])
    _safe_point(bdd, live, product)
    if live:
        _record_step(
            bdd, result,
            tuple(c.label for c in live), (), bdd.size(product),
        )
    result.node = product
    return result


# ----------------------------------------------------------------------
# Reusable schedules (partitioned image computation)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlanStep:
    """One planned merge: conjoin ``merge`` slots, quantify ``quantify``.

    ``merge`` lists input slots in execution order (smallest planned
    support first, mirroring the greedy executor); the product lands in
    slot ``result``.
    """

    merge: Tuple[int, ...]
    quantify: Tuple[int, ...]
    result: int


@dataclass
class ImageSchedule:
    """A frozen greedy schedule, replayable against fresh conjunct BDDs.

    ``inputs`` is the number of input slots; ``steps`` the planned
    merges; ``tail`` the slots conjoined (without quantification) at the
    end, in execution order.
    """

    inputs: int
    steps: List[PlanStep]
    tail: Tuple[int, ...]


def plan_schedule(
    supports: Sequence[FrozenSet[int]],
    quantify: Set[int],
    groups: Optional[Sequence[Sequence[int]]] = None,
) -> ImageSchedule:
    """Plan a greedy multiply-and-quantify from supports alone.

    The greedy heuristic's cost function depends only on conjunct
    supports, so the whole elimination order can be fixed without
    touching a single BDD.  Planned supports of merged clusters are the
    union minus the quantified variables — a superset of the true BDD
    support, which keeps early quantification sound (a variable is only
    scheduled once every conjunct that *could* mention it has been
    merged; quantifying a variable absent from the product is the
    identity).

    ``groups`` (optional) lists slot-index groups that should be
    clustered first — e.g. the conjuncts of one hierarchy instance
    (:attr:`EncodedNetwork.conjunct_groups`).  For each group, every
    quantifiable variable mentioned *only* inside that group (an
    instance-private wire) is eliminated within the group before the
    global phase runs over the per-group products plus the ungrouped
    slots.  On replicated designs the groups are isomorphic, so each
    instance collapses to the same small cross-instance interface and
    the global elimination never interleaves unrelated instances.
    """
    table: Dict[int, FrozenSet[int]] = {
        i: frozenset(s) for i, s in enumerate(supports)
    }
    next_slot = [len(table)]
    by_var: Dict[int, Set[int]] = {}
    for slot, support in table.items():
        for v in support:
            by_var.setdefault(v, set()).add(slot)
    steps: List[PlanStep] = []
    if groups:
        for group in groups:
            slots = {s for s in group if s in table}
            if not slots:
                continue
            pending = {
                v for v in quantify
                if by_var.get(v) and by_var[v] <= slots
            }
            _plan_greedy_phase(
                table, by_var, pending, steps, next_slot, allowed=slots
            )
    pending = {v for v in quantify if by_var.get(v)}
    _plan_greedy_phase(table, by_var, pending, steps, next_slot, allowed=None)
    tail = tuple(sorted(table, key=lambda slot: len(table[slot])))
    return ImageSchedule(inputs=len(supports), steps=steps, tail=tail)


def _plan_greedy_phase(
    table: Dict[int, FrozenSet[int]],
    by_var: Dict[int, Set[int]],
    pending: Set[int],
    steps: List[PlanStep],
    next_slot: List[int],
    allowed: Optional[Set[int]],
) -> None:
    """One greedy elimination phase over ``pending`` variables.

    Mutates the shared planner state.  ``allowed`` (group phases)
    restricts clustering to a slot set; merge results join it, so the
    invariant ``by_var[v] <= allowed`` holds for the phase's pending
    variables throughout.
    """
    while pending:
        def cost(var: int) -> Tuple[int, int, int]:
            union: Set[int] = set()
            for slot in by_var[var]:
                union |= table[slot]
            return (len(union), len(by_var[var]), var)

        var = min(pending, key=cost)
        cluster_ids = sorted(by_var[var])
        cluster_id_set = set(cluster_ids)
        local = {
            v for v in pending
            if by_var.get(v) and by_var[v] <= cluster_id_set
        }
        union: Set[int] = set()
        for slot in cluster_ids:
            union |= table[slot]
        ordered = sorted(cluster_ids, key=lambda slot: len(table[slot]))
        steps.append(
            PlanStep(
                merge=tuple(ordered),
                quantify=tuple(sorted(local)),
                result=next_slot[0],
            )
        )
        merged = frozenset(union - local)
        for slot in cluster_ids:
            for v in table[slot]:
                ids = by_var[v]
                ids.discard(slot)
                if not ids:
                    del by_var[v]
            del table[slot]
        table[next_slot[0]] = merged
        for v in merged:
            by_var.setdefault(v, set()).add(next_slot[0])
        if allowed is not None:
            allowed.add(next_slot[0])
        next_slot[0] += 1
        pending -= local
        pending = {v for v in pending if by_var.get(v)}


def execute_schedule(
    bdd: BDD, nodes: Sequence[int], schedule: ImageSchedule
) -> QuantifyResult:
    """Replay a planned schedule against concrete conjunct BDDs.

    ``nodes[i]`` fills input slot ``i``; the slot count must match the
    plan.  No scheduling decisions are made here — this is the cheap
    per-iteration half of a plan-once/run-many partitioned image.

    Steps execute in dependency *waves*: every step whose merge slots
    are all filled is issued together — the merge prefixes tree-reduce
    jointly through :func:`_reduce_and` and the fused relational
    products go out as one :meth:`BDD.and_exists_many` frontier.  The
    wave structure (and therefore every intermediate product and the
    recorded peak) is identical whether the kernel runs it batched or
    scalar; GC safe-points sit between waves, never inside one.
    """
    if len(nodes) != schedule.inputs:
        raise ValueError(
            f"schedule expects {schedule.inputs} conjuncts, got {len(nodes)}"
        )
    result = QuantifyResult(node=bdd.true, peak_size=1)
    slots: Dict[int, int] = dict(enumerate(nodes))
    remaining = list(schedule.steps)
    while remaining:
        ready = [s for s in remaining if all(i in slots for i in s.merge)]
        if not ready:  # defensive: a well-formed plan always progresses
            raise ValueError("image schedule has an unsatisfiable step")
        remaining = [s for s in remaining if not all(i in slots for i in s.merge)]
        # exists vars . (s_0 & ... & s_k-2) & s_k-1, one request per step;
        # single-slot merges degenerate to exists vars . TRUE & s_0.
        prefixes = _reduce_and(
            bdd, result,
            [[slots[i] for i in step.merge[:-1]] for step in ready],
        )
        products = bdd.and_exists_many(
            (prefix, slots[step.merge[-1]], step.quantify)
            for step, prefix in zip(ready, prefixes)
        )
        for step, product in zip(ready, products):
            size = bdd.size(product)
            result.peak_size = max(result.peak_size, size)
            _record_step(
                bdd, result,
                tuple(f"s{i}" for i in step.merge), step.quantify, size,
            )
            for i in step.merge:
                del slots[i]
            slots[step.result] = product
        bdd.maybe_gc(extra_roots=list(slots.values()))
    [product] = _reduce_and(bdd, result, [[slots[i] for i in schedule.tail]])
    bdd.maybe_gc(extra_roots=list(slots.values()) + [product])
    result.node = product
    return result
