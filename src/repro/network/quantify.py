"""Early quantification: schedules for multiply-and-quantify (paper §4, item 5).

Building the product transition relation requires conjoining many
relation BDDs and existentially quantifying the non-state variables.  If
a variable appears only in conjuncts that have already been multiplied,
it can be quantified *early* from the partial product, which keeps the
intermediate BDDs small.  The early quantification problem — find a
schedule minimizing the peak BDD size — is NP-hard; HSIS ships heuristic
schedulers ([Hojati-Krishnan-Brayton, UCB M94/11]); we provide three:

* ``greedy`` — bucket elimination by minimum combined support: repeatedly
  pick the quantifiable variable whose elimination touches the smallest
  combined support, conjoin exactly the conjuncts mentioning it with a
  fused ``and_exists``, and put the result back in the pool.
* ``linear`` — multiply conjuncts in the given order, quantifying each
  variable as soon as no remaining conjunct mentions it.
* ``monolithic`` — multiply everything, quantify at the end (the baseline
  that early quantification beats; kept for the ablation benchmark).

All schedulers record the peak intermediate size so benchmarks can
compare memory behaviour, and return the same final BDD (the product
with all requested variables quantified out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.bdd.manager import BDD

METHODS = ("greedy", "linear", "monolithic")


@dataclass
class Conjunct:
    """A relation BDD together with its boolean-variable support."""

    node: int
    support: FrozenSet[int]
    label: str = ""


@dataclass
class ScheduleStep:
    """One multiply/quantify step, for introspection and tests."""

    combined: Tuple[str, ...]
    quantified: Tuple[int, ...]
    result_size: int


@dataclass
class QuantifyResult:
    """Outcome of a multiply-and-quantify run."""

    node: int
    peak_size: int
    steps: List[ScheduleStep] = field(default_factory=list)


def make_conjuncts(bdd: BDD, nodes: Iterable[Tuple[int, str]]) -> List[Conjunct]:
    """Wrap ``(node, label)`` pairs into :class:`Conjunct` with supports."""
    return [
        Conjunct(node=node, support=frozenset(bdd.support(node)), label=label)
        for node, label in nodes
    ]


def multiply_and_quantify(
    bdd: BDD,
    conjuncts: Sequence[Conjunct],
    quantify: Set[int],
    method: str = "greedy",
) -> QuantifyResult:
    """Conjoin ``conjuncts`` and existentially quantify ``quantify``.

    ``quantify`` is a set of boolean variable indices.  Variables in
    ``quantify`` that appear in no conjunct are vacuous and ignored.
    """
    if method not in METHODS:
        raise ValueError(f"unknown scheduling method {method!r}; want one of {METHODS}")
    pool = [
        Conjunct(c.node, c.support, c.label or f"r{i}")
        for i, c in enumerate(conjuncts)
    ]
    if not pool:
        return QuantifyResult(node=bdd.true, peak_size=1)
    if method == "monolithic":
        return _monolithic(bdd, pool, quantify)
    if method == "linear":
        return _linear(bdd, pool, quantify)
    return _greedy(bdd, pool, quantify)


def _safe_point(bdd: BDD, pool: Iterable[Conjunct], *extra: int) -> None:
    """Run a pending auto-GC keeping the scheduler's working set alive."""
    bdd.maybe_gc(extra_roots=[c.node for c in pool] + list(extra))


def _monolithic(bdd: BDD, pool: List[Conjunct], quantify: Set[int]) -> QuantifyResult:
    result = QuantifyResult(node=bdd.true, peak_size=1)
    product = bdd.true
    for c in pool:
        product = bdd.and_(product, c.node)
        result.peak_size = max(result.peak_size, bdd.size(product))
        result.steps.append(
            ScheduleStep(combined=(c.label,), quantified=(), result_size=bdd.size(product))
        )
        _safe_point(bdd, pool, product)
    present = quantify & set(bdd.support(product))
    product = bdd.exist(sorted(present), product)
    result.peak_size = max(result.peak_size, bdd.size(product))
    result.steps.append(
        ScheduleStep(combined=(), quantified=tuple(sorted(present)),
                     result_size=bdd.size(product))
    )
    result.node = product
    return result


def _quantifiable_now(
    var: int, remaining: Sequence[Conjunct], current_support: Set[int]
) -> bool:
    if var in current_support:
        return False
    return all(var not in c.support for c in remaining)


def _linear(bdd: BDD, pool: List[Conjunct], quantify: Set[int]) -> QuantifyResult:
    result = QuantifyResult(node=bdd.true, peak_size=1)
    product = bdd.true
    product_support: Set[int] = set()
    for idx, c in enumerate(pool):
        remaining = pool[idx + 1:]
        # Quantify, during this conjunction, every variable whose last
        # occurrence is this conjunct.
        dying = {
            v
            for v in (quantify & (c.support | product_support))
            if all(v not in r.support for r in remaining)
        }
        product = bdd.and_exists(product, c.node, sorted(dying))
        product_support = set(bdd.support(product))
        size = bdd.size(product)
        result.peak_size = max(result.peak_size, size)
        result.steps.append(
            ScheduleStep(combined=(c.label,), quantified=tuple(sorted(dying)),
                         result_size=size)
        )
        _safe_point(bdd, remaining, product)
    result.node = product
    return result


def _greedy(bdd: BDD, pool: List[Conjunct], quantify: Set[int]) -> QuantifyResult:
    result = QuantifyResult(node=bdd.true, peak_size=1)
    live: List[Conjunct] = list(pool)
    pending = {
        v for v in quantify if any(v in c.support for c in live)
    }
    while pending:
        # Cheapest variable: smallest combined support of the cluster
        # that mentions it (ties broken by cluster size then var index).
        def cost(var: int) -> Tuple[int, int, int]:
            cluster = [c for c in live if var in c.support]
            union: Set[int] = set()
            for c in cluster:
                union |= c.support
            return (len(union), len(cluster), var)

        var = min(pending, key=cost)
        cluster = [c for c in live if var in c.support]
        rest = [c for c in live if var not in c.support]
        # Quantify var plus any pending variable entirely local to the cluster.
        local = {
            v
            for v in pending
            if all(v not in c.support for c in rest)
            and any(v in c.support for c in cluster)
        }
        cluster.sort(key=lambda c: len(c.support))
        product = cluster[0].node
        for c in cluster[1:-1]:
            product = bdd.and_(product, c.node)
            result.peak_size = max(result.peak_size, bdd.size(product))
        if len(cluster) > 1:
            product = bdd.and_exists(product, cluster[-1].node, sorted(local))
        else:
            product = bdd.exist(sorted(local), product)
        size = bdd.size(product)
        result.peak_size = max(result.peak_size, size)
        result.steps.append(
            ScheduleStep(
                combined=tuple(c.label for c in cluster),
                quantified=tuple(sorted(local)),
                result_size=size,
            )
        )
        merged = Conjunct(
            node=product,
            support=frozenset(bdd.support(product)),
            label="(" + "*".join(c.label for c in cluster) + ")",
        )
        live = rest + [merged]
        pending -= local
        pending = {v for v in pending if any(v in c.support for c in live)}
        _safe_point(bdd, live)
    # Conjoin whatever is left (no quantifiable variables remain).
    live.sort(key=lambda c: len(c.support))
    product = bdd.true
    for c in live:
        product = bdd.and_(product, c.node)
        result.peak_size = max(result.peak_size, bdd.size(product))
    _safe_point(bdd, live, product)
    if live:
        result.steps.append(
            ScheduleStep(
                combined=tuple(c.label for c in live),
                quantified=(),
                result_size=bdd.size(product),
            )
        )
    result.node = product
    return result
