"""2mdlc — message data-link controller (Table 1: ~6.6e4 states, the
industrial design with the heaviest model-checking run).

An alternating-bit data-link controller moving ``width``-bit payloads
over a lossy frame channel with a lossy acknowledgement channel:

* the sender transmits (seq-bit, data) frames and retransmits on a
  non-deterministic timeout or a stale ack;
* the frame channel holds one frame and may lose it;
* the receiver accepts frames, delivers in-sequence payloads and acks
  every received frame with its sequence bit;
* two pulse registers (``rtook``, ``sack``) record "receiver accepted a
  frame" / "sender saw an ack" ticks so that channel fairness is
  expressible as state-level Streett constraints.

Properties (matching the Table-1 row: 1 LC, 1 CTL):

* ``lc_progress`` — under fair channels the sender accepts new messages
  infinitely often (the sequence bit flips forever);
* ``data_integrity`` — an in-flight frame carrying the sender's current
  sequence bit carries the sender's current payload (expanded over the
  whole datapath, making it the most expensive CTL check — the paper's
  2mdlc row shows the same effect).
"""

from __future__ import annotations

from repro.models.base import DesignSpec, make_spec

DEFAULT_PARAMS = {"width": 5}


def verilog(width: int = 5) -> str:
    if not 1 <= width <= 6:
        raise ValueError("payload width must be 1..6 bits")
    nvals = 1 << width
    nd_payload = ", ".join(str(v) for v in range(nvals))
    return f"""\
// 2mdlc: alternating-bit message data-link controller (generated)
module mdlc;
  enum {{ s_send, s_wait }} reg sstate;
  reg sbit;
  reg [{width - 1}:0] sdata;
  reg fvalid, fbit;
  reg [{width - 1}:0] fdata;
  reg rbit;
  reg [{width - 1}:0] rdata;
  reg avalid, abit;
  reg rtook, sack;

  initial sstate = s_send;
  initial sbit = 0;
  initial sdata = 0;
  initial fvalid = 0;
  initial fbit = 0;
  initial fdata = 0;
  initial rbit = 0;
  initial rdata = 0;
  initial avalid = 0;
  initial abit = 0;
  initial rtook = 0;
  initial sack = 0;

  wire s_put, timeout, good_ack, take, lose_f, lose_a, fresh;
  assign s_put = (sstate == s_send) && !fvalid;
  assign timeout = $ND(0, 1);
  assign good_ack = avalid && (abit == sbit);
  assign take = fvalid && $ND(0, 1);
  assign lose_f = $ND(0, 1);
  assign lose_a = $ND(0, 1);
  assign fresh = take && (fbit == rbit);

  // ---- sender ----------------------------------------------------
  always @(posedge clk) begin
    case (sstate)
      s_send: sstate <= s_put ? s_wait : s_send;
      s_wait: begin
        if (avalid) sstate <= s_send;          // ack (good or stale)
        else if (timeout) sstate <= s_send;    // retransmit
        else sstate <= s_wait;
      end
    endcase
  end
  always @(posedge clk) begin
    if (sstate == s_wait && good_ack) begin
      sbit <= !sbit;
      sdata <= $ND({nd_payload});              // accept a new message
    end else begin
      sbit <= sbit;
      sdata <= sdata;
    end
  end
  always @(posedge clk)
    sack <= (sstate == s_wait) && avalid;

  // ---- frame channel (capacity one, lossy) --------------------------
  always @(posedge clk) begin
    if (s_put) begin
      fvalid <= 1; fbit <= sbit; fdata <= sdata;
    end else if (fvalid && take) begin
      fvalid <= 0; fbit <= fbit; fdata <= fdata;
    end else if (fvalid && lose_f) begin
      fvalid <= 0; fbit <= fbit; fdata <= fdata;
    end else begin
      fvalid <= fvalid; fbit <= fbit; fdata <= fdata;
    end
  end

  // ---- receiver -----------------------------------------------------
  always @(posedge clk) begin
    if (fresh) begin
      rdata <= fdata; rbit <= !rbit;
    end else begin
      rdata <= rdata; rbit <= rbit;
    end
  end
  always @(posedge clk)
    rtook <= take;

  // ---- ack channel (capacity one, lossy) ------------------------------
  always @(posedge clk) begin
    if (take) begin
      avalid <= 1; abit <= fbit;               // ack every received frame
    end else if (avalid && (sstate == s_wait)) begin
      avalid <= 0; abit <= abit;               // consumed by the sender
    end else if (avalid && lose_a) begin
      avalid <= 0; abit <= abit;
    end else begin
      avalid <= avalid; abit <= abit;
    end
  end
endmodule
"""


def pif(width: int = 5) -> str:
    nvals = 1 << width
    data_eq = " | ".join(f"(fdata={v} & sdata={v})" for v in range(nvals))
    bit_eq = "(fbit=0 & sbit=0) | (fbit=1 & sbit=1)"
    return f"""\
# --- 1 CTL property: datapath integrity --------------------------------
# An in-flight frame carrying the sender's current sequence bit carries
# the sender's current payload.
ctl data_integrity :: AG ((fvalid=1 & ({bit_eq})) -> ({data_eq}))

# --- 1 language-containment property: sender progress ------------------
automaton lc_progress
  states A B
  initial A
  edge A A :: sbit=0
  edge A B :: sbit=1
  edge B B :: sbit=1
  edge B A :: sbit=0
  accept recurrence A->B, B->A
end

# --- channel fairness ----------------------------------------------------
# frames in flight infinitely often => receiver accepts infinitely often
fairness streett :: fvalid=1 ; rtook'=1
# acks in flight infinitely often => sender observes acks infinitely often
fairness streett :: avalid=1 ; sack'=1
# the sender does not sit in wait forever (timeout eventually fires)
fairness negative :: sstate=s_wait
"""


def spec(width: int = 5) -> DesignSpec:
    """Build the 2mdlc benchmark with a ``width``-bit datapath."""
    return make_spec("2mdlc", verilog(width), pif(width), {"width": width})
