"""Extra verification examples beyond Table 1.

The paper reports exercising HSIS on "a dozen or so small to
medium-sized examples"; this gallery rounds the six Table-1 designs up
to that dozen with further classics, each a (Verilog, PIF) pair that the
test suite verifies end to end:

* ``traffic``   — a two-road traffic-light controller with a car sensor;
* ``elevator``  — a three-floor elevator with request latching;
* ``rrarbiter`` — a four-client round-robin bus arbiter;
* ``vending``   — a coin-operated vending machine with change;
* ``gcd``       — a Euclidean GCD datapath (terminating computation);
* ``railroad``  — the classic single-track railroad interlock.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.models.base import DesignSpec, make_spec


def traffic() -> DesignSpec:
    verilog = """\
// two-road traffic light with a cross-road car sensor
module traffic;
  enum { green, yellow, red } reg main_l, cross_l;
  reg [1:0] timer;
  wire car;
  assign car = $ND(0, 1);

  initial main_l = green;
  initial cross_l = red;
  initial timer = 0;

  always @(posedge clk) begin
    case (main_l)
      green:  if (car && timer >= 2) main_l <= yellow;
      yellow: main_l <= red;
      red:    if (timer >= 2) main_l <= green;
    endcase
  end
  always @(posedge clk) begin
    case (cross_l)
      red:    if (main_l == yellow) cross_l <= green;
      green:  if (timer >= 1) cross_l <= yellow;
      yellow: cross_l <= red;
    endcase
  end
  always @(posedge clk) begin
    if ((main_l == green && car && timer >= 2) || main_l == yellow
        || (main_l == red && timer >= 2))
      timer <= 0;
    else if (timer == 3)
      timer <= 3;
    else
      timer <= timer + 1;
  end
endmodule
"""
    pif = """\
ctl no_double_green :: AG !(main_l=green & cross_l=green)
ctl yellow_then_red :: AG (main_l=yellow -> AX main_l=red)
ctl cross_serviceable :: AG EF cross_l=green

automaton lc_no_double_green
  states A B
  initial A
  edge A A :: !(main_l=green & cross_l=green)
  edge A B :: main_l=green & cross_l=green
  edge B B
  accept invariance A
end
"""
    return make_spec("traffic", verilog, pif, {})


def elevator() -> DesignSpec:
    verilog = """\
// three-floor elevator with request latching
module elevator;
  reg [1:0] floor;      // 0..2
  enum { still, up, down } reg motion;
  reg req0, req1, req2;
  wire p0, p1, p2;
  assign p0 = $ND(0, 1);
  assign p1 = $ND(0, 1);
  assign p2 = $ND(0, 1);

  initial floor = 0;
  initial motion = still;
  initial req0 = 0;
  initial req1 = 0;
  initial req2 = 0;

  wire here0, here1, here2;
  assign here0 = (floor == 0);
  assign here1 = (floor == 1);
  assign here2 = (floor == 2);

  always @(posedge clk) req0 <= (req0 || p0) && !(here0 && motion == still);
  always @(posedge clk) req1 <= (req1 || p1) && !(here1 && motion == still);
  always @(posedge clk) req2 <= (req2 || p2) && !(here2 && motion == still);

  wire want_up, want_down;
  assign want_up = (floor == 0 && (req1 || req2)) || (floor == 1 && req2);
  assign want_down = (floor == 2 && (req0 || req1)) || (floor == 1 && req0);

  always @(posedge clk) begin
    case (motion)
      still: begin
        if (want_up) motion <= up;
        else if (want_down) motion <= down;
      end
      up:   motion <= still;
      down: motion <= still;
    endcase
  end
  always @(posedge clk) begin
    if (motion == up && floor != 2) floor <= floor + 1;
    else if (motion == down && floor != 0) floor <= floor - 1;
  end
endmodule
"""
    pif = """\
ctl floor_in_range :: AG !(floor=3)
ctl no_move_while_still :: AG (motion=still -> (floor=0 | floor=1 | floor=2))
ctl can_reach_top :: EF floor=2

automaton lc_floor_in_range
  states A B
  initial A
  edge A A :: !(floor=3)
  edge A B :: floor=3
  edge B B
  accept invariance A
end
"""
    return make_spec("elevator", verilog, pif, {})


def rrarbiter(n: int = 4) -> DesignSpec:
    reqs = "\n".join(
        f"  wire req{i};\n  assign req{i} = $ND(0, 1);" for i in range(n)
    )
    grants = "\n".join(
        f"  wire gnt{i};\n  assign gnt{i} = (turn == {i}) && req{i};"
        for i in range(n)
    )
    verilog = f"""\
// round-robin arbiter: the token advances every cycle
module rrarbiter;
  reg [1:0] turn;
  initial turn = 0;
{reqs}
{grants}
  always @(posedge clk) turn <= turn + 1;
endmodule
"""
    pairs = " & ".join(
        f"!(gnt{i}=1 & gnt{j}=1)" for i in range(n) for j in range(i + 1, n)
    )
    fair_lines = "\n".join(f"fairness negative :: turn={i}" for i in range(n))
    pif = f"""\
ctl one_grant :: AG ({pairs})
ctl rotation :: AG (turn=0 -> AX turn=1)

automaton lc_one_grant
  states A B
  initial A
  edge A A :: {pairs}
  edge A B :: !({pairs})
  edge B B
  accept invariance A
end

automaton lc_turn0_recurs
  states W S
  initial W
  edge W S :: turn=0
  edge W W :: !(turn=0)
  edge S S :: turn=0
  edge S W :: !(turn=0)
  accept recurrence W->S, S->S
end

{fair_lines}
"""
    return make_spec("rrarbiter", verilog, pif, {"n": n})


def vending() -> DesignSpec:
    verilog = """\
// vending machine: item costs 15; coins are 5 or 10; change returned
module vending;
  reg [4:0] credit;      // 0..31
  reg dispense, change;
  enum { c_none, c_nickel, c_dime } wire coin;
  assign coin = $ND(c_none, c_nickel, c_dime);

  initial credit = 0;
  initial dispense = 0;
  initial change = 0;

  wire [4:0] paid;
  assign paid = (coin == c_nickel) ? credit + 5 :
                (coin == c_dime) ? credit + 10 : credit;

  always @(posedge clk) begin
    if (paid >= 15) credit <= 0;
    else credit <= paid;
  end
  always @(posedge clk) dispense <= (paid >= 15);
  always @(posedge clk) change <= (paid >= 15) && (paid > 15);
endmodule
"""
    pif = """\
ctl credit_bounded :: AG (credit=0 | credit=5 | credit=10)
ctl change_only_with_item :: AG (change=1 -> dispense=1)
ctl can_buy :: EF dispense=1

automaton lc_change_with_item
  states A B
  initial A
  edge A A :: !(change=1 & dispense=0)
  edge A B :: change=1 & dispense=0
  edge B B
  accept invariance A
end
"""
    return make_spec("vending", verilog, pif, {})


def gcd() -> DesignSpec:
    verilog = """\
// Euclidean GCD datapath over 3-bit operands
module gcd;
  reg [2:0] a, b;
  enum { load, run, done } reg phase;

  initial a = 0;
  initial b = 0;
  initial phase = load;

  wire [2:0] na, nb;
  assign na = $ND(1, 2, 3, 4, 5, 6, 7);
  assign nb = $ND(1, 2, 3, 4, 5, 6, 7);

  always @(posedge clk) begin
    case (phase)
      load: phase <= run;
      run:  if (a == b || a == 0 || b == 0) phase <= done;
      done: phase <= done;
    endcase
  end
  always @(posedge clk) begin
    if (phase == load) a <= na;
    else if (phase == run && a > b) a <= a - b;
  end
  always @(posedge clk) begin
    if (phase == load) b <= nb;
    else if (phase == run && b > a) b <= b - a;
  end
endmodule
"""
    pif = """\
ctl terminates :: AF phase=done
ctl stable_when_done :: AG (phase=done -> AX phase=done)
ctl gcd_nonzero :: AG (phase=done -> !(a=0 & b=0))

automaton lc_done_forever
  # once done, stay done
  states W D BAD
  initial W
  edge W W :: !(phase=done)
  edge W D :: phase=done
  edge D D :: phase=done
  edge D BAD :: !(phase=done)
  edge BAD BAD
  accept invariance W D
end
"""
    return make_spec("gcd", verilog, pif, {})


def railroad() -> DesignSpec:
    verilog = """\
// single-track railroad interlock: two trains, one bridge
module railroad;
  enum { away, waiting, bridge } reg east, west;
  enum { e_turn, w_turn } reg signal;
  wire e_arrive, w_arrive, e_leave, w_leave;
  assign e_arrive = $ND(0, 1);
  assign w_arrive = $ND(0, 1);
  assign e_leave = $ND(0, 1);
  assign w_leave = $ND(0, 1);

  initial east = away;
  initial west = away;
  initial signal = e_turn;

  always @(posedge clk) begin
    case (east)
      away:    if (e_arrive) east <= waiting;
      waiting: if (signal == e_turn && west != bridge) east <= bridge;
      bridge:  if (e_leave) east <= away;
    endcase
  end
  always @(posedge clk) begin
    case (west)
      away:    if (w_arrive) west <= waiting;
      waiting: if (signal == w_turn && east != bridge) west <= bridge;
      bridge:  if (w_leave) west <= away;
    endcase
  end
  always @(posedge clk) begin
    if (east == bridge) signal <= w_turn;
    else if (west == bridge) signal <= e_turn;
  end
endmodule
"""
    pif = """\
ctl bridge_exclusive :: AG !(east=bridge & west=bridge)
ctl east_can_cross :: AG (east=waiting -> EF east=bridge)
ctl west_can_cross :: AG (west=waiting -> EF west=bridge)

automaton lc_bridge_exclusive
  states A B
  initial A
  edge A A :: !(east=bridge & west=bridge)
  edge A B :: east=bridge & west=bridge
  edge B B
  accept invariance A
end
"""
    return make_spec("railroad", verilog, pif, {})


GALLERY: Dict[str, Callable[[], DesignSpec]] = {
    "traffic": traffic,
    "elevator": elevator,
    "rrarbiter": rrarbiter,
    "vending": vending,
    "gcd": gcd,
    "railroad": railroad,
}
