"""philos — dining philosophers (Table 1: 18 reached states, 2 LC, 2 CTL).

Each philosopher cycles thinking -> hungry -> has-left-fork -> eating;
forks are granted by per-fork arbiters with non-deterministic tie
breaking (the ``$ND`` construct of the extended Verilog subset).  The
description is *generated* for N philosophers — the paper's §3 notes
Verilog cannot express such inductive structures natively.

The classic hold-left-fork deadlock is reachable by design (HSIS is a
debugging tool; the shipped properties are the safety ones that hold).
"""

from __future__ import annotations

from repro.models.base import DesignSpec, make_spec

DEFAULT_PARAMS = {"n": 2}


def verilog(n: int = 2) -> str:
    if n < 2:
        raise ValueError("need at least two philosophers")
    phil_names = ", ".join(f"phil{i}" for i in range(n))
    fork_owner_values = ", ".join(f"own{i}" for i in range(n))
    fork_names = ", ".join(f"fork{i}" for i in range(n))
    lines = [
        f"// dining philosophers, N={n} (generated)",
        "module philos;",
        f"  enum {{ thinking, hungry, hasleft, eating }} reg {phil_names};",
        f"  enum {{ free, {fork_owner_values} }} reg {fork_names};",
        "",
    ]
    for i in range(n):
        lines.append(f"  initial phil{i} = thinking;")
        lines.append(f"  initial fork{i} = free;")
    lines.append("")
    for i in range(n):
        left = i
        right = (i + 1) % n
        lines += [
            f"  wire go_hungry{i}, finish{i};",
            f"  assign go_hungry{i} = $ND(0, 1);",
            f"  assign finish{i} = $ND(0, 1);",
            "  always @(posedge clk) begin",
            f"    case (phil{i})",
            f"      thinking: phil{i} <= go_hungry{i} ? hungry : thinking;",
            f"      hungry:   phil{i} <= (fork{left} == own{i}) ? hasleft : hungry;",
            f"      hasleft:  phil{i} <= (fork{right} == own{i}) ? eating : hasleft;",
            f"      eating:   phil{i} <= finish{i} ? thinking : eating;",
            "    endcase",
            "  end",
            "",
        ]
    for f in range(n):
        # fork f is the left fork of philosopher f and the right fork of
        # philosopher f-1.
        left_phil = f
        right_phil = (f - 1) % n
        lines += [
            f"  wire req{f}_l, req{f}_r, tie{f};",
            f"  assign req{f}_l = (phil{left_phil} == hungry);",
            f"  assign req{f}_r = (phil{right_phil} == hasleft);",
            f"  assign tie{f} = $ND(0, 1);",
            "  always @(posedge clk) begin",
            f"    if (fork{f} == own{left_phil} && phil{left_phil} == thinking)",
            f"      fork{f} <= free;",
            f"    else if (fork{f} == own{right_phil} && phil{right_phil} == thinking)",
            f"      fork{f} <= free;",
            f"    else if (fork{f} == free) begin",
            f"      if (req{f}_l && req{f}_r)",
            f"        fork{f} <= tie{f} ? own{left_phil} : own{right_phil};",
            f"      else if (req{f}_l) fork{f} <= own{left_phil};",
            f"      else if (req{f}_r) fork{f} <= own{right_phil};",
            f"      else fork{f} <= free;",
            "    end",
            f"    else fork{f} <= fork{f};",
            "  end",
            "",
        ]
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def pif(n: int = 2) -> str:
    mutex_pairs = " & ".join(
        f"!(phil{i}=eating & phil{(i + 1) % n}=eating)" for i in range(n)
    )
    left, right = 0, 1 % n
    return f"""\
# --- 2 CTL properties ------------------------------------------------
ctl neighbors_exclusive :: AG ({mutex_pairs})
ctl eating_owns_forks :: AG (phil0=eating -> (fork{left}=own0 & fork{right}=own0))

# --- 2 language-containment properties --------------------------------
automaton lc_neighbors_exclusive
  states A B
  initial A
  edge A A :: {mutex_pairs}
  edge A B :: !({mutex_pairs})
  edge B B
  accept invariance A
end

automaton lc_fork_consistent
  # an eating philosopher holds its right fork
  states A B
  initial A
  edge A A :: !(phil0=eating & !(fork{right}=own0))
  edge A B :: phil0=eating & !(fork{right}=own0)
  edge B B
  accept invariance A
end
"""


def spec(n: int = 2) -> DesignSpec:
    """Build the dining-philosophers benchmark for ``n`` philosophers."""
    return make_spec("philos", verilog(n), pif(n), {"n": n})
