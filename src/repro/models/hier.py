"""Hierarchical gallery designs: N replicas of one module each.

The Table-1 generators emit a single flat module per design (the
paper's §3 laments Verilog's lack of inductive structure).  These
variants keep the generation loop but move the replicated logic into a
*module* instantiated N times, so elaboration sees N isomorphic
subtrees of one shape — exactly the workload the shared-shape encoder
(docs/hierarchy.md) is built for: the shape is table-encoded once and
every further instance is produced by variable substitution.

Three designs, echoing the flat gallery's themes:

* ``philos_hier`` — token-ring mutual exclusion: each "philosopher"
  cell passes the single chopstick token to its right neighbour; a
  one-shot boot register in the top module injects the token, keeping
  every cell's reset values identical (resets are part of the shape
  signature, so per-instance reset asymmetry would defeat sharing).
* ``scheduler_hier`` — a round-robin dispatcher in the top module
  grants N identical worker cells one at a time; the turn counter
  holds while the granted worker is requesting or busy.
* ``gigamax_hier`` — N identical CPU/cache cells snooping one bus: a
  nondeterministic selector puts one cell on the bus per cycle, a
  write takes exclusive ownership and invalidates every snooper.

Every port is binary, so the parent wire domains trivially match the
child port domains (flatten's domain merge requires equality).
"""

from __future__ import annotations

from repro.models.base import DesignSpec, make_spec

DEFAULT_PARAMS = {"n": 3}


def _mutex_conj(prefix: str, n: int) -> str:
    """Pairwise at-most-one conjunction over ``prefix0 .. prefix{n-1}``."""
    return " & ".join(
        f"!({prefix}{i}=1 & {prefix}{j}=1)"
        for i in range(n)
        for j in range(i + 1, n)
    )


# -- philos_hier: token-ring mutual exclusion ----------------------------


def philos_verilog(n: int = 3) -> str:
    if n < 2:
        raise ValueError("need at least two philosophers")
    lines = [
        f"// hierarchical dining philosophers (token ring), N={n} (generated)",
        "module cell(tin, tout, eat, tko);",
        "  input tin;",
        "  output tout, eat, tko;",
        "  enum { idle, want, crit } reg st;",
        "  reg tok;",
        "  initial st = idle;",
        "  initial tok = 0;",
        "  wire req, fin, pass;",
        "  assign req = $ND(0, 1);",
        "  assign fin = $ND(0, 1);",
        "  assign pass = tok && (st == idle);",
        "  assign tout = pass;",
        "  assign eat = (st == crit);",
        "  assign tko = tok;",
        "  always @(posedge clk) begin",
        "    case (st)",
        "      idle: st <= req ? want : idle;",
        "      want: st <= tok ? crit : want;",
        "      crit: st <= fin ? idle : crit;",
        "    endcase",
        "    tok <= tin || (tok && !pass);",
        "  end",
        "endmodule",
        "",
        "module philos_hier;",
    ]
    for i in range(n):
        lines.append(f"  wire t{i}, e{i}, k{i};")
    lines += [
        "  reg booted;",
        "  initial booted = 0;",
        "  always @(posedge clk) begin",
        "    booted <= 1;",
        "  end",
        "  wire tin0;",
        f"  assign tin0 = t{n - 1} || !booted;",
    ]
    for i in range(n):
        tin = "tin0" if i == 0 else f"t{i - 1}"
        lines.append(
            f"  cell c{i}(.tin({tin}), .tout(t{i}), "
            f".eat(e{i}), .tko(k{i}));"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def philos_pif(n: int = 3) -> str:
    mutex = _mutex_conj("e", n)
    return f"""\
# --- 2 CTL properties ------------------------------------------------
ctl neighbors_exclusive :: AG ({mutex})
ctl eating_holds_token :: AG (e0=1 -> k0=1)

# --- 1 language-containment property ----------------------------------
automaton lc_exclusive
  states A B
  initial A
  edge A A :: {mutex}
  edge A B :: !({mutex})
  edge B B
  accept invariance A
end
"""


def philos_spec(n: int = 3) -> DesignSpec:
    """Token-ring philosophers: N instances of one ``cell`` shape."""
    return make_spec("philos_hier", philos_verilog(n), philos_pif(n), {"n": n})


# -- scheduler_hier: round-robin dispatcher over N workers ---------------


def scheduler_verilog(n: int = 3) -> str:
    if n < 2:
        raise ValueError("need at least two workers")
    width = max(1, (n - 1).bit_length())
    hold = " || ".join(
        f"(turn == {i} && (r{i} || b{i}))" for i in range(n)
    )
    lines = [
        f"// hierarchical round-robin scheduler, N={n} (generated)",
        "module worker(grant, busy, req);",
        "  input grant;",
        "  output busy, req;",
        "  enum { idle, pend, run } reg st;",
        "  initial st = idle;",
        "  wire wake, done;",
        "  assign wake = $ND(0, 1);",
        "  assign done = $ND(0, 1);",
        "  assign req = (st == pend);",
        "  assign busy = (st == run);",
        "  always @(posedge clk) begin",
        "    case (st)",
        "      idle: st <= wake ? pend : idle;",
        "      pend: st <= grant ? run : pend;",
        "      run:  st <= (grant && !done) ? run : idle;",
        "    endcase",
        "  end",
        "endmodule",
        "",
        "module scheduler_hier;",
    ]
    for i in range(n):
        lines.append(f"  wire g{i}, b{i}, r{i};")
    lines += [
        f"  reg [{width - 1}:0] turn;",
        "  initial turn = 0;",
        "  wire hold;",
        f"  assign hold = {hold};",
        "  always @(posedge clk) begin",
        "    if (hold) turn <= turn;",
        f"    else turn <= (turn == {n - 1}) ? 0 : (turn + 1);",
        "  end",
    ]
    for i in range(n):
        lines.append(f"  assign g{i} = (turn == {i});")
    for i in range(n):
        lines.append(
            f"  worker w{i}(.grant(g{i}), .busy(b{i}), .req(r{i}));"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def scheduler_pif(n: int = 3) -> str:
    mutex = _mutex_conj("b", n)
    return f"""\
# --- 2 CTL properties ------------------------------------------------
ctl one_runs :: AG ({mutex})
ctl busy_is_granted :: AG (b0=1 -> g0=1)

# --- 1 language-containment property ----------------------------------
automaton lc_one_runs
  states A B
  initial A
  edge A A :: {mutex}
  edge A B :: !({mutex})
  edge B B
  accept invariance A
end
"""


def scheduler_spec(n: int = 3) -> DesignSpec:
    """Round-robin scheduler: N instances of one ``worker`` shape."""
    return make_spec(
        "scheduler_hier", scheduler_verilog(n), scheduler_pif(n), {"n": n}
    )


# -- gigamax_hier: snooping cache cells on one bus -----------------------


def gigamax_verilog(n: int = 3) -> str:
    if n < 2:
        raise ValueError("need at least two CPU cells")
    width = max(1, (n - 1).bit_length())
    sel_choices = ", ".join(str(i) for i in range(n))
    busw = " || ".join(f"m{i}" for i in range(n))
    lines = [
        f"// hierarchical gigamax-style snooping caches, N={n} (generated)",
        "module cpu(act, busw, myw, owned);",
        "  input act, busw;",
        "  output myw, owned;",
        "  enum { inv, shr, own } reg cst;",
        "  initial cst = inv;",
        "  wire wr, rd;",
        "  assign wr = $ND(0, 1);",
        "  assign rd = $ND(0, 1);",
        "  assign myw = act && wr;",
        "  assign owned = (cst == own);",
        "  always @(posedge clk) begin",
        "    if (act) begin",
        "      if (wr) cst <= own;",
        "      else if (rd && (cst == inv)) cst <= shr;",
        "      else cst <= cst;",
        "    end else begin",
        "      if (busw) cst <= inv;",
        "      else cst <= cst;",
        "    end",
        "  end",
        "endmodule",
        "",
        "module gigamax_hier;",
        f"  wire [{width - 1}:0] sel;",
        f"  assign sel = $ND({sel_choices});",
    ]
    for i in range(n):
        lines.append(f"  wire a{i}, m{i}, o{i};")
    for i in range(n):
        lines.append(f"  assign a{i} = (sel == {i});")
    lines.append("  wire busw;")
    lines.append(f"  assign busw = {busw};")
    for i in range(n):
        lines.append(
            f"  cpu c{i}(.act(a{i}), .busw(busw), .myw(m{i}), .owned(o{i}));"
        )
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def gigamax_pif(n: int = 3) -> str:
    mutex = _mutex_conj("o", n)
    return f"""\
# --- 2 CTL properties ------------------------------------------------
ctl exclusive_owner :: AG ({mutex})
ctl ownership_reachable :: EF o0=1

# --- 1 language-containment property ----------------------------------
automaton lc_exclusive_owner
  states A B
  initial A
  edge A A :: {mutex}
  edge A B :: !({mutex})
  edge B B
  accept invariance A
end
"""


def gigamax_spec(n: int = 3) -> DesignSpec:
    """Snooping caches: N instances of one ``cpu`` shape on a bus."""
    return make_spec(
        "gigamax_hier", gigamax_verilog(n), gigamax_pif(n), {"n": n}
    )
