"""scheduler — Milner's round-robin scheduler (Table 1: 2,706,604 states).

N cyclers pass a token around a ring; the cycler holding the token may
(non-deterministically, when its task is idle) start task *i* and pass
the token on.  Running tasks finish non-deterministically and in
parallel.  The reachable space is roughly ``N * 2^N`` — the design that
shows off implicit (BDD) state enumeration, and the paper's largest
reached-state count.

The description is generated for any N (inductive structure, §3).  The
Table-1 configuration uses N=18 so the reachable count lands in the same
millions regime as the paper's 2.7e6.
"""

from __future__ import annotations

from repro.models.base import DesignSpec, make_spec

DEFAULT_PARAMS = {"n": 18}


def _tok_width(n: int) -> int:
    return max(1, (n - 1).bit_length())


def verilog(n: int = 18) -> str:
    if not 2 <= n <= 24:
        raise ValueError("scheduler model supports 2..24 cyclers")
    width = _tok_width(n)
    tasks = ", ".join(f"task{i}" for i in range(n))
    lines = [
        f"// Milner's scheduler, N={n} cyclers (generated)",
        "module scheduler;",
        f"  reg [{width - 1}:0] tok;",
        f"  reg {tasks};",
        "  wire cango, holder_idle, advance;",
        "",
        "  initial tok = 0;",
    ]
    for i in range(n):
        lines.append(f"  initial task{i} = 0;")
    chain = "0"
    for i in reversed(range(n)):
        chain = f"(tok == {i}) ? !task{i} : {chain}"
    lines += [
        "",
        "  assign cango = $ND(0, 1);",
        f"  assign holder_idle = {chain};",
        "  assign advance = cango && holder_idle;",
        "",
        "  always @(posedge clk) begin",
        f"    tok <= advance ? ((tok == {n - 1}) ? 0 : tok + 1) : tok;",
        "  end",
        "",
    ]
    for i in range(n):
        lines += [
            f"  wire start{i}, fin{i};",
            f"  assign start{i} = advance && (tok == {i});",
            f"  assign fin{i} = $ND(0, 1);",
            "  always @(posedge clk) begin",
            f"    task{i} <= start{i} ? 1 : ((task{i} && fin{i}) ? 0 : task{i});",
            "  end",
            "",
        ]
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def pif(n: int = 18) -> str:
    fairness = "\n".join(
        [f"fairness negative :: tok={i}" for i in range(n)]
        + [f"fairness negative :: task{i}=1" for i in range(n)]
    )
    return f"""\
# --- 1 CTL property ---------------------------------------------------
ctl token_returns :: AG EF tok=0

# --- 2 language-containment properties ----------------------------------
automaton lc_start_alternation
  # cycler 0 and cycler 1 start in strict alternation (ring order)
  states Z O BAD
  initial Z
  edge Z Z :: !(start0=1) & !(start1=1)
  edge Z O :: start0=1
  edge Z BAD :: start1=1 & !(start0=1)
  edge O O :: !(start0=1) & !(start1=1)
  edge O Z :: start1=1
  edge O BAD :: start0=1 & !(start1=1)
  edge BAD BAD
  accept invariance Z O
end

automaton lc_task0_recurs
  # under fair token movement and fair task completion, task 0 is
  # started infinitely often
  states W S
  initial W
  edge W S :: start0=1
  edge W W :: !(start0=1)
  edge S S :: start0=1
  edge S W :: !(start0=1)
  accept recurrence W->S, S->S
end

# --- fairness: no one holds the token forever, no task runs forever ----
{fairness}
"""


def spec(n: int = 18) -> DesignSpec:
    """Build the Milner scheduler benchmark for ``n`` cyclers."""
    return make_spec("scheduler", verilog(n), pif(n), {"n": n})
