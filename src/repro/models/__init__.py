"""The Table-1 benchmark designs, regenerated from the paper's description.

Each module exports ``verilog(**params)``, ``pif(**params)`` and
``spec(**params)``; :func:`get_spec` builds a design by its Table-1 name.
``TABLE1`` lists the names in the paper's row order.
"""


from repro.models import dcnew, gallery, gigamax, hier, mdlc, philos, pingpong, scheduler
from repro.models.base import DesignSpec, make_spec
from repro.models.gallery import GALLERY

_BUILDERS = {
    "philos": philos.spec,
    "ping pong": pingpong.spec,
    "gigamax": gigamax.spec,
    "scheduler": scheduler.spec,
    "dcnew": dcnew.spec,
    "2mdlc": mdlc.spec,
    # hierarchical variants: N replicas of one module shape each
    # (the shared-shape encoder's showcase; see docs/hierarchy.md)
    "philos_hier": hier.philos_spec,
    "scheduler_hier": hier.scheduler_spec,
    "gigamax_hier": hier.gigamax_spec,
}

TABLE1 = ["philos", "ping pong", "gigamax", "scheduler", "dcnew", "2mdlc"]

# the six Table-1 designs plus the gallery make the paper's "dozen or so
# small to medium-sized examples"
_BUILDERS.update(GALLERY)


def get_spec(name: str, **params) -> DesignSpec:
    """Build one of the Table-1 designs by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return builder(**params)


__all__ = [
    "DesignSpec",
    "GALLERY",
    "TABLE1",
    "gallery",
    "get_spec",
    "hier",
    "make_spec",
    "philos",
    "pingpong",
    "gigamax",
    "scheduler",
    "dcnew",
    "mdlc",
]
