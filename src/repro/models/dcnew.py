"""dcnew — a distributed bus/transfer controller (Table 1: ~2.1e5 states).

Four nodes arbitrate for a shared transfer bus.  An idle node may raise a
request; when the bus is free a non-deterministic arbiter grants one
requester, which becomes bus master for a non-deterministically chosen
transfer length counted down by a 5-bit counter; a 5-bit credit counter
accumulates completed transfers.  The counters push the reachable space
into the paper's dcnew regime (hundreds of thousands of states) while
the control skeleton stays simple.

Table-1 row: 7 CTL formulas, 1 language-containment property.
"""

from __future__ import annotations

from repro.models.base import DesignSpec, make_spec

DEFAULT_PARAMS = {"n": 4, "width": 6}


def verilog(n: int = 4, width: int = 6) -> str:
    if not 2 <= n <= 4:
        raise ValueError("dcnew model supports 2..4 nodes")
    if not 2 <= width <= 6:
        raise ValueError("counter width must be 2..6")
    nodes = ", ".join(f"node{i}" for i in range(n))
    top = (1 << width) - 1
    nd_pick = ", ".join(str(i) for i in range(n))
    nd_len = ", ".join(str(v) for v in range(1, 1 << width))
    lines = [
        f"// dcnew: distributed transfer controller, N={n} (generated)",
        "module dcnew;",
        f"  enum {{ idle, req, master }} reg {nodes};",
        "  enum { b_free, b_busy } reg bus;",
        f"  reg [{width - 1}:0] xfer;",
        f"  reg [{width - 1}:0] credits;",
        "  wire done;",
        "",
        "  initial bus = b_free;",
        "  initial xfer = 0;",
        "  initial credits = 0;",
    ]
    for i in range(n):
        lines.append(f"  initial node{i} = idle;")
    lines += [
        "",
        f"  wire [{max(1, (n - 1).bit_length()) - 1}:0] choose;",
        f"  assign choose = $ND({nd_pick});",
        "  assign done = (bus == b_busy) && (xfer == 0);",
        "",
    ]
    for i in range(n):
        lines += [
            f"  wire want{i}, grant{i};",
            f"  assign want{i} = $ND(0, 1);",
            f"  assign grant{i} = (bus == b_free) && (choose == {i}) && "
            f"(node{i} == req);",
            "  always @(posedge clk) begin",
            f"    case (node{i})",
            f"      idle:   node{i} <= want{i} ? req : idle;",
            f"      req:    node{i} <= grant{i} ? master : req;",
            f"      master: node{i} <= done ? idle : master;",
            "    endcase",
            "  end",
            "",
        ]
    any_grant = " || ".join(f"grant{i}" for i in range(n))
    lines += [
        "  wire granted;",
        f"  assign granted = {any_grant};",
        "  always @(posedge clk) begin",
        "    if (granted) bus <= b_busy;",
        "    else if (done) bus <= b_free;",
        "    else bus <= bus;",
        "  end",
        "",
        "  always @(posedge clk) begin",
        f"    if (granted) xfer <= $ND({nd_len});",
        "    else if (bus == b_busy && xfer != 0) xfer <= xfer - 1;",
        "    else xfer <= xfer;",
        "  end",
        "",
        "  always @(posedge clk) begin",
        f"    if (done) credits <= (credits == {top}) ? 0 : credits + 1;",
        "    else credits <= credits;",
        "  end",
        "endmodule",
    ]
    return "\n".join(lines) + "\n"


def pif(n: int = 4, width: int = 6) -> str:
    no_two_masters = " & ".join(
        f"!(node{i}=master & node{j}=master)"
        for i in range(n)
        for j in range(i + 1, n)
    )
    some_master = " | ".join(f"node{i}=master" for i in range(n))
    return f"""\
# --- 7 CTL properties ------------------------------------------------
ctl single_master :: AG ({no_two_masters})
ctl free_means_unmastered :: AG (bus=b_free -> !({some_master}))
ctl master_holds_bus :: AG (node0=master -> bus=b_busy)
ctl mastery_reachable :: AG EF node0=master
ctl request_can_win :: AG (node0=req -> EF node0=master)
ctl bus_recoverable :: AG EF bus=b_free
ctl transfers_finish :: AG (bus=b_busy -> AF bus=b_free)

# --- 1 language-containment property --------------------------------
automaton lc_single_master
  states A B
  initial A
  edge A A :: {no_two_masters}
  edge A B :: !({no_two_masters})
  edge B B
  accept invariance A
end
"""


def spec(n: int = 4, width: int = 6) -> DesignSpec:
    """Build the dcnew benchmark."""
    return make_spec("dcnew", verilog(n, width), pif(n, width),
                     {"n": n, "width": width})
