"""gigamax — cache consistency protocol (Table 1: 630 states, 1 LC, 9 CTL).

A synchronous abstraction of the Encore Gigamax cache coherence protocol
(McMillan-Schwalbe, the paper's [20]): N processors share one bus line.
Each cache line is ``invalid``/``shared``/``owned``; bus transactions are
two-phase (a non-deterministic request is latched, then served):

* ``rd`` — requester moves to shared, an owner is snooped down to shared;
* ``wr`` — requester takes ownership, every other cache is invalidated,
  memory goes dirty;
* ``rp`` — requester drops the line (an owner writes back: memory clean).

The shipped properties are the protocol's coherence invariants (single
writer, dirty-memory accounting) plus bus-phase and reachability checks
— 9 CTL formulas and 1 language-containment automaton, matching the
paper's Table-1 row.
"""

from __future__ import annotations

from repro.models.base import DesignSpec, make_spec

DEFAULT_PARAMS = {"n": 3}


def verilog(n: int = 3) -> str:
    if not 2 <= n <= 4:
        raise ValueError("gigamax model supports 2..4 processors")
    caches = ", ".join(f"cache{i}" for i in range(n))
    nd_proc = ", ".join(str(i) for i in range(n))
    lines = [
        f"// Gigamax-style bus cache coherence, N={n} (generated)",
        "module gigamax;",
        f"  enum {{ inv, shr, own }} reg {caches};",
        "  enum { n_op, rd, wr, rp } reg pend_op;",
        "  reg [1:0] pend_proc;",
        "  enum { ph_idle, ph_serve } reg phase;",
        "  enum { clean, dirty } reg mem;",
        "",
        "  initial phase = ph_idle;",
        "  initial pend_op = n_op;",
        "  initial pend_proc = 0;",
        "  initial mem = clean;",
    ]
    for i in range(n):
        lines.append(f"  initial cache{i} = inv;")
    lines += [
        "",
        "  wire next_is_serve;",
        "  assign next_is_serve = (phase == ph_idle);",
        "",
        "  always @(posedge clk) begin",
        "    if (phase == ph_idle) begin",
        "      phase <= ph_serve;",
        "      pend_op <= $ND(rd, wr, rp);",
        f"      pend_proc <= $ND({nd_proc});",
        "    end else begin",
        "      phase <= ph_idle;",
        "      pend_op <= n_op;",
        "      pend_proc <= pend_proc;",
        "    end",
        "  end",
        "",
    ]
    for i in range(n):
        lines += [
            "  always @(posedge clk) begin",
            f"    if (phase == ph_serve && pend_proc == {i}) begin",
            "      if (pend_op == rd)",
            f"        cache{i} <= (cache{i} == inv) ? shr : cache{i};",
            "      else if (pend_op == wr)",
            f"        cache{i} <= own;",
            "      else if (pend_op == rp)",
            f"        cache{i} <= inv;",
            f"      else cache{i} <= cache{i};",
            "    end else if (phase == ph_serve && pend_op == wr) begin",
            f"      cache{i} <= inv;  // invalidate on another writer",
            "    end else if (phase == ph_serve && pend_op == rd) begin",
            f"      cache{i} <= (cache{i} == own) ? shr : cache{i};  // snoop",
            "    end",
            f"    else cache{i} <= cache{i};",
            "  end",
            "",
        ]
    owner_terms = " : ".join(
        [f"(pend_proc == {i}) ? (cache{i} == own)" for i in range(n)] + ["0"]
    )
    lines += [
        "  wire replacing_owner;",
        f"  assign replacing_owner = {owner_terms};",
        "  always @(posedge clk) begin",
        "    if (phase == ph_serve && pend_op == wr)",
        "      mem <= dirty;",
        "    else if (phase == ph_serve && pend_op == rp && replacing_owner)",
        "      mem <= clean;  // write-back on owner replacement",
        "    else mem <= mem;",
        "  end",
        "endmodule",
    ]
    return "\n".join(lines) + "\n"


def pif(n: int = 3) -> str:
    others = lambda i: " & ".join(
        f"cache{j}=inv" for j in range(n) if j != i
    )
    no_two_owners = " & ".join(
        f"!(cache{i}=own & cache{j}=own)"
        for i in range(n)
        for j in range(i + 1, n)
    )
    all_inv = " & ".join(f"cache{i}=inv" for i in range(n))
    some_owner = " | ".join(f"cache{i}=own" for i in range(n))
    props = [
        f"ctl single_writer_{i} :: AG (cache{i}=own -> ({others(i)}))"
        for i in range(n)
    ]
    props += [
        f"ctl no_two_owners :: AG ({no_two_owners})",
        f"ctl clean_means_unowned :: AG (mem=clean -> !({some_owner}))",
        "ctl ownership_reachable :: AG EF cache0=own",
        "ctl serve_then_idle :: AG (phase=ph_serve -> AX phase=ph_idle)",
        "ctl idle_then_serve :: AG (phase=ph_idle -> AX phase=ph_serve)",
        f"ctl flushable :: AG EF ({all_inv})",
    ]
    return (
        "# --- 9 CTL properties -------------------------------------------\n"
        + "\n".join(props)
        + f"""

# --- 1 language-containment property ------------------------------
automaton lc_single_writer
  states A B
  initial A
  edge A A :: {no_two_owners}
  edge A B :: !({no_two_owners})
  edge B B
  accept invariance A
end
"""
    )


def spec(n: int = 3) -> DesignSpec:
    """Build the gigamax benchmark for ``n`` processors."""
    return make_spec("gigamax", verilog(n), pif(n), {"n": n})
