"""ping pong — the toy two-process handshake of Table 1 (3 reached states).

Two processes bat a request back and forth: ``ping`` serves, hands over
to ``pong``, which hands back.  The paper checks 6 language-containment
properties and 6 CTL formulas on it; we ship the same counts.
"""

from __future__ import annotations

from repro.models.base import DesignSpec, make_spec

DEFAULT_PARAMS = {}


def verilog() -> str:
    return """\
// ping pong: two processes alternating service.
module pingpong;
  enum { idle, ping, pong } reg state;
  wire serving, ping_now, pong_now;

  initial state = idle;

  always @(posedge clk) begin
    case (state)
      idle: state <= ping;
      ping: state <= pong;
      pong: state <= ping;
    endcase
  end

  assign ping_now = (state == ping);
  assign pong_now = (state == pong);
  assign serving = ping_now || pong_now;
endmodule
"""


def pif() -> str:
    return """\
# --- 6 CTL properties ------------------------------------------------
ctl no_double_serve  :: AG !(ping_now=1 & pong_now=1)
ctl idle_starts_ping :: AG (state=idle -> AX state=ping)
ctl ping_then_pong   :: AG (state=ping -> AX state=pong)
ctl pong_then_ping   :: AG (state=pong -> AX state=ping)
ctl always_serves    :: AF serving=1
ctl ping_recurs      :: AG AF state=ping

# --- 6 language-containment properties --------------------------------
automaton lc_no_double_serve
  states A B
  initial A
  edge A A :: !(ping_now=1 & pong_now=1)
  edge A B :: ping_now=1 & pong_now=1
  edge B B
  accept invariance A
end

automaton lc_idle_once
  # after leaving idle the system never returns to idle
  states START RUN BAD
  initial START
  edge START START :: state=idle
  edge START RUN   :: !(state=idle)
  edge RUN RUN     :: !(state=idle)
  edge RUN BAD     :: state=idle
  edge BAD BAD
  accept invariance START RUN
end

automaton lc_alternation
  # ping and pong strictly alternate once running
  states W P Q BAD
  initial W
  edge W W :: state=idle
  edge W P :: state=ping
  edge P Q :: state=pong
  edge P BAD :: !(state=pong)
  edge Q P :: state=ping
  edge Q BAD :: !(state=ping)
  edge BAD BAD
  accept invariance W P Q
end

automaton lc_ping_recurs
  # the ping state recurs forever
  states A P
  initial A
  edge A A :: !(state=ping)
  edge A P :: state=ping
  edge P P :: state=ping
  edge P A :: !(state=ping)
  accept recurrence A->P, P->P
end

automaton lc_eventually_serving
  # serving happens within two steps of start
  states S0 S1 OK BAD
  initial S0
  edge S0 S1 :: serving=0
  edge S0 OK :: serving=1
  edge S1 OK :: serving=1
  edge S1 BAD :: serving=0
  edge OK OK
  edge BAD BAD
  accept invariance S0 S1 OK
end

automaton lc_pong_after_ping
  states A WAIT BAD
  initial A
  edge A A    :: !(state=ping)
  edge A WAIT :: state=ping
  edge WAIT A   :: state=pong
  edge WAIT BAD :: !(state=pong)
  edge BAD BAD
  accept invariance A WAIT
end
"""


def spec() -> DesignSpec:
    """Build the ping pong benchmark."""
    return make_spec("ping pong", verilog(), pif(), DEFAULT_PARAMS)
