"""CTL formula AST (fair CTL, paper §5.2).

Atoms are multi-valued: ``var = value`` (or ``var in {v1, v2}``); a bare
variable name abbreviates ``var = 1`` for binary nets.  Universal
operators are kept in the AST for faithful printing and debugging, and
rewritten into existential duals inside the model checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Formula:
    """Base class; all formulas are immutable and hashable."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalseF(Formula):
    def __str__(self) -> str:
        return "FALSE"


@dataclass(frozen=True)
class Atom(Formula):
    """``var in values`` over a system net (latch or wire)."""

    var: str
    values: Tuple[str, ...]

    def __str__(self) -> str:
        if len(self.values) == 1:
            return f"{self.var}={self.values[0]}"
        return "{}in{{{}}}".format(self.var, ",".join(self.values))


@dataclass(frozen=True)
class Not(Formula):
    sub: Formula

    def __str__(self) -> str:
        return f"!{_paren(self.sub)}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{_paren(self.left)} & {_paren(self.right)}"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{_paren(self.left)} | {_paren(self.right)}"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{_paren(self.left)} -> {_paren(self.right)}"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{_paren(self.left)} <-> {_paren(self.right)}"


@dataclass(frozen=True)
class EX(Formula):
    sub: Formula

    def __str__(self) -> str:
        return f"EX {_paren(self.sub)}"


@dataclass(frozen=True)
class EF(Formula):
    sub: Formula

    def __str__(self) -> str:
        return f"EF {_paren(self.sub)}"


@dataclass(frozen=True)
class EG(Formula):
    sub: Formula

    def __str__(self) -> str:
        return f"EG {_paren(self.sub)}"


@dataclass(frozen=True)
class EU(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"E[{self.left} U {self.right}]"


@dataclass(frozen=True)
class AX(Formula):
    sub: Formula

    def __str__(self) -> str:
        return f"AX {_paren(self.sub)}"


@dataclass(frozen=True)
class AF(Formula):
    sub: Formula

    def __str__(self) -> str:
        return f"AF {_paren(self.sub)}"


@dataclass(frozen=True)
class AG(Formula):
    sub: Formula

    def __str__(self) -> str:
        return f"AG {_paren(self.sub)}"


@dataclass(frozen=True)
class AU(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"A[{self.left} U {self.right}]"


def _paren(f: Formula) -> str:
    text = str(f)
    if isinstance(f, (Atom, TrueF, FalseF, Not, EX, EF, EG, AX, AF, AG, EU, AU)):
        return text
    return f"({text})"


def is_propositional(f: Formula) -> bool:
    """True iff ``f`` contains no temporal operator.

    Propositional ``AG`` bodies get the forward-reachability fast path
    (invariance optimization, paper §5.2 item 3).
    """
    if isinstance(f, (Atom, TrueF, FalseF)):
        return True
    if isinstance(f, Not):
        return is_propositional(f.sub)
    if isinstance(f, (And, Or, Implies, Iff)):
        return is_propositional(f.left) and is_propositional(f.right)
    return False


def atom(var: str, values) -> Atom:
    """Atom ``var in values`` (single value or iterable)."""
    if isinstance(values, (str, int)):
        values = (str(values),)
    return Atom(var, tuple(str(v) for v in values))
