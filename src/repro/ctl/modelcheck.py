"""Fair CTL model checking (paper §5.2).

The checker evaluates formulas bottom-up over the product machine's state
space with the standard fixpoint characterizations; under fairness
constraints it uses the fair semantics of Emerson-Lei/McMillan:

* ``fair``            — states with some fair path (``EG_fair TRUE``),
* ``EX_fair f``       — ``EX (f & fair)``,
* ``E[f U g]_fair``   — ``E[f U (g & fair)]``,
* ``EG_fair f``       — states with a fair path staying in ``f``
  (backward closure from the fair cycles of the ``f``-restricted graph).

Universal operators are rewritten to existential duals.  Two of the
paper's optimizations are implemented:

* **Invariance fast path** — ``AG p`` with propositional ``p`` is checked
  by forward reachability with per-frontier early failure detection
  (§5.2 item 3 and §5.4), which also yields shortest counterexample
  prefixes for free.
* **Reached-state don't cares** — with ``use_dc=True`` intermediate BDDs
  are minimized against the reachable care set using Coudert-Madre
  restrict (§1 item 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.automata.fairness import FairnessSpec, NormalizedFairness
from repro.ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    And,
    Atom,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
    is_propositional,
)
from repro.ctl.parser import parse_ctl
from repro.lc.faircycle import FairGraph, all_fair_states
from repro.network.quantify import Conjunct, multiply_and_quantify
from repro.perf import EngineStats


@dataclass
class CtlResult:
    """Outcome of checking one formula against the initial states."""

    formula: Formula
    holds: bool
    satisfying: int
    failing_init: int
    seconds: float
    used_fast_path: bool = False
    counterexample_depth: Optional[int] = None


class ModelChecker:
    """Fair CTL model checker over a built :class:`SymbolicFsm`."""

    def __init__(
        self,
        fsm,
        fairness: Optional[FairnessSpec] = None,
        use_dc: bool = False,
        reached: Optional[int] = None,
    ):
        self.fsm = fsm
        self.bdd = fsm.bdd
        self.stats: EngineStats = getattr(fsm, "stats", None) or EngineStats(fsm.bdd)
        self.graph = FairGraph(fsm)
        self.fairness = fairness if fairness is not None else FairnessSpec()
        self.normalized: NormalizedFairness = self.fairness.normalize(
            self.bdd, self.bdd.true
        )
        self.space = fsm.state_domain()
        self.use_dc = use_dc
        self._reached = reached
        self._fair: Optional[int] = None
        self._cache: Dict[Formula, int] = {}
        # Long-lived nodes become GC roots (auto-GC safe points may run
        # inside the fixpoint loops below).
        self.bdd.register_root("mc.space", self.space)
        self.bdd.register_root_group("mc.fairness", self.normalized.nodes())
        if reached is not None:
            self.bdd.register_root("mc.reached", reached)

    # ------------------------------------------------------------------
    # Fairness
    # ------------------------------------------------------------------

    @property
    def has_fairness(self) -> bool:
        return not self.normalized.trivial

    def fair_states(self) -> int:
        """States with at least one fair path (all of ``space`` if trivial
        fairness would make every infinite path fair *and* the relation is
        total on the reachable part; computed exactly regardless)."""
        if self._fair is None:
            if self.has_fairness:
                self._fair = all_fair_states(self.graph, self.normalized, self.space)
            else:
                self._fair = self.space
            self.bdd.register_root("mc.fair", self._fair)
        return self._fair

    def reached(self) -> int:
        if self._reached is None:
            self._reached = self.fsm.reachable().reached
        return self._reached

    def _dc(self, f: int) -> int:
        """Minimize ``f`` with reached-state don't cares (values outside the
        reachable set are free; sound because successors of reached states
        are reached, so fixpoints restricted this way agree on reached)."""
        if not self.use_dc:
            return f
        care = self.reached()
        if care == self.bdd.true:
            return f
        return self.bdd.and_(self.bdd.restrict_dc(f, care), self.space)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def eval(self, formula) -> int:
        """Set of states satisfying ``formula`` (BDD over present state)."""
        if isinstance(formula, str):
            formula = parse_ctl(formula)
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        result = self._eval(formula)
        self._cache[formula] = result
        self.bdd.register_root(f"mc.sat.{len(self._cache)}", result)
        return result

    def _eval(self, f: Formula) -> int:
        bdd = self.bdd
        if isinstance(f, TrueF):
            return self.space
        if isinstance(f, FalseF):
            return bdd.false
        if isinstance(f, Atom):
            return self._atom_states(f)
        if isinstance(f, Not):
            return bdd.and_(bdd.not_(self.eval(f.sub)), self.space)
        if isinstance(f, And):
            return bdd.and_(self.eval(f.left), self.eval(f.right))
        if isinstance(f, Or):
            return bdd.or_(self.eval(f.left), self.eval(f.right))
        if isinstance(f, Implies):
            return self._eval(Or(Not(f.left), f.right))
        if isinstance(f, Iff):
            return bdd.and_(
                self._eval(Implies(f.left, f.right)),
                self._eval(Implies(f.right, f.left)),
            )
        if isinstance(f, EX):
            return self.ex(self.eval(f.sub))
        if isinstance(f, EU):
            return self.eu(self.eval(f.left), self.eval(f.right))
        if isinstance(f, EG):
            return self.eg(self.eval(f.sub))
        if isinstance(f, EF):
            return self.eu(self.space, self.eval(f.sub))
        # Universal duals.
        if isinstance(f, AX):
            return bdd.and_(bdd.not_(self.ex(bdd.not_(self.eval(f.sub)))), self.space)
        if isinstance(f, AG):
            inner = self.eval(f.sub)
            ef_not = self.eu(self.space, bdd.and_(bdd.not_(inner), self.space))
            return bdd.and_(bdd.not_(ef_not), self.space)
        if isinstance(f, AF):
            eg_not = self.eg(bdd.and_(bdd.not_(self.eval(f.sub)), self.space))
            return bdd.and_(bdd.not_(eg_not), self.space)
        if isinstance(f, AU):
            # A[f U g] = !(E[!g U (!f & !g)] | EG !g)
            nf = bdd.and_(bdd.not_(self.eval(f.left)), self.space)
            ng = bdd.and_(bdd.not_(self.eval(f.right)), self.space)
            bad = bdd.or_(self.eu(ng, bdd.and_(nf, ng)), self.eg(ng))
            return bdd.and_(bdd.not_(bad), self.space)
        raise TypeError(f"unknown formula node {f!r}")

    def _atom_states(self, f: Atom) -> int:
        """Project an atom onto the state variables.

        Atoms over latches are direct literals.  Atoms over combinational
        nets are projected existentially through the network's table
        conjuncts: the result holds in state ``x`` iff *some* resolution
        of the combinational (possibly non-deterministic) logic makes the
        atom true — the "may" semantics; its negation is the "must not"
        set.  For deterministic logic the two coincide.
        """
        bdd = self.bdd
        var = self.fsm.var(f.var)
        x_bits = set(self.fsm.x_bits())
        if set(var.bits) <= x_bits:
            return bdd.and_(var.literal(f.values), self.space)
        literal = var.literal(f.values)
        y_bits = set(self.fsm.y_bits())
        pool = [
            c
            for c in self.fsm.conjuncts
            if not (set(c.support) & y_bits)
        ]
        pool.append(
            Conjunct(
                node=literal, support=frozenset(bdd.support(literal)), label="atom"
            )
        )
        quantify = set()
        for c in pool:
            quantify |= set(c.support)
        quantify -= x_bits
        result = multiply_and_quantify(bdd, pool, quantify, method="greedy")
        return bdd.and_(result.node, self.space)

    # -- fair fixpoint operators -----------------------------------------

    def ex(self, states: int) -> int:
        target = self.bdd.and_(states, self.fair_states())
        return self._dc(self.bdd.and_(self.graph.pre(target), self.space))

    def eu(self, hold: int, target: int) -> int:
        bdd = self.bdd
        tracer = self.stats.tracer
        target = bdd.and_(target, self.fair_states())
        reach = bdd.and_(target, self.space)
        iteration = 0
        while True:
            step = bdd.and_(hold, self.graph.pre(reach))
            new = self._dc(bdd.or_(reach, bdd.and_(step, self.space)))
            if tracer.enabled:
                tracer.instant(
                    "mc.eu_iter", cat="mc",
                    iteration=iteration,
                    reach_nodes=bdd.size(new),
                    delta_nodes=bdd.size(bdd.diff(new, reach)),
                    converged=new == reach,
                )
            if new == reach:
                return reach
            reach = new
            iteration += 1
            # Safe point: everything the fixpoint holds is passed along.
            bdd.maybe_gc(extra_roots=[hold, target, reach])

    def eg(self, states: int) -> int:
        bdd = self.bdd
        tracer = self.stats.tracer
        states = bdd.and_(states, self.space)
        if self.has_fairness:
            return all_fair_states(self.graph, self.normalized, states)
        z = states
        iteration = 0
        while True:
            nz = bdd.and_(z, self.graph.pre(z))
            if tracer.enabled:
                tracer.instant(
                    "mc.eg_iter", cat="mc",
                    iteration=iteration,
                    z_nodes=bdd.size(nz),
                    delta_nodes=bdd.size(bdd.diff(z, nz)),
                    converged=nz == z,
                )
            if nz == z:
                return z
            z = nz
            iteration += 1
            bdd.maybe_gc(extra_roots=[states, z])

    # ------------------------------------------------------------------
    # Checking against initial states
    # ------------------------------------------------------------------

    def check(self, formula, fast_invariant: bool = True) -> CtlResult:
        """Check ``formula`` on all initial states.

        ``AG <propositional>`` uses the forward-reachability fast path
        with early failure detection unless ``fast_invariant=False``.
        The fast path only applies under trivial fairness: forward
        reachability implements the plain semantics, and under fair
        semantics a reachable violation on no fair path is no violation.
        """
        if isinstance(formula, str):
            formula = parse_ctl(formula)
        with self.stats.phase("mc") as timer:
            if (
                fast_invariant
                and not self.has_fairness
                and isinstance(formula, AG)
                and is_propositional(formula.sub)
            ):
                result = self._check_invariant(formula)
            else:
                sat = self.eval(formula)
                failing = self.bdd.diff(self.fsm.init, sat)
                result = CtlResult(
                    formula=formula,
                    holds=failing == self.bdd.false,
                    satisfying=sat,
                    failing_init=failing,
                    seconds=0.0,
                )
        result.seconds = timer.seconds
        return result

    def _check_invariant(self, formula: AG) -> CtlResult:
        """Forward reachability with per-frontier property checks (§5.4)."""
        bdd = self.bdd
        good = self.eval(formula.sub)
        bad_depth: List[int] = []

        def observer(depth: int, frontier: int) -> None:
            if bdd.diff(bdd.and_(frontier, self.space), good) != bdd.false:
                bad_depth.append(depth)
                if self.stats.tracer.enabled:
                    self.stats.tracer.instant(
                        "mc.early_fail", cat="mc", depth=depth
                    )
                raise _EarlyFailure()

        try:
            result = self.fsm.reachable(observer=observer)
            reached = result.reached
            self._reached = reached
            bdd.register_root("mc.reached", reached)
            violated = bdd.diff(bdd.and_(reached, self.space), good) != bdd.false
        except _EarlyFailure:
            violated = True
        if violated:
            sat = bdd.false
            failing = self.fsm.init
        else:
            # Every reachable state only visits reachable states, all of
            # which satisfy the body, so the whole reached set models AG p.
            sat = bdd.and_(reached, self.space)
            failing = bdd.diff(self.fsm.init, sat)
        return CtlResult(
            formula=formula,
            holds=not violated,
            satisfying=sat,
            failing_init=failing,
            seconds=0.0,
            used_fast_path=True,
            counterexample_depth=bad_depth[0] if bad_depth else None,
        )


class _EarlyFailure(Exception):
    pass


def check_ctl(
    fsm,
    formula,
    fairness: Optional[FairnessSpec] = None,
    use_dc: bool = False,
) -> CtlResult:
    """One-shot convenience wrapper around :class:`ModelChecker`."""
    checker = ModelChecker(fsm, fairness=fairness, use_dc=use_dc)
    return checker.check(formula)
