"""Recursive-descent parser for CTL formulas.

Grammar (precedence low to high)::

    formula  := iff
    iff      := implies ( '<->' implies )*
    implies  := or   ( '->' implies )?          (right associative)
    or       := and  ( ('|' | '+') and )*
    and      := unary ( ('&' | '*') unary )*
    unary    := '!' unary
              | ('AG'|'AF'|'AX'|'EG'|'EF'|'EX') unary
              | ('A'|'E') '[' formula 'U' formula ']'
              | 'TRUE' | 'FALSE'
              | atom
              | '(' formula ')'
    atom     := name ( '=' value | 'in' '{' value (',' value)* '}' )?

A bare name abbreviates ``name=1`` (binary nets).  Names may contain
dots and ``#`` (flattened instance paths and next-state suffixes).
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    And,
    Atom,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
)


class CtlParseError(Exception):
    """Raised on malformed CTL text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow><->|->)
  | (?P<op>[!&|*+()\[\]{}=,])
  | (?P<name>[A-Za-z_][A-Za-z0-9_.\#\-']*|[0-9]+)
    """,
    re.VERBOSE,
)

_TEMPORAL_UNARY = {"AG": AG, "AF": AF, "AX": AX, "EG": EG, "EF": EF, "EX": EX}


def tokenize(text: str) -> List[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise CtlParseError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        if match.lastgroup != "ws":
            tokens.append(match.group())
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise CtlParseError("unexpected end of formula")
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise CtlParseError(f"expected {token!r}, got {got!r}")

    # precedence climbing ------------------------------------------------

    def formula(self) -> Formula:
        return self.iff()

    def iff(self) -> Formula:
        left = self.implies()
        while self.peek() == "<->":
            self.next()
            left = Iff(left, self.implies())
        return left

    def implies(self) -> Formula:
        left = self.or_()
        if self.peek() == "->":
            self.next()
            return Implies(left, self.implies())
        return left

    def or_(self) -> Formula:
        left = self.and_()
        while self.peek() in ("|", "+"):
            self.next()
            left = Or(left, self.and_())
        return left

    def and_(self) -> Formula:
        left = self.unary()
        while self.peek() in ("&", "*"):
            self.next()
            left = And(left, self.unary())
        return left

    def unary(self) -> Formula:
        tok = self.peek()
        if tok is None:
            raise CtlParseError("unexpected end of formula")
        if tok == "!":
            self.next()
            return Not(self.unary())
        if tok == "(":
            self.next()
            inner = self.formula()
            self.expect(")")
            return inner
        if tok in _TEMPORAL_UNARY:
            self.next()
            return _TEMPORAL_UNARY[tok](self.unary())
        if tok in ("A", "E"):
            self.next()
            self.expect("[")
            left = self.formula()
            u = self.next()
            if u != "U":
                raise CtlParseError(f"expected 'U' in until, got {u!r}")
            right = self.formula()
            self.expect("]")
            return AU(left, right) if tok == "A" else EU(left, right)
        if tok in ("TRUE", "true", "1"):
            self.next()
            return TrueF()
        if tok in ("FALSE", "false", "0"):
            self.next()
            return FalseF()
        return self.atom()

    def atom(self) -> Formula:
        name = self.next()
        if not re.match(r"^[A-Za-z_]", name):
            raise CtlParseError(f"bad atom name {name!r}")
        if self.peek() == "=":
            self.next()
            value = self.next()
            return Atom(name, (value,))
        if self.peek() == "in":  # pragma: no cover - 'in' lexes as a name
            self.next()
            self.expect("{")
            values = [self.next()]
            while self.peek() == ",":
                self.next()
                values.append(self.next())
            self.expect("}")
            return Atom(name, tuple(values))
        if self.peek() == "{":
            self.next()
            values = [self.next()]
            while self.peek() == ",":
                self.next()
                values.append(self.next())
            self.expect("}")
            return Atom(name, tuple(values))
        return Atom(name, ("1",))


def parse_ctl(text: str) -> Formula:
    """Parse CTL text into a :class:`~repro.ctl.ast.Formula`."""
    parser = _Parser(tokenize(text))
    result = parser.formula()
    if parser.peek() is not None:
        raise CtlParseError(f"trailing input: {parser.tokens[parser.pos:]}")
    return result
