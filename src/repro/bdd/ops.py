"""Secondary BDD operations built on the manager primitives.

These helpers are shared by the network/verification layers: cube
arithmetic, cross-manager transfer, and small conveniences that do not
need access to manager internals beyond its public API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.bdd.manager import BDD, FALSE, TRUE


def transfer(f: int, src: BDD, dst: BDD, var_map: Dict[int, int]) -> int:
    """Copy function ``f`` from manager ``src`` into manager ``dst``.

    ``var_map`` maps source variable indices to destination variable
    indices.  The destination order may be arbitrary: the copy is done by
    Shannon expansion in destination order via ``ite``, so the result is
    canonical in ``dst``.  This is the basis of rebuild-based reordering.

    When the destination manager has ``batch_apply`` on, the copy runs
    level-by-level over the *source* DAG: one ``ite_many`` frontier per
    source level (children are always at deeper levels, so a bottom-up
    sweep resolves every node in ``depth`` batched calls).
    """
    if f < 2:
        return f
    if dst.batch_apply:
        return _transfer_batched(f, src, dst, var_map)
    # Explicit-stack postorder over *regular* source indices; complement
    # edges transfer for free (dst is complement-edged too), so a handle
    # maps to ``memo[index] ^ complement``.  Terminal handles are shared
    # constants in both managers.
    memo: Dict[int, int] = {}
    root = f >> 1
    stack = [(root, False)]
    while stack:
        idx, ready = stack.pop()
        if idx in memo:
            continue
        if not ready:
            stack.append((idx, True))
            for child in (src._lo[idx], src._hi[idx]):
                ci = child >> 1
                if ci and ci not in memo:
                    stack.append((ci, False))
            continue
        lo_h = src._lo[idx]
        hi_h = src._hi[idx]
        lo = (memo[lo_h >> 1] ^ (lo_h & 1)) if lo_h >= 2 else lo_h
        hi = (memo[hi_h >> 1] ^ (hi_h & 1)) if hi_h >= 2 else hi_h
        memo[idx] = dst.ite(dst.var(var_map[src._var[idx]]), hi, lo)
    return memo[root] ^ (f & 1)


def _transfer_batched(f: int, src: BDD, dst: BDD, var_map: Dict[int, int]) -> int:
    """Frontier-batched :func:`transfer` (one ``ite_many`` per src level)."""
    lo_np, hi_np, var_np = src._lo_np, src._hi_np, src._var_np
    n = src._n
    reach = np.zeros(n, dtype=bool)
    frontier = np.asarray([f >> 1], dtype=np.int64)
    while frontier.size:
        reach[frontier] = True
        kids = np.unique(np.concatenate(
            (lo_np[frontier] >> 1, hi_np[frontier] >> 1)
        ))
        kids = kids[kids != 0]
        frontier = kids[~reach[kids]]
    reach[0] = False
    idxs = np.flatnonzero(reach)
    lvl_of = np.asarray(src._level_of_var, dtype=np.int64)
    order = np.argsort(lvl_of[var_np[idxs]], kind="stable")
    idxs = idxs[order]
    lvls = lvl_of[var_np[idxs]]
    bounds = np.flatnonzero(lvls[1:] != lvls[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
    ends = np.concatenate((bounds, np.asarray([lvls.size], dtype=np.int64)))
    memo = np.zeros(n, dtype=np.int64)  # unused rows stay at TRUE
    for s, e in zip(starts[::-1], ends[::-1]):  # deepest level first
        group = idxs[s:e]
        dvar = dst.var(var_map[int(var_np[group[0]])])
        lo_h = lo_np[group]
        hi_h = hi_np[group]
        lo_m = np.where(lo_h >= 2, memo[lo_h >> 1] ^ (lo_h & 1), lo_h)
        hi_m = np.where(hi_h >= 2, memo[hi_h >> 1] ^ (hi_h & 1), hi_h)
        memo[group] = dst.ite_many(
            list(zip([dvar] * int(group.size), hi_m.tolist(), lo_m.tolist()))
        )
    return int(memo[f >> 1]) ^ (f & 1)


def cube_union_vars(bdd: BDD, cubes: Iterable[int]) -> int:
    """Positive cube over the union of the variables of several cubes."""
    vs = set()
    for c in cubes:
        vs.update(bdd.cube_vars(c))
    return bdd.cube(vs)


def cube_minus(bdd: BDD, cube: int, remove: Sequence[int]) -> int:
    """Drop variables ``remove`` from a positive cube."""
    removed = set(remove)
    return bdd.cube([v for v in bdd.cube_vars(cube) if v not in removed])


def minterm(bdd: BDD, assignment: Dict) -> int:
    """Cube BDD for a (partial) assignment of variables to booleans."""
    f = bdd.true
    items = sorted(
        (
            (k if isinstance(k, int) else bdd.var_index(k), bool(v))
            for k, v in assignment.items()
        ),
        key=lambda kv: bdd.level(kv[0]),
        reverse=True,
    )
    for var, val in items:
        lit = bdd.var(var) if val else bdd.nvar(var)
        f = bdd.and_(lit, f)
    return f


def iter_minterms(bdd: BDD, f: int, care_vars: Sequence) -> Iterable[Dict[int, bool]]:
    """Alias of :meth:`BDD.sat_iter` kept for API symmetry."""
    return bdd.sat_iter(f, care_vars)


def disjoint(bdd: BDD, f: int, g: int) -> bool:
    """True iff ``f & g`` is unsatisfiable."""
    return bdd.and_(f, g) == bdd.false


def implies(bdd: BDD, f: int, g: int) -> bool:
    """True iff ``f`` implies ``g`` (containment check on sets)."""
    return bdd.diff(f, g) == bdd.false


def count_nodes(bdd: BDD, functions: Iterable[int]) -> int:
    """Shared DAG size of a family of functions."""
    return bdd.size(list(functions))
