"""Secondary BDD operations built on the manager primitives.

These helpers are shared by the network/verification layers: cube
arithmetic, cross-manager transfer, and small conveniences that do not
need access to manager internals beyond its public API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.bdd.manager import BDD, FALSE, TRUE


def transfer(f: int, src: BDD, dst: BDD, var_map: Dict[int, int]) -> int:
    """Copy function ``f`` from manager ``src`` into manager ``dst``.

    ``var_map`` maps source variable indices to destination variable
    indices.  The destination order may be arbitrary: the copy is done by
    Shannon expansion in destination order via ``ite``, so the result is
    canonical in ``dst``.  This is the basis of rebuild-based reordering.
    """
    if f < 2:
        return f
    # Explicit-stack postorder over *regular* source indices; complement
    # edges transfer for free (dst is complement-edged too), so a handle
    # maps to ``memo[index] ^ complement``.  Terminal handles are shared
    # constants in both managers.
    memo: Dict[int, int] = {}
    root = f >> 1
    stack = [(root, False)]
    while stack:
        idx, ready = stack.pop()
        if idx in memo:
            continue
        if not ready:
            stack.append((idx, True))
            for child in (src._lo[idx], src._hi[idx]):
                ci = child >> 1
                if ci and ci not in memo:
                    stack.append((ci, False))
            continue
        lo_h = src._lo[idx]
        hi_h = src._hi[idx]
        lo = (memo[lo_h >> 1] ^ (lo_h & 1)) if lo_h >= 2 else lo_h
        hi = (memo[hi_h >> 1] ^ (hi_h & 1)) if hi_h >= 2 else hi_h
        memo[idx] = dst.ite(dst.var(var_map[src._var[idx]]), hi, lo)
    return memo[root] ^ (f & 1)


def cube_union_vars(bdd: BDD, cubes: Iterable[int]) -> int:
    """Positive cube over the union of the variables of several cubes."""
    vs = set()
    for c in cubes:
        vs.update(bdd.cube_vars(c))
    return bdd.cube(vs)


def cube_minus(bdd: BDD, cube: int, remove: Sequence[int]) -> int:
    """Drop variables ``remove`` from a positive cube."""
    removed = set(remove)
    return bdd.cube([v for v in bdd.cube_vars(cube) if v not in removed])


def minterm(bdd: BDD, assignment: Dict) -> int:
    """Cube BDD for a (partial) assignment of variables to booleans."""
    f = bdd.true
    items = sorted(
        (
            (k if isinstance(k, int) else bdd.var_index(k), bool(v))
            for k, v in assignment.items()
        ),
        key=lambda kv: bdd.level(kv[0]),
        reverse=True,
    )
    for var, val in items:
        lit = bdd.var(var) if val else bdd.nvar(var)
        f = bdd.and_(lit, f)
    return f


def iter_minterms(bdd: BDD, f: int, care_vars: Sequence) -> Iterable[Dict[int, bool]]:
    """Alias of :meth:`BDD.sat_iter` kept for API symmetry."""
    return bdd.sat_iter(f, care_vars)


def disjoint(bdd: BDD, f: int, g: int) -> bool:
    """True iff ``f & g`` is unsatisfiable."""
    return bdd.and_(f, g) == bdd.false


def implies(bdd: BDD, f: int, g: int) -> bool:
    """True iff ``f`` implies ``g`` (containment check on sets)."""
    return bdd.diff(f, g) == bdd.false


def count_nodes(bdd: BDD, functions: Iterable[int]) -> int:
    """Shared DAG size of a family of functions."""
    return bdd.size(list(functions))
