"""Secondary BDD operations built on the manager primitives.

These helpers are shared by the network/verification layers: cube
arithmetic, cross-manager transfer, and small conveniences that do not
need access to manager internals beyond its public API.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.bdd.manager import BDD, FALSE, TRUE


def transfer(f: int, src: BDD, dst: BDD, var_map: Dict[int, int]) -> int:
    """Copy function ``f`` from manager ``src`` into manager ``dst``.

    ``var_map`` maps source variable indices to destination variable
    indices.  The destination order may be arbitrary: the copy is done by
    Shannon expansion in destination order via ``ite``, so the result is
    canonical in ``dst``.  This is the basis of rebuild-based reordering.
    """
    src._ensure_depth()
    memo: Dict[int, int] = {}

    def walk(node: int) -> int:
        if node == FALSE:
            return dst.false
        if node == TRUE:
            return dst.true
        if node & 1:
            # Complement edges transfer for free: copy the regular node
            # once and flip the bit (dst is complement-edged too).
            return walk(node ^ 1) ^ 1
        got = memo.get(node)
        if got is not None:
            return got
        idx = node >> 1
        var = src._var[idx]
        lo = walk(src._lo[idx])
        hi = walk(src._hi[idx])
        res = dst.ite(dst.var(var_map[var]), hi, lo)
        memo[node] = res
        return res

    return walk(f)


def cube_union_vars(bdd: BDD, cubes: Iterable[int]) -> int:
    """Positive cube over the union of the variables of several cubes."""
    vs = set()
    for c in cubes:
        vs.update(bdd.cube_vars(c))
    return bdd.cube(vs)


def cube_minus(bdd: BDD, cube: int, remove: Sequence[int]) -> int:
    """Drop variables ``remove`` from a positive cube."""
    removed = set(remove)
    return bdd.cube([v for v in bdd.cube_vars(cube) if v not in removed])


def minterm(bdd: BDD, assignment: Dict) -> int:
    """Cube BDD for a (partial) assignment of variables to booleans."""
    f = bdd.true
    items = sorted(
        (
            (k if isinstance(k, int) else bdd.var_index(k), bool(v))
            for k, v in assignment.items()
        ),
        key=lambda kv: bdd.level(kv[0]),
        reverse=True,
    )
    for var, val in items:
        lit = bdd.var(var) if val else bdd.nvar(var)
        f = bdd.and_(lit, f)
    return f


def iter_minterms(bdd: BDD, f: int, care_vars: Sequence) -> Iterable[Dict[int, bool]]:
    """Alias of :meth:`BDD.sat_iter` kept for API symmetry."""
    return bdd.sat_iter(f, care_vars)


def disjoint(bdd: BDD, f: int, g: int) -> bool:
    """True iff ``f & g`` is unsatisfiable."""
    return bdd.and_(f, g) == bdd.false


def implies(bdd: BDD, f: int, g: int) -> bool:
    """True iff ``f`` implies ``g`` (containment check on sets)."""
    return bdd.diff(f, g) == bdd.false


def count_nodes(bdd: BDD, functions: Iterable[int]) -> int:
    """Shared DAG size of a family of functions."""
    return bdd.size(list(functions))
