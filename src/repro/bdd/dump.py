"""Export and inspection helpers for BDDs (Graphviz dot, level profiles,
and a JSON-able save/load format that round-trips complement edges)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.bdd.manager import BDD, BddError, FALSE, TRUE


def to_dot(bdd: BDD, roots: Mapping[str, int]) -> str:
    """Render the DAG of ``roots`` as a Graphviz ``dot`` string.

    Solid edges are high (then) branches, dashed edges low (else)
    branches — the conventional BDD drawing.  Complement arcs carry a
    dot-shaped arrowhead (``arrowhead=odot``), the CUDD convention;
    edges into terminals resolve their polarity into the box instead
    (an arc to the complemented terminal points at ``0``).
    """
    lines = [
        "digraph bdd {",
        '  rankdir=TB;',
        '  node [shape=circle];',
        '  f0 [label="0", shape=box];',
        '  f1 [label="1", shape=box];',
    ]
    seen = set()
    stack = []
    for name, root in roots.items():
        lines.append(f'  root_{_sanitize(name)} [label="{name}", shape=plaintext];')
        lines.append(f"  root_{_sanitize(name)} -> {_dot_id(root)}{_dot_attrs(root)};")
        stack.append(root >> 1)
    while stack:
        idx = stack.pop()
        if idx == 0 or idx in seen:
            continue
        seen.add(idx)
        var_name = bdd.var_name(bdd._var[idx])
        lines.append(f'  n{idx} [label="{var_name}"];')
        lo, hi = bdd._lo[idx], bdd._hi[idx]
        lines.append(f"  n{idx} -> {_dot_id(lo)}{_dot_attrs(lo, dashed=True)};")
        lines.append(f"  n{idx} -> {_dot_id(hi)}{_dot_attrs(hi)};")
        stack.append(lo >> 1)
        stack.append(hi >> 1)
    lines.append("}")
    return "\n".join(lines)


def _dot_id(handle: int) -> str:
    if handle == FALSE:
        return "f0"
    if handle == TRUE:
        return "f1"
    return f"n{handle >> 1}"


def _dot_attrs(handle: int, dashed: bool = False) -> str:
    attrs = []
    if dashed:
        attrs.append("style=dashed")
    if handle >= 2 and handle & 1:
        attrs.append("arrowhead=odot")
    return f" [{', '.join(attrs)}]" if attrs else ""


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


def level_profile(bdd: BDD, roots: Iterable[int]) -> Dict[int, int]:
    """Node count per level for the DAG rooted at ``roots``.

    Useful to spot where a bad variable order blows up.  Counts distinct
    physical nodes, so a function and its negation profile identically.
    """
    counts: Dict[int, int] = {}
    seen = set()
    stack = [r >> 1 for r in roots]
    while stack:
        idx = stack.pop()
        if idx == 0 or idx in seen:
            continue
        seen.add(idx)
        level = bdd.level(bdd._var[idx])
        counts[level] = counts.get(level, 0) + 1
        stack.append(bdd._lo[idx] >> 1)
        stack.append(bdd._hi[idx] >> 1)
    return dict(sorted(counts.items()))


def summarize(bdd: BDD, roots: Mapping[str, int]) -> str:
    """One-line-per-root size summary plus manager stats."""
    lines = []
    for name, root in sorted(roots.items()):
        lines.append(f"{name}: {bdd.size(root)} nodes")
    stats = bdd.stats()
    lines.append(
        "manager: {live_nodes} live nodes, {variables} vars, "
        "{cache_entries} cache entries, {gc_runs} GCs, "
        "unique table {unique_used}/{unique_slots}".format(**stats)
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

_FORMAT = "hsis-bdd-1"


def save(bdd: BDD, roots: Mapping[str, int]) -> Dict[str, object]:
    """Serialize ``roots`` to a JSON-able dict, complement arcs included.

    Nodes are listed children-first as ``[var_name, lo_ref, hi_ref]``.
    A *ref* mirrors the handle encoding without depending on it:
    ``(serial + 1) << 1 | complement`` for the ``serial``-th listed node,
    and ``0``/``1`` for the TRUE/FALSE terminals, so a complemented arc
    survives the trip byte-exactly.
    """
    serial_of: Dict[int, int] = {}
    nodes: List[List[object]] = []

    def ref_of(handle: int) -> int:
        if handle < 2:
            return handle
        return ((serial_of[handle >> 1] + 1) << 1) | (handle & 1)

    def emit(handle: int) -> None:
        # Iterative postorder over regular node indices.
        stack = [(handle >> 1, False)]
        while stack:
            idx, ready = stack.pop()
            if idx == 0 or (idx in serial_of and not ready):
                continue
            if ready:
                if idx in serial_of:
                    continue
                serial_of[idx] = len(nodes)
                nodes.append([
                    bdd.var_name(bdd._var[idx]),
                    ref_of(bdd._lo[idx]),
                    ref_of(bdd._hi[idx]),
                ])
            else:
                stack.append((idx, True))
                stack.append((bdd._lo[idx] >> 1, False))
                stack.append((bdd._hi[idx] >> 1, False))

    for root in roots.values():
        emit(root)
    return {
        "format": _FORMAT,
        "order": [bdd.var_name(v) for v in bdd.order],
        "nodes": nodes,
        "roots": {name: ref_of(root) for name, root in roots.items()},
    }


def load(bdd: BDD, payload: Mapping[str, object]) -> Dict[str, int]:
    """Rebuild saved roots inside ``bdd``; returns ``{name: handle}``.

    Variables named in the payload that ``bdd`` does not know yet are
    declared (in the payload's order).  Reconstruction goes through the
    public ``ite``, so the result is canonical under ``bdd``'s *current*
    order even if it differs from the order at save time.
    """
    if payload.get("format") != _FORMAT:
        raise BddError(f"unknown BDD dump format: {payload.get('format')!r}")
    for name in payload["order"]:
        if name not in bdd._var_of_name:
            bdd.add_var(name)
    built: List[int] = []

    def resolve(ref: int) -> int:
        serial = (ref >> 1) - 1
        h = bdd.true if serial < 0 else built[serial]
        return bdd.not_(h) if ref & 1 else h

    for var_name, lo_ref, hi_ref in payload["nodes"]:
        built.append(
            bdd.ite(bdd.var(var_name), resolve(hi_ref), resolve(lo_ref))
        )
    return {name: resolve(ref) for name, ref in dict(payload["roots"]).items()}
