"""Export and inspection helpers for BDDs (Graphviz dot, level profiles)."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.bdd.manager import BDD, FALSE, TRUE


def to_dot(bdd: BDD, roots: Mapping[str, int]) -> str:
    """Render the DAG of ``roots`` as a Graphviz ``dot`` string.

    Solid edges are high (then) branches, dashed edges low (else)
    branches — the conventional BDD drawing.
    """
    lines = [
        "digraph bdd {",
        '  rankdir=TB;',
        '  node [shape=circle];',
        '  f0 [label="0", shape=box];',
        '  f1 [label="1", shape=box];',
    ]
    seen = set()
    stack = []
    for name, root in roots.items():
        target = _dot_id(root)
        lines.append(f'  root_{_sanitize(name)} [label="{name}", shape=plaintext];')
        lines.append(f"  root_{_sanitize(name)} -> {target};")
        stack.append(root)
    while stack:
        n = stack.pop()
        if n in (FALSE, TRUE) or n in seen:
            continue
        seen.add(n)
        var_name = bdd.var_name(bdd._var[n])
        lines.append(f'  n{n} [label="{var_name}"];')
        lo, hi = bdd._lo[n], bdd._hi[n]
        lines.append(f"  n{n} -> {_dot_id(lo)} [style=dashed];")
        lines.append(f"  n{n} -> {_dot_id(hi)};")
        stack.append(lo)
        stack.append(hi)
    lines.append("}")
    return "\n".join(lines)


def _dot_id(node: int) -> str:
    if node == FALSE:
        return "f0"
    if node == TRUE:
        return "f1"
    return f"n{node}"


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


def level_profile(bdd: BDD, roots: Iterable[int]) -> Dict[int, int]:
    """Node count per level for the DAG rooted at ``roots``.

    Useful to spot where a bad variable order blows up.
    """
    counts: Dict[int, int] = {}
    seen = set()
    stack = list(roots)
    while stack:
        n = stack.pop()
        if n in (FALSE, TRUE) or n in seen:
            continue
        seen.add(n)
        level = bdd.level(bdd._var[n])
        counts[level] = counts.get(level, 0) + 1
        stack.append(bdd._lo[n])
        stack.append(bdd._hi[n])
    return dict(sorted(counts.items()))


def summarize(bdd: BDD, roots: Mapping[str, int]) -> str:
    """One-line-per-root size summary plus manager stats."""
    lines = []
    for name, root in sorted(roots.items()):
        lines.append(f"{name}: {bdd.size(root)} nodes")
    stats = bdd.stats()
    lines.append(
        "manager: {live_nodes} live nodes, {variables} vars, "
        "{cache_entries} cache entries, {gc_runs} GCs".format(**stats)
    )
    return "\n".join(lines)
