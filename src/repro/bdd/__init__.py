"""BDD/MDD package: the symbolic kernel of the HSIS reproduction.

Public surface:

* :class:`repro.bdd.manager.BDD` — ROBDD manager (unique table, ite,
  quantification, relational product, don't-care minimization, GC).
* :class:`repro.bdd.mdd.MddManager` / :class:`repro.bdd.mdd.MvVar` —
  multi-valued variables log-encoded onto boolean BDD variables, as
  required by BLIF-MV's multi-valued tables.
* :mod:`repro.bdd.ordering` — static variable-ordering heuristics for
  interacting FSMs and rebuild-based reordering/sifting.
* :mod:`repro.bdd.dump` — Graphviz export and statistics.
"""

from repro.bdd.manager import BDD, FALSE, TRUE, BddError
from repro.bdd.mdd import MddManager, MvVar
from repro.bdd import ops, ordering, dump

__all__ = [
    "BDD",
    "FALSE",
    "TRUE",
    "BddError",
    "MddManager",
    "MvVar",
    "ops",
    "ordering",
    "dump",
]
