"""Static variable-ordering heuristics and rebuild-based reordering.

HSIS derives its BDD variable order from the structure of the interacting
FSM network (footnote 1 of the paper cites Aziz-Tasiran-Brayton, "BDD
Variable Ordering for Interacting Finite State Machines", DAC 1994).  The
key ideas reproduced here:

* latches (state variables) of tightly communicating machines should sit
  close together in the order;
* present-state and next-state bits of one latch are interleaved
  (handled by :meth:`repro.bdd.mdd.MddManager.declare_pair`);
* combinational variables are placed near the latches they feed.

The affinity-based linear arrangement below is the classic greedy
approximation: repeatedly append the variable with the largest total edge
weight to the already-placed prefix.

Dynamic reordering is provided in *rebuild* form: a new manager is
created with the candidate order and all live roots are transferred
(:func:`repro.bdd.ops.transfer`).  ``sift`` searches single-variable
moves with that evaluator.  This trades the constant-factor speed of
in-place sifting for simplicity and safety — adequate at the scale of the
paper's designs, and honest about its cost.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.bdd.manager import BDD
from repro.bdd.ops import transfer


def affinity_order(
    groups: Sequence[Set[str]],
    all_items: Sequence[str],
) -> List[str]:
    """Order ``all_items`` so that items co-occurring in ``groups`` are close.

    ``groups`` are sets of item names that interact (e.g. the support sets
    of the relations of a BLIF-MV network); the affinity between two items
    is the number of groups containing both.  Returns a greedy linear
    arrangement starting from the item with the highest total affinity.
    Items never seen in any group keep their relative input order at the
    end.
    """
    affinity: Dict[Tuple[str, str], int] = {}
    weight: Dict[str, int] = {name: 0 for name in all_items}
    items_set = set(all_items)
    for group in groups:
        members = sorted(group & items_set)
        for i, a in enumerate(members):
            weight[a] += len(members) - 1
            for b in members[i + 1:]:
                key = (a, b)
                affinity[key] = affinity.get(key, 0) + 1

    def pair_affinity(a: str, b: str) -> int:
        if a > b:
            a, b = b, a
        return affinity.get((a, b), 0)

    remaining = [name for name in all_items]
    placed: List[str] = []
    placed_set: Set[str] = set()
    attraction: Dict[str, int] = {name: 0 for name in all_items}
    while remaining:
        if not placed:
            # Seed with the globally most-connected item.
            best = max(remaining, key=lambda n: (weight[n], -all_items.index(n)))
        else:
            best = max(
                remaining,
                key=lambda n: (attraction[n], weight[n], -all_items.index(n)),
            )
        placed.append(best)
        placed_set.add(best)
        remaining.remove(best)
        for n in remaining:
            attraction[n] += pair_affinity(best, n)
    return placed


def interacting_fsm_order(
    latch_supports: Mapping[str, Set[str]],
    nonstate_vars: Sequence[str] = (),
) -> List[str]:
    """Order latches of interacting FSMs (Aziz-Tasiran-Brayton style).

    ``latch_supports`` maps each latch name to the set of latch names its
    next-state function depends on (the FSM communication graph).  Latches
    of machines that read each other are placed adjacently.  Non-state
    variables are appended after the latch whose support mentions them
    most; unmentioned ones go last.
    """
    latches = list(latch_supports)
    groups = [
        {latch} | (set(support) & set(latches))
        for latch, support in latch_supports.items()
    ]
    latch_order = affinity_order(groups, latches)

    # Attach each non-state var right after the latch group using it most.
    usage: Dict[str, Dict[str, int]] = {v: {} for v in nonstate_vars}
    for latch, support in latch_supports.items():
        for v in support:
            if v in usage:
                usage[v][latch] = usage[v].get(latch, 0) + 1
    order: List[str] = []
    attached: Dict[str, List[str]] = {latch: [] for latch in latch_order}
    tail: List[str] = []
    for v in nonstate_vars:
        if usage[v]:
            best_latch = max(usage[v], key=lambda l: usage[v][l])
            attached[best_latch].append(v)
        else:
            tail.append(v)
    for latch in latch_order:
        order.append(latch)
        order.extend(attached[latch])
    order.extend(tail)
    return order


def reorder(
    src: BDD, new_order: Sequence[int], roots: Mapping[str, int]
) -> Tuple[BDD, Dict[str, int]]:
    """Rebuild ``roots`` in a fresh manager using ``new_order``.

    ``new_order`` lists source variable indices from top to bottom; it
    must cover every declared variable.  Variable *names* (and indices)
    are preserved in the new manager so callers can keep using the same
    identifiers.  Returns ``(new_manager, new_roots)``.
    """
    if sorted(new_order) != list(range(src.var_count)):
        raise ValueError("new_order must be a permutation of all variables")
    dst = BDD()
    dst.tracer = src.tracer  # keep the trace timeline across rebuilds
    # Declare variables with identical indices (declaration order), then
    # install the requested order.
    for var in range(src.var_count):
        dst.add_var(src.var_name(var))
    dst.set_order(list(new_order))
    identity = {v: v for v in range(src.var_count)}
    new_roots = {name: transfer(f, src, dst, identity) for name, f in roots.items()}
    for name, f in new_roots.items():
        dst.register_root(name, f)
    return dst, new_roots


def shared_size_under(
    src: BDD, new_order: Sequence[int], roots: Mapping[str, int]
) -> int:
    """Shared node count of ``roots`` if rebuilt under ``new_order``."""
    dst, new_roots = reorder(src, new_order, roots)
    return dst.size(list(new_roots.values()))


def population_order(src: BDD) -> List[int]:
    """Variables sorted by unique-table population, most populous first.

    Ties break towards the variable closer to the top of the order, so
    the result is deterministic.  This is the processing order Rudell
    sifting prescribes: moving the fattest level first frees the most
    nodes earliest.
    """
    return sorted(
        range(src.var_count),
        key=lambda v: (-src.var_population(v), src.level(v)),
    )


def sift(
    src: BDD,
    roots: Mapping[str, int],
    max_rounds: int = 1,
    candidates_per_var: int = 4,
) -> Tuple[BDD, Dict[str, int]]:
    """Search single-variable moves to shrink the shared size of ``roots``.

    A budgeted variant of Rudell sifting over the rebuild evaluator: for
    each variable (most-populous first) a handful of target positions are
    tried and the best kept.  Returns the best ``(manager, roots)`` found
    (possibly the input, transferred unchanged).
    """
    order = list(src.order)
    best_size = shared_size_under(src, order, roots)
    nvars = len(order)
    with src.tracer.span(
        "bdd.sift", cat="bdd", variables=nvars, start_size=best_size
    ) as span:
        for _ in range(max_rounds):
            improved = False
            for var in population_order(src):
                pos = order.index(var)
                step = max(1, nvars // (candidates_per_var + 1))
                targets = {0, nvars - 1, max(0, pos - step), min(nvars - 1, pos + step)}
                targets.discard(pos)
                for target in sorted(targets):
                    candidate = list(order)
                    candidate.remove(var)
                    candidate.insert(target, var)
                    size = shared_size_under(src, candidate, roots)
                    if size < best_size:
                        src.tracer.instant(
                            "bdd.sift_move", cat="bdd",
                            var=src.var_name(var), to=target, size=size,
                        )
                        best_size = size
                        order = candidate
                        improved = True
            if not improved:
                break
        span.add(final_size=best_size)
    return reorder(src, order, roots)
