"""Static variable-ordering heuristics and rebuild-based reordering.

HSIS derives its BDD variable order from the structure of the interacting
FSM network (footnote 1 of the paper cites Aziz-Tasiran-Brayton, "BDD
Variable Ordering for Interacting Finite State Machines", DAC 1994).  The
key ideas reproduced here:

* latches (state variables) of tightly communicating machines should sit
  close together in the order;
* present-state and next-state bits of one latch are interleaved
  (handled by :meth:`repro.bdd.mdd.MddManager.declare_pair`);
* combinational variables are placed near the latches they feed.

The affinity-based linear arrangement below is the classic greedy
approximation: repeatedly append the variable with the largest total edge
weight to the already-placed prefix.

Dynamic reordering comes in two forms:

* *rebuild* (``reorder``/``sift``): a new manager is created with the
  candidate order and all live roots are transferred
  (:func:`repro.bdd.ops.transfer`).  Simple and safe, but handles from
  the old manager die with it.
* *in place* (``sift_in_place``): classic Rudell sifting over adjacent
  level swaps inside one manager.  Node indices — and therefore every
  registered root handle — stay valid, which is what lets the manager's
  ``auto_reorder`` knob run it at GC safe points.  A variable-interaction
  matrix turns swaps of non-interacting levels into pure bookkeeping,
  and a lower-bound estimate skips whole directions that cannot beat the
  best size already found.  Each swap snapshots the upper level straight
  off the manager's flat ``var`` column (one vectorized scan) and
  relabels nodes in place in the array store; per-level populations are
  O(1) counter reads, so the lower bound costs nothing to evaluate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.bdd.manager import BDD
from repro.bdd.ops import transfer


def validate_permutation(
    order: Sequence[str], names: Iterable[str]
) -> Optional[str]:
    """Check that ``order`` is a permutation of ``names``.

    Returns ``None`` when it is, else a one-line human-readable reason
    (missing / unknown / duplicated entries).  Shared by the explicit
    ``encode(order=...)`` path and the ``.hsis-orders`` cache, both of
    which must refuse to install an order that does not cover the
    design's variables exactly.
    """
    wanted = set(names)
    seen: Set[str] = set()
    for name in order:
        if name in seen:
            return f"duplicate variable {name!r} in order"
        seen.add(name)
    unknown = seen - wanted
    if unknown:
        return f"unknown variable(s) in order: {', '.join(sorted(unknown))}"
    missing = wanted - seen
    if missing:
        return f"order misses variable(s): {', '.join(sorted(missing))}"
    return None


def affinity_order(
    groups: Sequence[Set[str]],
    all_items: Sequence[str],
) -> List[str]:
    """Order ``all_items`` so that items co-occurring in ``groups`` are close.

    ``groups`` are sets of item names that interact (e.g. the support sets
    of the relations of a BLIF-MV network); the affinity between two items
    is the number of groups containing both.  Returns a greedy linear
    arrangement starting from the item with the highest total affinity.
    Items never seen in any group keep their relative input order at the
    end.
    """
    affinity: Dict[Tuple[str, str], int] = {}
    weight: Dict[str, int] = {name: 0 for name in all_items}
    items_set = set(all_items)
    for group in groups:
        members = sorted(group & items_set)
        for i, a in enumerate(members):
            weight[a] += len(members) - 1
            for b in members[i + 1:]:
                key = (a, b)
                affinity[key] = affinity.get(key, 0) + 1

    def pair_affinity(a: str, b: str) -> int:
        if a > b:
            a, b = b, a
        return affinity.get((a, b), 0)

    remaining = [name for name in all_items]
    placed: List[str] = []
    placed_set: Set[str] = set()
    attraction: Dict[str, int] = {name: 0 for name in all_items}
    while remaining:
        if not placed:
            # Seed with the globally most-connected item.
            best = max(remaining, key=lambda n: (weight[n], -all_items.index(n)))
        else:
            best = max(
                remaining,
                key=lambda n: (attraction[n], weight[n], -all_items.index(n)),
            )
        placed.append(best)
        placed_set.add(best)
        remaining.remove(best)
        for n in remaining:
            attraction[n] += pair_affinity(best, n)
    return placed


def interacting_fsm_order(
    latch_supports: Mapping[str, Set[str]],
    nonstate_vars: Sequence[str] = (),
) -> List[str]:
    """Order latches of interacting FSMs (Aziz-Tasiran-Brayton style).

    ``latch_supports`` maps each latch name to the set of latch names its
    next-state function depends on (the FSM communication graph).  Latches
    of machines that read each other are placed adjacently.  Non-state
    variables are appended after the latch whose support mentions them
    most; unmentioned ones go last.
    """
    latches = list(latch_supports)
    groups = [
        {latch} | (set(support) & set(latches))
        for latch, support in latch_supports.items()
    ]
    latch_order = affinity_order(groups, latches)

    # Attach each non-state var right after the latch group using it most.
    usage: Dict[str, Dict[str, int]] = {v: {} for v in nonstate_vars}
    for latch, support in latch_supports.items():
        for v in support:
            if v in usage:
                usage[v][latch] = usage[v].get(latch, 0) + 1
    order: List[str] = []
    attached: Dict[str, List[str]] = {latch: [] for latch in latch_order}
    tail: List[str] = []
    for v in nonstate_vars:
        if usage[v]:
            best_latch = max(usage[v], key=lambda l: usage[v][l])
            attached[best_latch].append(v)
        else:
            tail.append(v)
    for latch in latch_order:
        order.append(latch)
        order.extend(attached[latch])
    order.extend(tail)
    return order


def reorder(
    src: BDD, new_order: Sequence[int], roots: Mapping[str, int]
) -> Tuple[BDD, Dict[str, int]]:
    """Rebuild ``roots`` in a fresh manager using ``new_order``.

    ``new_order`` lists source variable indices from top to bottom; it
    must cover every declared variable.  Variable *names* (and indices)
    are preserved in the new manager so callers can keep using the same
    identifiers.  Returns ``(new_manager, new_roots)``.
    """
    if sorted(new_order) != list(range(src.var_count)):
        raise ValueError("new_order must be a permutation of all variables")
    dst = BDD()
    dst.tracer = src.tracer  # keep the trace timeline across rebuilds
    # Declare variables with identical indices (declaration order), then
    # install the requested order.
    for var in range(src.var_count):
        dst.add_var(src.var_name(var))
    dst.set_order(list(new_order))
    identity = {v: v for v in range(src.var_count)}
    new_roots = {name: transfer(f, src, dst, identity) for name, f in roots.items()}
    for name, f in new_roots.items():
        dst.register_root(name, f)
    return dst, new_roots


def shared_size_under(
    src: BDD, new_order: Sequence[int], roots: Mapping[str, int]
) -> int:
    """Shared node count of ``roots`` if rebuilt under ``new_order``."""
    dst, new_roots = reorder(src, new_order, roots)
    return dst.size(list(new_roots.values()))


def population_order(src: BDD) -> List[int]:
    """Variables sorted by live node population, most populous first.

    Ties break towards the variable closer to the top of the order, so
    the result is deterministic.  This is the processing order Rudell
    sifting prescribes: moving the fattest level first frees the most
    nodes earliest.
    """
    return sorted(
        range(src.var_count),
        key=lambda v: (-src.var_population(v), src.level(v)),
    )


def sift(
    src: BDD,
    roots: Mapping[str, int],
    max_rounds: int = 1,
    candidates_per_var: int = 4,
) -> Tuple[BDD, Dict[str, int]]:
    """Search single-variable moves to shrink the shared size of ``roots``.

    A budgeted variant of Rudell sifting over the rebuild evaluator: for
    each variable (most-populous first) a handful of target positions are
    tried and the best kept.  Returns the best ``(manager, roots)`` found
    (possibly the input, transferred unchanged).
    """
    order = list(src.order)
    best_size = shared_size_under(src, order, roots)
    nvars = len(order)
    with src.tracer.span(
        "bdd.sift", cat="bdd", variables=nvars, start_size=best_size
    ) as span:
        for _ in range(max_rounds):
            improved = False
            for var in population_order(src):
                pos = order.index(var)
                step = max(1, nvars // (candidates_per_var + 1))
                targets = {0, nvars - 1, max(0, pos - step), min(nvars - 1, pos + step)}
                targets.discard(pos)
                for target in sorted(targets):
                    candidate = list(order)
                    candidate.remove(var)
                    candidate.insert(target, var)
                    size = shared_size_under(src, candidate, roots)
                    if size < best_size:
                        src.tracer.instant(
                            "bdd.sift_move", cat="bdd",
                            var=src.var_name(var), to=target, size=size,
                        )
                        best_size = size
                        order = candidate
                        improved = True
            if not improved:
                break
        span.add(final_size=best_size)
    return reorder(src, order, roots)


# ----------------------------------------------------------------------
# In-place sifting (complement-edge safe)
# ----------------------------------------------------------------------


def interaction_masks(bdd: BDD, roots: Iterable[int]) -> List[int]:
    """Per-variable interaction bitmasks over the supports of ``roots``.

    Variables *interact* when some root function depends on both.  The
    relation is order-independent, so one matrix serves a whole sift
    session.  If ``x`` and ``y`` do not interact, no live node labelled
    ``x`` can reach a ``y`` node (after a GC every live node belongs to
    some root's DAG), making their level swap a pure bookkeeping move.
    """
    masks = [0] * bdd.var_count
    seen = set()
    for f in roots:
        if (f >> 1) in seen:
            continue
        seen.add(f >> 1)
        sup = bdd.support(f)
        for i, u in enumerate(sup):
            mu = masks[u]
            for v in sup[i + 1:]:
                mu |= 1 << v
                masks[v] |= 1 << u
            masks[u] = mu
    return masks


def _sift_one(
    bdd: BDD,
    var: int,
    refs: List[int],
    mask: int,
    max_growth: float,
    stats: Dict[str, int],
) -> None:
    """Sift one variable to its locally best level and leave it there."""
    nvars = bdd.var_count

    def step(down: bool) -> None:
        lvl = bdd.level(var)
        swap_lvl = lvl if down else lvl - 1
        other = bdd.var_at(swap_lvl + 1 if down else swap_lvl)
        if (mask >> other) & 1:
            bdd._swap_adjacent(swap_lvl, refs)
            stats["swaps"] += 1
        else:
            bdd._swap_levels_only(swap_lvl)
            stats["fast_swaps"] += 1

    def direction_gain_bound(down: bool) -> int:
        # Moving only ``var`` can free at most its own nodes plus those of
        # the interacting levels it crosses; non-interacting levels are
        # provably size-neutral.  Returns 0 when nothing interacts.
        lvl = bdd.level(var)
        levels = range(lvl + 1, nvars) if down else range(0, lvl)
        gain = 0
        interacts = False
        for l in levels:
            u = bdd.var_at(l)
            if (mask >> u) & 1:
                interacts = True
                gain += bdd.var_population(u)
        if not interacts:
            return 0
        return bdd.var_population(var) + gain

    best_size = len(bdd)
    best_lvl = bdd.level(var)

    def walk(down: bool) -> None:
        nonlocal best_size, best_lvl
        bound = direction_gain_bound(down)
        if bound == 0 or len(bdd) - bound >= best_size:
            stats["lb_skips"] += 1
            return
        while True:
            lvl = bdd.level(var)
            if (down and lvl == nvars - 1) or (not down and lvl == 0):
                break
            step(down)
            size = len(bdd)
            if size < best_size:
                best_size = size
                best_lvl = bdd.level(var)
            if size > max_growth * best_size:
                break

    # Try the closer end first (Rudell), then sweep through to the other.
    start = bdd.level(var)
    first_down = start >= nvars // 2
    walk(first_down)
    walk(not first_down)
    # Settle back at the best level seen.
    while bdd.level(var) != best_lvl:
        step(down=bdd.level(var) < best_lvl)


def sift_in_place(
    bdd: BDD,
    extra_roots: Iterable[int] = (),
    max_growth: float = 1.2,
    max_vars: int = 0,
) -> Dict[str, int]:
    """Rudell sifting by in-place adjacent level swaps.

    Must run at a safe point right after a GC: everything live has to be
    reachable from registered roots plus ``extra_roots``, because nodes
    orphaned by a swap are freed eagerly via reference counts.  All
    externally held root handles stay valid.  ``max_vars`` bounds how
    many variables are sifted (0 = all); ``max_growth`` aborts a
    direction once the size exceeds that multiple of the best seen.
    Returns counters: full/fast swaps, lower-bound skips, sizes.
    """
    extra = list(extra_roots)
    stats = {
        "swaps": 0,
        "fast_swaps": 0,
        "lb_skips": 0,
        "vars_sifted": 0,
        "start_size": len(bdd),
        "final_size": len(bdd),
    }
    if bdd.var_count < 2:
        return stats
    roots = list(bdd._roots.values()) + extra
    refs = bdd._build_refcounts(extra_roots=extra)
    masks = interaction_masks(bdd, roots)
    todo = population_order(bdd)
    if max_vars:
        todo = todo[:max_vars]
    for var in todo:
        if bdd.var_population(var) == 0:
            continue
        stats["vars_sifted"] += 1
        _sift_one(bdd, var, refs, masks[var], max_growth, stats)
    stats["final_size"] = len(bdd)
    return stats
