"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the symbolic kernel of the HSIS reproduction.  HSIS (DAC 1994)
manipulated transition systems implicitly with BDDs in the style of
Coudert-Madre and SMV; this module provides the same primitives in pure
Python:

* a unique table guaranteeing canonicity of nodes,
* a computed cache shared by all operations,
* the ``ite`` operator and the boolean connectives derived from it,
* existential/universal quantification and the fused relational product
  ``and_exists`` (the workhorse of symbolic image computation),
* variable renaming (for present-state/next-state substitution),
* functional composition, generalized cofactor (``constrain``) and the
  Coudert-Madre ``restrict`` don't-care minimizer,
* satisfiability helpers (counting, cube enumeration, evaluation),
* a mark-and-sweep garbage collector driven by explicitly registered roots.

Nodes are integers indexing parallel arrays; the constants ``FALSE`` (0)
and ``TRUE`` (1) are terminals.  Variables are identified by small integer
indices; the manager's ``order`` maps variables to levels so that static
reordering (see :mod:`repro.bdd.ordering`) only permutes one array.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.trace.tracer import Tracer

#: Shared disabled tracer; replaced per-manager via the ``tracer``
#: attribute when structured tracing is on (see repro.trace).
_NULL_TRACER = Tracer(enabled=False)

FALSE = 0
TRUE = 1

_LEAF_LEVEL = 1 << 30

# Frame tags for the explicit-stack operators.
_EXPAND = 0
_REDUCE = 1
_COMBINE_OR = 2
_SHORT_CIRCUIT = 3

# Every computed-cache-keyed operation, for per-op hit/miss accounting.
CACHED_OPS = (
    "ite", "and", "not", "exist", "andex",
    "rename", "vcomp", "restr", "constrain", "restrdc",
)


class BddError(Exception):
    """Raised for misuse of the BDD manager (unknown variables, etc.)."""


class BDD:
    """A manager owning a shared pool of ROBDD nodes.

    All functions returned by manager methods are plain ``int`` node
    handles; they are only meaningful together with the manager that
    produced them.  Handles stay valid across garbage collections as long
    as they are reachable from a registered root (see :meth:`gc`).

    The manager manages its own resources:

    * ``cache_limit`` bounds the computed cache: when an insertion would
      exceed the limit the whole cache is dropped (clear-on-threshold —
      cheap, and correctness never depends on the cache).
    * ``auto_gc`` arms automatic collection: once more than ``auto_gc``
      nodes have been created since the last collection, :meth:`_mk`
      flags a pending GC which runs at the next *safe point* — a
      :meth:`maybe_gc` call from an engine loop where everything live is
      either a registered root or passed as an extra root.  The
      collection can never run in the middle of an operation because
      intermediate results held in Python locals are invisible to the
      mark phase.
    """

    def __init__(
        self,
        auto_gc: Optional[int] = None,
        cache_limit: Optional[int] = None,
    ) -> None:
        if auto_gc is not None and auto_gc < 1:
            raise BddError("auto_gc threshold must be positive (or None)")
        if cache_limit is not None and cache_limit < 1:
            raise BddError("cache_limit must be positive (or None)")
        # Parallel node arrays.  Index 0 is FALSE, index 1 is TRUE.
        self._var: List[int] = [-1, -1]
        self._lo: List[int] = [FALSE, TRUE]
        self._hi: List[int] = [FALSE, TRUE]
        # One unique table per variable: (lo, hi) -> node.
        self._unique: List[Dict[Tuple[int, int], int]] = []
        self._free: List[int] = []
        # Computed cache: (op, f, g, h) -> node.
        self._cache: Dict[Tuple, int] = {}
        # Variable bookkeeping.
        self._name_of_var: List[str] = []
        self._var_of_name: Dict[str, int] = {}
        self._level_of_var: List[int] = []
        self._var_at_level: List[int] = []
        # Externally registered GC roots (name -> node).
        self._roots: Dict[str, int] = {}
        self.gc_count = 0
        # Resource management knobs and telemetry.
        self.auto_gc = auto_gc
        self.cache_limit = cache_limit
        self.cache_evictions = 0
        self.peak_live_nodes = 2
        self._gc_pending = False
        self._nodes_since_gc = 0
        # op -> [lookups, hits] for the computed cache.
        self._op_stats: Dict[str, List[int]] = {op: [0, 0] for op in CACHED_OPS}
        # Structured event sink (GC sweeps, cache evictions, reorders).
        self.tracer: Tracer = _NULL_TRACER

    # ------------------------------------------------------------------
    # Variables and ordering
    # ------------------------------------------------------------------

    def add_var(self, name: str, level: Optional[int] = None) -> int:
        """Declare a new variable, optionally inserted at ``level``.

        Returns the variable index.  By default the variable is appended
        at the bottom of the current order.
        """
        if name in self._var_of_name:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._name_of_var)
        self._name_of_var.append(name)
        self._var_of_name[name] = var
        self._unique.append({})
        if level is None:
            level = len(self._var_at_level)
        if not 0 <= level <= len(self._var_at_level):
            raise BddError(f"level {level} out of range")
        self._var_at_level.insert(level, var)
        self._level_of_var.append(0)
        for lvl, v in enumerate(self._var_at_level):
            self._level_of_var[v] = lvl
        if level != len(self._var_at_level) - 1:
            # Inserting mid-order shifts levels; cached results keyed on
            # structure stay valid, but level-dependent ops do not cache
            # levels, so only clear nothing.  (Nodes store variable ids,
            # not levels, so no node surgery is needed.)
            pass
        return var

    @property
    def var_count(self) -> int:
        """Number of declared variables."""
        return len(self._name_of_var)

    def var_index(self, name: str) -> int:
        """Return the variable index for ``name``."""
        try:
            return self._var_of_name[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_name(self, var: int) -> str:
        """Return the name of variable index ``var``."""
        return self._name_of_var[var]

    def level(self, var: int) -> int:
        """Return the current level (order position) of variable ``var``."""
        return self._level_of_var[var]

    def var_at(self, level: int) -> int:
        """Return the variable currently sitting at ``level``."""
        return self._var_at_level[level]

    @property
    def order(self) -> Tuple[int, ...]:
        """Variables from top level to bottom level."""
        return tuple(self._var_at_level)

    def set_order(self, order: Sequence[int]) -> None:
        """Install a new variable order.

        Every declared variable must appear exactly once.  Existing node
        handles are *not* remapped: callers should re-derive functions or
        use :meth:`repro.bdd.ordering.reorder` which rebuilds registered
        roots under the new order.  This method is only safe when the
        manager holds no live nodes besides constants.
        """
        if sorted(order) != list(range(self.var_count)):
            raise BddError("new order must be a permutation of all variables")
        if len(self) > 2:
            raise BddError(
                "set_order on a non-empty manager would break canonicity; "
                "use repro.bdd.ordering.reorder instead"
            )
        self._var_at_level = list(order)
        for lvl, v in enumerate(self._var_at_level):
            self._level_of_var[v] = lvl
        self._cache.clear()

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _node_level(self, f: int) -> int:
        v = self._var[f]
        return _LEAF_LEVEL if v < 0 else self._level_of_var[v]

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create the node ``(var, lo, hi)`` (reduced, canonical)."""
        if lo == hi:
            return lo
        table = self._unique[var]
        key = (lo, hi)
        node = table.get(key)
        if node is not None:
            return node
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._lo[node] = lo
            self._hi[node] = hi
        else:
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
        table[key] = node
        self._nodes_since_gc += 1
        live = len(self._var) - len(self._free)
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live
        if (
            self.auto_gc is not None
            and not self._gc_pending
            and self._nodes_since_gc >= self.auto_gc
        ):
            # Flag only: collecting here would sweep intermediates held in
            # the in-flight operation's locals.  maybe_gc() runs it at the
            # next engine safe point.
            self._gc_pending = True
        return node

    def _cache_insert(self, key: Tuple, value: int) -> None:
        """Insert into the computed cache, honouring ``cache_limit``."""
        cache = self._cache
        if self.cache_limit is not None and len(cache) >= self.cache_limit:
            dropped = len(cache)
            cache.clear()
            self.cache_evictions += 1
            self.tracer.instant(
                "bdd.cache_evict", cat="bdd",
                dropped=dropped, evictions=self.cache_evictions,
            )
        cache[key] = value

    def _ensure_depth(self) -> None:
        """Raise the interpreter recursion limit so one descent fits.

        The hot operators are explicit-stack iterative; the remaining
        recursive ones (rename, compose, restrict, constrain, ...) recurse
        at most a small multiple of the variable count.
        """
        need = 4 * self.var_count + 500
        if sys.getrecursionlimit() < need:
            sys.setrecursionlimit(need)

    def var(self, name_or_index) -> int:
        """Return the function of a single positive literal."""
        var = name_or_index if isinstance(name_or_index, int) else self.var_index(name_or_index)
        return self._mk(var, FALSE, TRUE)

    def nvar(self, name_or_index) -> int:
        """Return the function of a single negative literal."""
        var = name_or_index if isinstance(name_or_index, int) else self.var_index(name_or_index)
        return self._mk(var, TRUE, FALSE)

    @property
    def true(self) -> int:
        return TRUE

    @property
    def false(self) -> int:
        return FALSE

    def __len__(self) -> int:
        """Total live nodes in the pool (including the two terminals)."""
        return len(self._var) - len(self._free)

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def top_var(self, *nodes: int) -> int:
        """Variable with the smallest level among the tops of ``nodes``."""
        best = -1
        best_level = _LEAF_LEVEL
        for f in nodes:
            v = self._var[f]
            if v >= 0:
                lvl = self._level_of_var[v]
                if lvl < best_level:
                    best_level = lvl
                    best = v
        return best

    def _cofactors(self, f: int, var: int) -> Tuple[int, int]:
        if self._var[f] == var:
            return self._lo[f], self._hi[f]
        return f, f

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.  The universal connective.

        Explicit-stack iterative, so arbitrarily deep BDDs never exhaust
        the interpreter recursion limit.
        """
        cache = self._cache
        stats = self._op_stats["ite"]
        todo: List[Tuple] = [(_EXPAND, f, g, h)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            if frame[0] == _EXPAND:
                _, f, g, h = frame
                # Terminal cases.
                if f == TRUE:
                    results.append(g)
                    continue
                if f == FALSE:
                    results.append(h)
                    continue
                if g == h:
                    results.append(g)
                    continue
                if g == TRUE and h == FALSE:
                    results.append(f)
                    continue
                key = ("ite", f, g, h)
                stats[0] += 1
                res = cache.get(key)
                if res is not None:
                    stats[1] += 1
                    results.append(res)
                    continue
                var = self.top_var(f, g, h)
                f0, f1 = self._cofactors(f, var)
                g0, g1 = self._cofactors(g, var)
                h0, h1 = self._cofactors(h, var)
                todo.append((_REDUCE, var, key))
                todo.append((_EXPAND, f1, g1, h1))
                todo.append((_EXPAND, f0, g0, h0))
            else:
                _, var, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._cache_insert(key, res)
                results.append(res)
        return results.pop()

    def not_(self, f: int) -> int:
        """Negation (explicit-stack iterative)."""
        cache = self._cache
        stats = self._op_stats["not"]
        todo: List[Tuple] = [(_EXPAND, f)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            if frame[0] == _EXPAND:
                _, f = frame
                if f == FALSE:
                    results.append(TRUE)
                    continue
                if f == TRUE:
                    results.append(FALSE)
                    continue
                stats[0] += 1
                res = cache.get(("not", f))
                if res is not None:
                    stats[1] += 1
                    results.append(res)
                    continue
                todo.append((_REDUCE, self._var[f], f))
                todo.append((_EXPAND, self._hi[f]))
                todo.append((_EXPAND, self._lo[f]))
            else:
                _, var, orig = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._cache_insert(("not", orig), res)
                self._cache_insert(("not", res), orig)
                results.append(res)
        return results.pop()

    def and_(self, f: int, g: int) -> int:
        """Conjunction, with a dedicated cache entry (hot path).

        Explicit-stack iterative like :meth:`ite`.
        """
        cache = self._cache
        stats = self._op_stats["and"]
        todo: List[Tuple] = [(_EXPAND, f, g)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            if frame[0] == _EXPAND:
                _, f, g = frame
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if f == TRUE:
                    results.append(g)
                    continue
                if g == TRUE or f == g:
                    results.append(f)
                    continue
                if f > g:
                    f, g = g, f
                key = ("and", f, g)
                stats[0] += 1
                res = cache.get(key)
                if res is not None:
                    stats[1] += 1
                    results.append(res)
                    continue
                var = self.top_var(f, g)
                f0, f1 = self._cofactors(f, var)
                g0, g1 = self._cofactors(g, var)
                todo.append((_REDUCE, var, key))
                todo.append((_EXPAND, f1, g1))
                todo.append((_EXPAND, f0, g0))
            else:
                _, var, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._cache_insert(key, res)
                results.append(res)
        return results.pop()

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.not_(self.and_(self.not_(f), self.not_(g)))

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence."""
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, TRUE)

    def diff(self, f: int, g: int) -> int:
        """Difference ``f & ~g``."""
        return self.and_(f, self.not_(g))

    def conj(self, fs: Iterable[int]) -> int:
        """Conjunction of many functions."""
        res = TRUE
        for f in fs:
            res = self.and_(res, f)
            if res == FALSE:
                return FALSE
        return res

    def disj(self, fs: Iterable[int]) -> int:
        """Disjunction of many functions."""
        res = FALSE
        for f in fs:
            res = self.or_(res, f)
            if res == TRUE:
                return TRUE
        return res

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def cube(self, variables: Iterable) -> int:
        """Positive cube (conjunction of positive literals) over ``variables``.

        Used as the canonical representation of a quantification set.
        """
        vs = sorted(
            (v if isinstance(v, int) else self.var_index(v) for v in variables),
            key=lambda v: self._level_of_var[v],
            reverse=True,
        )
        res = TRUE
        for v in vs:
            res = self._mk(v, FALSE, res)
        return res

    def cube_vars(self, cube: int) -> List[int]:
        """Variable indices appearing in a positive cube."""
        out = []
        while cube not in (FALSE, TRUE):
            out.append(self._var[cube])
            cube = self._hi[cube] if self._lo[cube] == FALSE else self._lo[cube]
        return out

    def exist(self, variables, f: int) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        cube = variables if isinstance(variables, int) else self.cube(variables)
        return self._exist(cube, f)

    def _exist(self, cube: int, f: int) -> int:
        cache = self._cache
        stats = self._op_stats["exist"]
        todo: List[Tuple] = [(_EXPAND, cube, f)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, cube, f = frame
                if f in (FALSE, TRUE) or cube == TRUE:
                    results.append(f)
                    continue
                # Skip cube variables above f's top.
                flevel = self._node_level(f)
                while cube != TRUE and self._node_level(cube) < flevel:
                    cube = self._hi[cube]
                if cube == TRUE:
                    results.append(f)
                    continue
                key = ("exist", cube, f)
                stats[0] += 1
                res = cache.get(key)
                if res is not None:
                    stats[1] += 1
                    results.append(res)
                    continue
                var = self._var[f]
                lo, hi = self._lo[f], self._hi[f]
                if self._var[cube] == var:
                    sub = self._hi[cube]
                    todo.append((_COMBINE_OR, key))
                    todo.append((_EXPAND, sub, hi))
                    todo.append((_EXPAND, sub, lo))
                else:
                    todo.append((_REDUCE, var, key))
                    todo.append((_EXPAND, cube, hi))
                    todo.append((_EXPAND, cube, lo))
            elif tag == _REDUCE:
                _, var, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._cache_insert(key, res)
                results.append(res)
            else:  # _COMBINE_OR
                _, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self.or_(lo, hi)
                self._cache_insert(key, res)
                results.append(res)
        return results.pop()

    def forall(self, variables, f: int) -> int:
        """Universally quantify ``variables`` out of ``f``."""
        return self.not_(self.exist(variables, self.not_(f)))

    def and_exists(self, f: int, g: int, variables) -> int:
        """Fused relational product ``exists variables . f & g``.

        Avoids building the full conjunction before quantifying — the
        crucial optimization for symbolic image computation (paper §5.3).
        """
        cube = variables if isinstance(variables, int) else self.cube(variables)
        return self._and_exists(f, g, cube)

    def _and_exists(self, f: int, g: int, cube: int) -> int:
        cache = self._cache
        stats = self._op_stats["andex"]
        todo: List[Tuple] = [(_EXPAND, f, g, cube)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, f, g, cube = frame
                if f == FALSE or g == FALSE:
                    results.append(FALSE)
                    continue
                if cube == TRUE:
                    results.append(self.and_(f, g))
                    continue
                if f == TRUE and g == TRUE:
                    results.append(TRUE)
                    continue
                if f > g:
                    f, g = g, f
                top = min(self._node_level(f), self._node_level(g))
                while cube != TRUE and self._node_level(cube) < top:
                    cube = self._hi[cube]
                if cube == TRUE:
                    results.append(self.and_(f, g))
                    continue
                key = ("andex", f, g, cube)
                stats[0] += 1
                res = cache.get(key)
                if res is not None:
                    stats[1] += 1
                    results.append(res)
                    continue
                var = self.top_var(f, g)
                f0, f1 = self._cofactors(f, var)
                g0, g1 = self._cofactors(g, var)
                if self._var[cube] == var:
                    sub = self._hi[cube]
                    todo.append((_SHORT_CIRCUIT, f1, g1, sub, key))
                    todo.append((_EXPAND, f0, g0, sub))
                else:
                    todo.append((_REDUCE, var, key))
                    todo.append((_EXPAND, f1, g1, cube))
                    todo.append((_EXPAND, f0, g0, cube))
            elif tag == _REDUCE:
                _, var, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._cache_insert(key, res)
                results.append(res)
            elif tag == _SHORT_CIRCUIT:
                _, f1, g1, sub, key = frame
                lo = results.pop()
                if lo == TRUE:
                    self._cache_insert(key, TRUE)
                    results.append(TRUE)
                else:
                    results.append(lo)
                    todo.append((_COMBINE_OR, key))
                    todo.append((_EXPAND, f1, g1, sub))
            else:  # _COMBINE_OR
                _, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self.or_(lo, hi)
                self._cache_insert(key, res)
                results.append(res)
        return results.pop()

    # ------------------------------------------------------------------
    # Substitution
    # ------------------------------------------------------------------

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variables according to ``mapping`` (var index -> var index).

        The mapping must be order-preserving with respect to the current
        variable order (as is the case for interleaved present/next state
        variables); otherwise a :class:`BddError` is raised and the caller
        should fall back to :meth:`compose`.
        """
        if not mapping:
            return f
        pairs = sorted(mapping.items(), key=lambda kv: self._level_of_var[kv[0]])
        images = [self._level_of_var[v] for _, v in pairs]
        if images != sorted(images):
            raise BddError("rename mapping must preserve the variable order")
        # The rename must also not move a variable across an unrenamed
        # variable in f's support in an order-violating way; detect lazily
        # during reconstruction (mk with out-of-order children would break
        # canonicity silently, so check support overlap here).
        key_map = tuple(sorted(mapping.items()))
        self._ensure_depth()
        return self._rename(f, mapping, key_map)

    def _rename(self, f: int, mapping: Dict[int, int], key_map: Tuple) -> int:
        if f in (FALSE, TRUE):
            return f
        key = ("rename", f, key_map)
        stats = self._op_stats["rename"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        var = self._var[f]
        lo = self._rename(self._lo[f], mapping, key_map)
        hi = self._rename(self._hi[f], mapping, key_map)
        nvar = mapping.get(var, var)
        nlvl = self._level_of_var[nvar]
        for child in (lo, hi):
            if child not in (FALSE, TRUE) and self._node_level(child) <= nlvl:
                raise BddError(
                    "rename would reorder variables; use compose instead"
                )
        res = self._mk(nvar, lo, hi)
        self._cache_insert(key, res)
        return res

    def compose(self, f: int, var, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        v = var if isinstance(var, int) else self.var_index(var)
        return self.ite(g, self.restrict(f, {v: True}), self.restrict(f, {v: False}))

    def vector_compose(self, f: int, substitution: Dict[int, int]) -> int:
        """Simultaneously substitute functions for variables in ``f``.

        ``substitution`` maps variable indices to replacement functions.
        Implemented by Shannon recursion from the top; correct for
        simultaneous (non-iterated) substitution.
        """
        if not substitution:
            return f
        key_map = tuple(sorted(substitution.items()))
        self._ensure_depth()
        return self._vcompose(f, substitution, key_map)

    def _vcompose(self, f: int, sub: Dict[int, int], key_map: Tuple) -> int:
        if f in (FALSE, TRUE):
            return f
        key = ("vcomp", f, key_map)
        stats = self._op_stats["vcomp"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        var = self._var[f]
        lo = self._vcompose(self._lo[f], sub, key_map)
        hi = self._vcompose(self._hi[f], sub, key_map)
        g = sub.get(var)
        if g is None:
            g = self.var(var)
        res = self.ite(g, hi, lo)
        self._cache_insert(key, res)
        return res

    # ------------------------------------------------------------------
    # Cofactors and don't-care minimization
    # ------------------------------------------------------------------

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``f`` with respect to a partial variable assignment."""
        if not assignment:
            return f
        key_map = tuple(sorted(assignment.items()))
        self._ensure_depth()
        return self._restrict(f, assignment, key_map)

    def _restrict(self, f: int, assignment: Dict[int, bool], key_map: Tuple) -> int:
        if f in (FALSE, TRUE):
            return f
        key = ("restr", f, key_map)
        stats = self._op_stats["restr"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        var = self._var[f]
        if var in assignment:
            res = self._restrict(
                self._hi[f] if assignment[var] else self._lo[f], assignment, key_map
            )
        else:
            res = self._mk(
                var,
                self._restrict(self._lo[f], assignment, key_map),
                self._restrict(self._hi[f], assignment, key_map),
            )
        self._cache_insert(key, res)
        return res

    def cofactor_cube(self, f: int, cube: int) -> int:
        """Cofactor ``f`` by a (possibly negative-literal) cube BDD."""
        assignment: Dict[int, bool] = {}
        while cube not in (FALSE, TRUE):
            var = self._var[cube]
            if self._lo[cube] == FALSE:
                assignment[var] = True
                cube = self._hi[cube]
            else:
                assignment[var] = False
                cube = self._lo[cube]
        return self.restrict(f, assignment)

    def constrain(self, f: int, c: int) -> int:
        """Generalized cofactor (constrain) of ``f`` by care set ``c``.

        ``constrain(f, c)`` agrees with ``f`` on ``c`` and is free to take
        any value outside; it maps each minterm outside ``c`` to the value
        of ``f`` on the nearest minterm inside ``c`` (Coudert-Madre).
        """
        if c == FALSE:
            raise BddError("constrain by the empty care set is undefined")
        self._ensure_depth()
        return self._constrain(f, c)

    def _constrain(self, f: int, c: int) -> int:
        if c == TRUE or f in (FALSE, TRUE):
            return f
        if f == c:
            return TRUE
        key = ("constrain", f, c)
        stats = self._op_stats["constrain"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        var = self.top_var(f, c)
        f0, f1 = self._cofactors(f, var)
        c0, c1 = self._cofactors(c, var)
        if c0 == FALSE:
            res = self._constrain(f1, c1)
        elif c1 == FALSE:
            res = self._constrain(f0, c0)
        else:
            res = self._mk(var, self._constrain(f0, c0), self._constrain(f1, c1))
        self._cache_insert(key, res)
        return res

    def restrict_dc(self, f: int, c: int) -> int:
        """Coudert-Madre *restrict*: minimize ``f`` using care set ``c``.

        Like :meth:`constrain` but quantifies variables absent from ``f``
        out of the care set first, which guarantees the result's support
        is a subset of ``f``'s support and usually yields smaller BDDs.
        HSIS uses this to shrink intermediate BDDs with reached-state
        don't cares (paper §1 item 3).
        """
        if c == FALSE:
            raise BddError("restrict by the empty care set is undefined")
        self._ensure_depth()
        return self._restrict_dc(f, c)

    def _restrict_dc(self, f: int, c: int) -> int:
        if c == TRUE or f in (FALSE, TRUE):
            return f
        key = ("restrdc", f, c)
        stats = self._op_stats["restrdc"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        lf, lc = self._node_level(f), self._node_level(c)
        if lc < lf:
            res = self._restrict_dc(f, self.or_(self._lo[c], self._hi[c]))
        else:
            var = self._var[f]
            f0, f1 = self._lo[f], self._hi[f]
            c0, c1 = self._cofactors(c, var)
            if c0 == FALSE:
                res = self._restrict_dc(f1, c1)
            elif c1 == FALSE:
                res = self._restrict_dc(f0, c0)
            else:
                res = self._mk(
                    var, self._restrict_dc(f0, c0), self._restrict_dc(f1, c1)
                )
        self._cache_insert(key, res)
        return res

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def support(self, f: int) -> List[int]:
        """Variable indices in the support of ``f``, in order."""
        seen = set()
        sup = set()
        stack = [f]
        while stack:
            n = stack.pop()
            if n in (FALSE, TRUE) or n in seen:
                continue
            seen.add(n)
            sup.add(self._var[n])
            stack.append(self._lo[n])
            stack.append(self._hi[n])
        return sorted(sup, key=lambda v: self._level_of_var[v])

    def size(self, f) -> int:
        """Number of distinct nodes in the DAG(s) rooted at ``f``.

        ``f`` may be a single node or an iterable of nodes (shared size).
        Only terminals actually reachable from the roots are counted, so
        ``size(FALSE) == size(TRUE) == 1`` and a literal has size 3.
        """
        roots = [f] if isinstance(f, int) else list(f)
        seen = set()
        terminals = set()
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n in (FALSE, TRUE):
                terminals.add(n)
                continue
            if n in seen:
                continue
            seen.add(n)
            stack.append(self._lo[n])
            stack.append(self._hi[n])
        return len(seen) + len(terminals)

    def var_population(self, var) -> int:
        """Number of live unique-table nodes labelled with ``var``."""
        v = var if isinstance(var, int) else self.var_index(var)
        return len(self._unique[v])

    def eval(self, f: int, assignment: Dict) -> bool:
        """Evaluate ``f`` under a total assignment (name or index keys)."""
        norm = {
            (k if isinstance(k, int) else self.var_index(k)): bool(v)
            for k, v in assignment.items()
        }
        while f not in (FALSE, TRUE):
            var = self._var[f]
            if var not in norm:
                raise BddError(f"assignment misses variable {self.var_name(var)!r}")
            f = self._hi[f] if norm[var] else self._lo[f]
        return f == TRUE

    def sat_count(self, f: int, care_vars: Optional[Sequence] = None) -> int:
        """Exact model count of ``f`` over ``care_vars``.

        ``care_vars`` defaults to all declared variables; it must contain
        the support of ``f``.  Exact arbitrary-precision arithmetic.
        """
        import bisect

        self._ensure_depth()
        if care_vars is None:
            care = list(range(self.var_count))
        else:
            care = [v if isinstance(v, int) else self.var_index(v) for v in care_vars]
        care_levels = sorted(self._level_of_var[v] for v in care)
        care_set = set(care_levels)
        for v in self.support(f):
            if self._level_of_var[v] not in care_set:
                raise BddError("care_vars must contain the support of f")
        n = len(care_levels)

        def rank(level: int) -> int:
            """Number of care variables with level < ``level``."""
            return bisect.bisect_left(care_levels, level)

        memo: Dict[int, int] = {}

        def walk(node: int) -> int:
            # Models over care vars at levels >= level(node).
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            got = memo.get(node)
            if got is not None:
                return got
            lvl = self._node_level(node)
            total = 0
            for child in (self._lo[node], self._hi[node]):
                c = walk(child)
                if c:
                    child_rank = n if child in (FALSE, TRUE) else rank(
                        self._node_level(child)
                    )
                    total += c << (child_rank - rank(lvl) - 1)
            memo[node] = total
            return total

        if f == FALSE:
            return 0
        if f == TRUE:
            return 1 << n
        return walk(f) << rank(self._node_level(f))

    def pick_cube(self, f: int, care_vars: Optional[Sequence] = None) -> Optional[Dict[int, bool]]:
        """Return one satisfying partial assignment, or None if ``f`` is FALSE.

        Variables in ``care_vars`` (indices or names) absent from the
        chosen path are assigned ``False`` to make the cube total over the
        care set.  Prefers low branches (lexicographically smallest cube).
        """
        if f == FALSE:
            return None
        cube: Dict[int, bool] = {}
        node = f
        while node not in (FALSE, TRUE):
            var = self._var[node]
            if self._lo[node] != FALSE:
                cube[var] = False
                node = self._lo[node]
            else:
                cube[var] = True
                node = self._hi[node]
        if care_vars is not None:
            for v in care_vars:
                idx = v if isinstance(v, int) else self.var_index(v)
                cube.setdefault(idx, False)
        return cube

    def sat_iter(self, f: int, care_vars: Sequence) -> Iterator[Dict[int, bool]]:
        """Enumerate all total satisfying assignments over ``care_vars``."""
        self._ensure_depth()
        care = [v if isinstance(v, int) else self.var_index(v) for v in care_vars]
        care_sorted = sorted(care, key=lambda v: self._level_of_var[v])

        def expand(node: int, idx: int, acc: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == FALSE:
                return
            if idx == len(care_sorted):
                if node == TRUE:
                    yield dict(acc)
                return
            var = care_sorted[idx]
            node_var = self._var[node] if node not in (FALSE, TRUE) else None
            if node_var == var:
                for val, child in ((False, self._lo[node]), (True, self._hi[node])):
                    acc[var] = val
                    yield from expand(child, idx + 1, acc)
                del acc[var]
            else:
                # node does not test var (or is TRUE): both branches.
                for val in (False, True):
                    acc[var] = val
                    yield from expand(node, idx + 1, acc)
                del acc[var]

        yield from expand(f, 0, {})

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def register_root(self, name: str, node: int) -> None:
        """Register/overwrite an external GC root under ``name``."""
        self._roots[name] = node

    def deregister_root(self, name: str) -> None:
        """Drop a previously registered root (missing names are ignored)."""
        self._roots.pop(name, None)

    def register_root_group(self, prefix: str, nodes: Iterable[int]) -> None:
        """Register a family of roots under ``prefix.<i>`` names.

        Any previously registered roots with the same prefix are dropped
        first, so re-registering a shrinking family does not leak stale
        roots.
        """
        stale = [k for k in self._roots if k.startswith(prefix + ".")]
        for k in stale:
            del self._roots[k]
        for i, node in enumerate(nodes):
            self._roots[f"{prefix}.{i}"] = node

    def gc(self, extra_roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep collection; returns the number of nodes freed.

        Keeps every node reachable from registered roots plus
        ``extra_roots``.  Node ids of live nodes are stable.  The computed
        cache is cleared only when nodes were actually freed (a no-op
        sweep cannot leave dangling cache entries).
        """
        marked = {FALSE, TRUE}
        stack = list(self._roots.values()) + list(extra_roots)
        while stack:
            n = stack.pop()
            if n in marked:
                continue
            marked.add(n)
            stack.append(self._lo[n])
            stack.append(self._hi[n])
        freed = 0
        for node in range(2, len(self._var)):
            if node in marked or self._var[node] < 0:
                continue
            table = self._unique[self._var[node]]
            table.pop((self._lo[node], self._hi[node]), None)
            self._var[node] = -1
            self._free.append(node)
            freed += 1
        if freed:
            self._cache.clear()
        self.gc_count += 1
        self._gc_pending = False
        self._nodes_since_gc = 0
        self.tracer.instant(
            "bdd.gc", cat="bdd",
            freed=freed, live=len(self), roots=len(self._roots),
            runs=self.gc_count,
        )
        return freed

    def maybe_gc(self, extra_roots: Iterable[int] = ()) -> int:
        """Run a collection iff auto-GC has flagged one as due.

        Engines call this at *safe points* — moments where every node
        they hold is either a registered root or passed via
        ``extra_roots`` — so intermediates held only in operator locals
        are never swept.  Returns the number of nodes freed (0 when no
        collection ran).
        """
        if not self._gc_pending:
            return 0
        return self.gc(extra_roots=extra_roots)

    def clear_cache(self) -> None:
        """Drop the computed cache (useful to bound memory in long runs)."""
        self._cache.clear()

    def cache_size(self) -> int:
        """Number of entries in the computed cache."""
        return len(self._cache)

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-operator computed-cache statistics.

        Returns ``{op: {"lookups": n, "hits": n, "hit_rate": r}}`` for
        every cached operator (see :data:`CACHED_OPS`).
        """
        out: Dict[str, Dict[str, float]] = {}
        for op, (lookups, hits) in self._op_stats.items():
            out[op] = {
                "lookups": lookups,
                "hits": hits,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }
        return out

    def cache_hit_rate(self) -> float:
        """Overall computed-cache hit rate across all operators."""
        lookups = sum(s[0] for s in self._op_stats.values())
        hits = sum(s[1] for s in self._op_stats.values())
        return (hits / lookups) if lookups else 0.0

    # ------------------------------------------------------------------
    # Export / debug
    # ------------------------------------------------------------------

    def to_expr(self, f: int) -> str:
        """Render ``f`` as a (possibly large) nested ite expression string."""
        if f == FALSE:
            return "FALSE"
        if f == TRUE:
            return "TRUE"
        name = self.var_name(self._var[f])
        return (
            f"ite({name}, {self.to_expr(self._hi[f])}, {self.to_expr(self._lo[f])})"
        )

    def stats(self) -> Dict[str, int]:
        """Manager statistics (live nodes, cache entries, variables, GCs)."""
        return {
            "live_nodes": len(self),
            "allocated_nodes": len(self._var),
            "cache_entries": len(self._cache),
            "cache_evictions": self.cache_evictions,
            "peak_live_nodes": self.peak_live_nodes,
            "variables": self.var_count,
            "gc_runs": self.gc_count,
        }
