"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the symbolic kernel of the HSIS reproduction.  HSIS (DAC 1994)
manipulated transition systems implicitly with BDDs in the style of
Coudert-Madre and SMV; this module provides the same primitives in pure
Python:

* a unique table guaranteeing canonicity of nodes,
* a computed cache shared by all operations,
* the ``ite`` operator and the boolean connectives derived from it,
* existential/universal quantification and the fused relational product
  ``and_exists`` (the workhorse of symbolic image computation),
* variable renaming (for present-state/next-state substitution),
* functional composition, generalized cofactor (``constrain``) and the
  Coudert-Madre ``restrict`` don't-care minimizer,
* satisfiability helpers (counting, cube enumeration, evaluation),
* a mark-and-sweep garbage collector driven by explicitly registered roots,
* dynamic variable reordering (sifting) at the same GC safe points.

Handles are *complemented edges*: a function handle is
``(node_index << 1) | complement_bit``.  There is a single terminal node
at index 0 (the constant one); ``TRUE`` is its regular handle ``0`` and
``FALSE`` its complemented handle ``1``.  Stored nodes keep their
then-edge regular (the canonical form), so every function and its
negation share one subgraph and ``not_`` is a constant-time bit flip
that allocates nothing.  Canonicity invariant: a handle is regular
exactly when its function evaluates to ``TRUE`` on the all-ones
assignment — a property independent of the variable order, which is what
makes in-place level swaps (sifting) safe under this encoding.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.trace.tracer import Tracer

#: Shared disabled tracer; replaced per-manager via the ``tracer``
#: attribute when structured tracing is on (see repro.trace).
_NULL_TRACER = Tracer(enabled=False)

TRUE = 0
FALSE = 1

_LEAF_LEVEL = 1 << 30

# Frame tags for the explicit-stack operators.
_EXPAND = 0
_REDUCE = 1
_COMBINE_OR = 2
_SHORT_CIRCUIT = 3

# Every computed-cache-keyed operation, for per-op hit/miss accounting.
# "and"/"or"/"xor" share the standardized "ite" cache but keep their own
# lookup/hit attribution so callers can still see which entry point pays.
CACHED_OPS = (
    "ite", "and", "or", "xor", "exist", "andex",
    "rename", "vcomp", "restr", "constrain", "restrdc",
)


class BddError(Exception):
    """Raised for misuse of the BDD manager (unknown variables, etc.)."""


class BDD:
    """A manager owning a shared pool of ROBDD nodes.

    All functions returned by manager methods are plain ``int`` handles
    (``index << 1 | complement``); they are only meaningful together with
    the manager that produced them.  Handles stay valid across garbage
    collections and in-place reorders as long as they are reachable from
    a registered root (see :meth:`gc`).

    The manager manages its own resources:

    * ``cache_limit`` bounds the computed cache: when an insertion would
      exceed the limit the whole cache is dropped (clear-on-threshold —
      cheap, and correctness never depends on the cache).
    * ``auto_gc`` arms automatic collection: once more than ``auto_gc``
      nodes have been created since the last collection, :meth:`_mk`
      flags a pending GC which runs at the next *safe point* — a
      :meth:`maybe_gc` call from an engine loop where everything live is
      either a registered root or passed as an extra root.  The
      collection can never run in the middle of an operation because
      intermediate results held in Python locals are invisible to the
      mark phase.
    * ``auto_reorder`` arms dynamic sifting the same way: when the live
      node count grows past an adaptive watermark, :meth:`_mk` flags a
      pending reorder which also runs at the next :meth:`maybe_gc` safe
      point (in-place level swaps keep all root handles valid).  After a
      sift the watermark re-arms at twice the post-sift size, so a
      well-ordered manager is never sifted twice in a row.
    """

    def __init__(
        self,
        auto_gc: Optional[int] = None,
        cache_limit: Optional[int] = None,
        auto_reorder: Optional[int] = None,
    ) -> None:
        if auto_gc is not None and auto_gc < 1:
            raise BddError("auto_gc threshold must be positive (or None)")
        if cache_limit is not None and cache_limit < 1:
            raise BddError("cache_limit must be positive (or None)")
        if auto_reorder is not None and auto_reorder < 1:
            raise BddError("auto_reorder threshold must be positive (or None)")
        # Parallel node arrays.  Index 0 is the single terminal (constant
        # one); its slots are placeholders and never traversed.
        self._var: List[int] = [-1]
        self._lo: List[int] = [0]
        self._hi: List[int] = [0]
        # One unique table per variable: (lo, hi) -> node index.
        self._unique: List[Dict[Tuple[int, int], int]] = []
        self._free: List[int] = []
        # Computed cache: (op, f, g, h) -> handle.
        self._cache: Dict[Tuple, int] = {}
        # Variable bookkeeping.
        self._name_of_var: List[str] = []
        self._var_of_name: Dict[str, int] = {}
        self._level_of_var: List[int] = []
        self._var_at_level: List[int] = []
        # Externally registered GC roots (name -> handle).
        self._roots: Dict[str, int] = {}
        self.gc_count = 0
        # Resource management knobs and telemetry.
        self.auto_gc = auto_gc
        self.cache_limit = cache_limit
        self.auto_reorder = auto_reorder
        self.cache_evictions = 0
        self.peak_live_nodes = 2
        self._gc_pending = False
        self._nodes_since_gc = 0
        self._reorder_pending = False
        self._in_reorder = False
        self._reorder_watermark = auto_reorder if auto_reorder is not None else 0
        self.reorder_count = 0
        self.sift_swaps = 0
        self.sift_fast_swaps = 0
        self.sift_lb_skips = 0
        # O(1) negation / ITE standardization telemetry.
        self.not_calls = 0
        self.std_rewrites = 0
        # op -> [lookups, hits] for the computed cache.
        self._op_stats: Dict[str, List[int]] = {op: [0, 0] for op in CACHED_OPS}
        # Structured event sink (GC sweeps, cache evictions, reorders).
        self.tracer: Tracer = _NULL_TRACER

    # ------------------------------------------------------------------
    # Variables and ordering
    # ------------------------------------------------------------------

    def add_var(self, name: str, level: Optional[int] = None) -> int:
        """Declare a new variable, optionally inserted at ``level``.

        Returns the variable index.  By default the variable is appended
        at the bottom of the current order.
        """
        if name in self._var_of_name:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._name_of_var)
        self._name_of_var.append(name)
        self._var_of_name[name] = var
        self._unique.append({})
        if level is None:
            level = len(self._var_at_level)
        if not 0 <= level <= len(self._var_at_level):
            raise BddError(f"level {level} out of range")
        self._var_at_level.insert(level, var)
        self._level_of_var.append(0)
        for lvl, v in enumerate(self._var_at_level):
            self._level_of_var[v] = lvl
        return var

    @property
    def var_count(self) -> int:
        """Number of declared variables."""
        return len(self._name_of_var)

    def var_index(self, name: str) -> int:
        """Return the variable index for ``name``."""
        try:
            return self._var_of_name[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_name(self, var: int) -> str:
        """Return the name of variable index ``var``."""
        return self._name_of_var[var]

    def level(self, var: int) -> int:
        """Return the current level (order position) of variable ``var``."""
        return self._level_of_var[var]

    def var_at(self, level: int) -> int:
        """Return the variable currently sitting at ``level``."""
        return self._var_at_level[level]

    @property
    def order(self) -> Tuple[int, ...]:
        """Variables from top level to bottom level."""
        return tuple(self._var_at_level)

    def set_order(self, order: Sequence[int]) -> None:
        """Install a new variable order.

        Every declared variable must appear exactly once.  Existing node
        handles are *not* remapped: callers should re-derive functions or
        use :meth:`repro.bdd.ordering.reorder` which rebuilds registered
        roots under the new order.  This method is only safe when the
        manager holds no live nodes besides constants.
        """
        if sorted(order) != list(range(self.var_count)):
            raise BddError("new order must be a permutation of all variables")
        if len(self) > 2:
            raise BddError(
                "set_order on a non-empty manager would break canonicity; "
                "use repro.bdd.ordering.reorder instead"
            )
        self._var_at_level = list(order)
        for lvl, v in enumerate(self._var_at_level):
            self._level_of_var[v] = lvl
        self._cache.clear()

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _node_level(self, f: int) -> int:
        v = self._var[f >> 1]
        return _LEAF_LEVEL if v < 0 else self._level_of_var[v]

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create the canonical handle for ``(var, lo, hi)``.

        Enforces the complement-edge canonical form: if the then-edge is
        complemented, both children are flipped and the returned handle
        carries the complement instead, so stored then-edges are always
        regular and ``f``/``not f`` resolve to the same node.
        """
        if lo == hi:
            return lo
        neg = hi & 1
        if neg:
            lo ^= 1
            hi ^= 1
        table = self._unique[var]
        key = (lo, hi)
        node = table.get(key)
        if node is not None:
            return (node << 1) | neg
        if self._free:
            node = self._free.pop()
            self._var[node] = var
            self._lo[node] = lo
            self._hi[node] = hi
        else:
            node = len(self._var)
            self._var.append(var)
            self._lo.append(lo)
            self._hi.append(hi)
        table[key] = node
        self._nodes_since_gc += 1
        live = len(self._var) - len(self._free) + 1
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live
        if (
            self.auto_gc is not None
            and not self._gc_pending
            and self._nodes_since_gc >= self.auto_gc
        ):
            # Flag only: collecting here would sweep intermediates held in
            # the in-flight operation's locals.  maybe_gc() runs it at the
            # next engine safe point.
            self._gc_pending = True
        if (
            self.auto_reorder is not None
            and not self._reorder_pending
            and not self._in_reorder
            and live > self._reorder_watermark
        ):
            self._reorder_pending = True
        return (node << 1) | neg

    def _cache_insert(self, key: Tuple, value: int) -> None:
        """Insert into the computed cache, honouring ``cache_limit``."""
        cache = self._cache
        if self.cache_limit is not None and len(cache) >= self.cache_limit:
            dropped = len(cache)
            cache.clear()
            self.cache_evictions += 1
            self.tracer.instant(
                "bdd.cache_evict", cat="bdd",
                dropped=dropped, evictions=self.cache_evictions,
            )
        cache[key] = value

    def _ensure_depth(self) -> None:
        """Raise the interpreter recursion limit so one descent fits.

        The hot operators are explicit-stack iterative; the remaining
        recursive ones (rename, compose, restrict, constrain, ...) recurse
        at most a small multiple of the variable count.
        """
        need = 4 * self.var_count + 500
        if sys.getrecursionlimit() < need:
            sys.setrecursionlimit(need)

    def var(self, name_or_index) -> int:
        """Return the function of a single positive literal."""
        var = name_or_index if isinstance(name_or_index, int) else self.var_index(name_or_index)
        return self._mk(var, FALSE, TRUE)

    def nvar(self, name_or_index) -> int:
        """Return the function of a single negative literal."""
        return self.var(name_or_index) ^ 1

    @property
    def true(self) -> int:
        return TRUE

    @property
    def false(self) -> int:
        return FALSE

    def __len__(self) -> int:
        """Total live nodes in the pool.

        The single terminal counts as two (both polarities), keeping the
        node accounting comparable with two-terminal kernels.
        """
        return len(self._var) - len(self._free) + 1

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def top_var(self, *nodes: int) -> int:
        """Variable with the smallest level among the tops of ``nodes``."""
        best = -1
        best_level = _LEAF_LEVEL
        for f in nodes:
            v = self._var[f >> 1]
            if v >= 0:
                lvl = self._level_of_var[v]
                if lvl < best_level:
                    best_level = lvl
                    best = v
        return best

    def _cofactors(self, f: int, var: int) -> Tuple[int, int]:
        idx = f >> 1
        if self._var[idx] == var:
            c = f & 1
            return self._lo[idx] ^ c, self._hi[idx] ^ c
        return f, f

    def _ite(self, f: int, g: int, h: int, stats: List[int]) -> int:
        """Standardized, explicit-stack if-then-else.

        Each triple is rewritten to the Brace-Rudell-Bryant standard form
        before the cache lookup — equal/complement arguments collapsed,
        commutative special forms ordered by (level, index), the first
        argument made regular, the complement pushed out of the then
        branch — so every equivalent call shares one cache line.
        ``stats`` attributes the lookups to the calling entry point
        (``ite``/``and``/``or``/``xor``) while the cache key stays shared.
        """
        cache = self._cache
        cache_get = cache.get
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        lvl_of = self._level_of_var
        mk = self._mk
        todo: List[Tuple] = [(_EXPAND, f, g, h, 0)]
        results: List[int] = []
        std_rewrites = 0
        while todo:
            frame = todo.pop()
            if frame[0] == _EXPAND:
                _, f, g, h, outneg = frame
                # Collapse branches equal (or complementary) to the test.
                if g == f:
                    g = TRUE
                elif g == (f ^ 1):
                    g = FALSE
                if h == f:
                    h = FALSE
                elif h == (f ^ 1):
                    h = TRUE
                # Terminal cases.
                if f == TRUE:
                    results.append(g ^ outneg)
                    continue
                if f == FALSE:
                    results.append(h ^ outneg)
                    continue
                if g == h:
                    results.append(g ^ outneg)
                    continue
                if g == TRUE and h == FALSE:
                    results.append(f ^ outneg)
                    continue
                if g == FALSE and h == TRUE:
                    results.append(f ^ 1 ^ outneg)
                    continue
                orig_f, orig_g, orig_h = f, g, h
                # Canonical argument order for the commutative forms.  In
                # every branch both compared operands are internal nodes
                # (terminal combinations were all resolved above), so the
                # (level, index) key packs into one int without a leaf
                # check.
                fi = f >> 1
                fkey = (lvl_of[var_arr[fi]] << 32) | fi
                if g == TRUE:  # f | h == h | f
                    oi = h >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, h = h, f
                elif h == FALSE:  # f & g == g & f
                    oi = g >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, g = g, f
                elif h == TRUE:  # f -> g == ~g -> ~f
                    oi = g >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, g = g ^ 1, f ^ 1
                elif g == FALSE:  # ~f & h == ~h & f (operands flipped)
                    oi = h >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, h = h ^ 1, f ^ 1
                elif g == (h ^ 1):  # f <-> g == g <-> f
                    oi = g >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, g, h = g, f, f ^ 1
                # First argument regular: ite(~f,g,h) == ite(f,h,g).
                if f & 1:
                    f, g, h = f ^ 1, h, g
                # Then-branch regular: push the complement to the output.
                if g & 1:
                    g ^= 1
                    h ^= 1
                    outneg ^= 1
                if f != orig_f or g != orig_g or h != orig_h:
                    std_rewrites += 1
                key = ("ite", f, g, h)
                stats[0] += 1
                res = cache_get(key)
                if res is not None:
                    stats[1] += 1
                    results.append(res ^ outneg)
                    continue
                # Inline top_var + cofactors (f is never terminal here).
                fi = f >> 1
                var = var_arr[fi]
                top = lvl_of[var]
                gi = g >> 1
                vg = var_arr[gi]
                if vg >= 0 and lvl_of[vg] < top:
                    var = vg
                    top = lvl_of[vg]
                hd = h >> 1
                vh = var_arr[hd]
                if vh >= 0 and lvl_of[vh] < top:
                    var = vh
                    top = lvl_of[vh]
                if var_arr[fi] == var:
                    c = f & 1
                    f0 = lo_arr[fi] ^ c
                    f1 = hi_arr[fi] ^ c
                else:
                    f0 = f1 = f
                if vg == var:
                    c = g & 1
                    g0 = lo_arr[gi] ^ c
                    g1 = hi_arr[gi] ^ c
                else:
                    g0 = g1 = g
                if vh == var:
                    c = h & 1
                    h0 = lo_arr[hd] ^ c
                    h1 = hi_arr[hd] ^ c
                else:
                    h0 = h1 = h
                todo.append((_REDUCE, var, key, outneg))
                todo.append((_EXPAND, f1, g1, h1, 0))
                todo.append((_EXPAND, f0, g0, h0, 0))
            else:
                _, var, key, outneg = frame
                hi = results.pop()
                lo = results.pop()
                res = mk(var, lo, hi)
                if self.cache_limit is not None and len(cache) >= self.cache_limit:
                    self._cache_insert(key, res)
                else:
                    cache[key] = res
                results.append(res ^ outneg)
        self.std_rewrites += std_rewrites
        return results.pop()

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.  The universal connective."""
        return self._ite(f, g, h, self._op_stats["ite"])

    def not_(self, f: int) -> int:
        """Negation: an O(1) complement-bit flip; allocates no nodes."""
        self.not_calls += 1
        return f ^ 1

    def and_(self, f: int, g: int) -> int:
        """Conjunction (standardized ``ite(f, g, FALSE)``)."""
        return self._ite(f, g, FALSE, self._op_stats["and"])

    def or_(self, f: int, g: int) -> int:
        """Disjunction (standardized ``ite(f, TRUE, g)``)."""
        return self._ite(f, TRUE, g, self._op_stats["or"])

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self._ite(f, g ^ 1, g, self._op_stats["xor"])

    def xnor(self, f: int, g: int) -> int:
        """Equivalence."""
        return self._ite(f, g, g ^ 1, self._op_stats["xor"])

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self._ite(f, g, TRUE, self._op_stats["or"])

    def diff(self, f: int, g: int) -> int:
        """Difference ``f & ~g``."""
        return self._ite(f, g ^ 1, FALSE, self._op_stats["and"])

    def conj(self, fs: Iterable[int]) -> int:
        """Conjunction of many functions."""
        res = TRUE
        for f in fs:
            res = self.and_(res, f)
            if res == FALSE:
                return FALSE
        return res

    def disj(self, fs: Iterable[int]) -> int:
        """Disjunction of many functions."""
        res = FALSE
        for f in fs:
            res = self.or_(res, f)
            if res == TRUE:
                return TRUE
        return res

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def cube(self, variables: Iterable) -> int:
        """Positive cube (conjunction of positive literals) over ``variables``.

        Used as the canonical representation of a quantification set.
        """
        vs = sorted(
            (v if isinstance(v, int) else self.var_index(v) for v in variables),
            key=lambda v: self._level_of_var[v],
            reverse=True,
        )
        res = TRUE
        for v in vs:
            res = self._mk(v, FALSE, res)
        return res

    def cube_vars(self, cube: int) -> List[int]:
        """Variable indices appearing in a positive cube."""
        out = []
        while cube >= 2:
            c = cube & 1
            idx = cube >> 1
            out.append(self._var[idx])
            lo = self._lo[idx] ^ c
            cube = (self._hi[idx] ^ c) if lo == FALSE else lo
        return out

    def _cube_next(self, cube: int) -> int:
        """The sub-cube below the top variable of a positive cube."""
        return self._hi[cube >> 1] ^ (cube & 1)

    def exist(self, variables, f: int) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        cube = variables if isinstance(variables, int) else self.cube(variables)
        return self._exist(cube, f)

    def _exist(self, cube: int, f: int) -> int:
        cache = self._cache
        stats = self._op_stats["exist"]
        todo: List[Tuple] = [(_EXPAND, cube, f)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, cube, f = frame
                if f < 2 or cube == TRUE:
                    results.append(f)
                    continue
                # Skip cube variables above f's top.
                flevel = self._node_level(f)
                while cube != TRUE and self._node_level(cube) < flevel:
                    cube = self._cube_next(cube)
                if cube == TRUE:
                    results.append(f)
                    continue
                key = ("exist", cube, f)
                stats[0] += 1
                res = cache.get(key)
                if res is not None:
                    stats[1] += 1
                    results.append(res)
                    continue
                idx = f >> 1
                c = f & 1
                var = self._var[idx]
                lo, hi = self._lo[idx] ^ c, self._hi[idx] ^ c
                if self._var[cube >> 1] == var:
                    sub = self._cube_next(cube)
                    todo.append((_COMBINE_OR, key))
                    todo.append((_EXPAND, sub, hi))
                    todo.append((_EXPAND, sub, lo))
                else:
                    todo.append((_REDUCE, var, key))
                    todo.append((_EXPAND, cube, hi))
                    todo.append((_EXPAND, cube, lo))
            elif tag == _REDUCE:
                _, var, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._cache_insert(key, res)
                results.append(res)
            else:  # _COMBINE_OR
                _, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self.or_(lo, hi)
                self._cache_insert(key, res)
                results.append(res)
        return results.pop()

    def forall(self, variables, f: int) -> int:
        """Universally quantify ``variables`` out of ``f``."""
        return self.exist(variables, f ^ 1) ^ 1

    def and_exists(self, f: int, g: int, variables) -> int:
        """Fused relational product ``exists variables . f & g``.

        Avoids building the full conjunction before quantifying — the
        crucial optimization for symbolic image computation (paper §5.3).
        """
        cube = variables if isinstance(variables, int) else self.cube(variables)
        return self._and_exists(f, g, cube)

    def _and_exists(self, f: int, g: int, cube: int) -> int:
        cache = self._cache
        cache_get = cache.get
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        lvl_of = self._level_of_var
        stats = self._op_stats["andex"]
        todo: List[Tuple] = [(_EXPAND, f, g, cube)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, f, g, cube = frame
                if f == FALSE or g == FALSE or f == (g ^ 1):
                    results.append(FALSE)
                    continue
                if cube == TRUE:
                    results.append(self.and_(f, g))
                    continue
                if f == TRUE and g == TRUE:
                    results.append(TRUE)
                    continue
                if f > g:
                    f, g = g, f
                # Inline top-level computation; at least one of f, g is an
                # internal node here.
                vf = var_arr[f >> 1]
                vg = var_arr[g >> 1]
                lf = _LEAF_LEVEL if vf < 0 else lvl_of[vf]
                lg = _LEAF_LEVEL if vg < 0 else lvl_of[vg]
                top = lf if lf < lg else lg
                while cube != TRUE and lvl_of[var_arr[cube >> 1]] < top:
                    cube = hi_arr[cube >> 1] ^ (cube & 1)
                if cube == TRUE:
                    results.append(self.and_(f, g))
                    continue
                key = ("andex", f, g, cube)
                stats[0] += 1
                res = cache_get(key)
                if res is not None:
                    stats[1] += 1
                    results.append(res)
                    continue
                var = vf if lf <= lg else vg
                fi = f >> 1
                if vf == var:
                    c = f & 1
                    f0 = lo_arr[fi] ^ c
                    f1 = hi_arr[fi] ^ c
                else:
                    f0 = f1 = f
                gi = g >> 1
                if vg == var:
                    c = g & 1
                    g0 = lo_arr[gi] ^ c
                    g1 = hi_arr[gi] ^ c
                else:
                    g0 = g1 = g
                if var_arr[cube >> 1] == var:
                    sub = self._cube_next(cube)
                    todo.append((_SHORT_CIRCUIT, f1, g1, sub, key))
                    todo.append((_EXPAND, f0, g0, sub))
                else:
                    todo.append((_REDUCE, var, key))
                    todo.append((_EXPAND, f1, g1, cube))
                    todo.append((_EXPAND, f0, g0, cube))
            elif tag == _REDUCE:
                _, var, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._cache_insert(key, res)
                results.append(res)
            elif tag == _SHORT_CIRCUIT:
                _, f1, g1, sub, key = frame
                lo = results.pop()
                if lo == TRUE:
                    self._cache_insert(key, TRUE)
                    results.append(TRUE)
                else:
                    results.append(lo)
                    todo.append((_COMBINE_OR, key))
                    todo.append((_EXPAND, f1, g1, sub))
            else:  # _COMBINE_OR
                _, key = frame
                hi = results.pop()
                lo = results.pop()
                res = self.or_(lo, hi)
                self._cache_insert(key, res)
                results.append(res)
        return results.pop()

    # ------------------------------------------------------------------
    # Substitution
    # ------------------------------------------------------------------

    def rename(self, f: int, mapping: Dict[int, int], strict: bool = True) -> int:
        """Rename variables according to ``mapping`` (var index -> var index).

        The mapping must be order-preserving with respect to the current
        variable order (as is the case for interleaved present/next state
        variables); otherwise a :class:`BddError` is raised — unless
        ``strict`` is False, in which case the rename falls back to a
        simultaneous :meth:`vector_compose`, which is slower but correct
        under any order (dynamic reordering can break the interleave).
        """
        if not mapping:
            return f
        pairs = sorted(mapping.items(), key=lambda kv: self._level_of_var[kv[0]])
        images = [self._level_of_var[v] for _, v in pairs]
        if images == sorted(images):
            # The rename must also not move a variable across an unrenamed
            # variable in f's support in an order-violating way; detected
            # lazily during reconstruction (mk with out-of-order children
            # would break canonicity silently).
            key_map = tuple(sorted(mapping.items()))
            self._ensure_depth()
            try:
                return self._rename(f, mapping, key_map)
            except BddError:
                if strict:
                    raise
        elif strict:
            raise BddError("rename mapping must preserve the variable order")
        return self.vector_compose(
            f, {v: self.var(nv) for v, nv in mapping.items()}
        )

    def _rename(self, f: int, mapping: Dict[int, int], key_map: Tuple) -> int:
        if f < 2:
            return f
        if f & 1:
            return self._rename(f ^ 1, mapping, key_map) ^ 1
        key = ("rename", f, key_map)
        stats = self._op_stats["rename"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        idx = f >> 1
        var = self._var[idx]
        lo = self._rename(self._lo[idx], mapping, key_map)
        hi = self._rename(self._hi[idx], mapping, key_map)
        nvar = mapping.get(var, var)
        nlvl = self._level_of_var[nvar]
        for child in (lo, hi):
            if child >= 2 and self._node_level(child) <= nlvl:
                raise BddError(
                    "rename would reorder variables; use compose instead"
                )
        res = self._mk(nvar, lo, hi)
        self._cache_insert(key, res)
        return res

    def compose(self, f: int, var, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``."""
        v = var if isinstance(var, int) else self.var_index(var)
        return self.ite(g, self.restrict(f, {v: True}), self.restrict(f, {v: False}))

    def vector_compose(self, f: int, substitution: Dict[int, int]) -> int:
        """Simultaneously substitute functions for variables in ``f``.

        ``substitution`` maps variable indices to replacement functions.
        Implemented by Shannon recursion from the top; correct for
        simultaneous (non-iterated) substitution.
        """
        if not substitution:
            return f
        key_map = tuple(sorted(substitution.items()))
        self._ensure_depth()
        return self._vcompose(f, substitution, key_map)

    def _vcompose(self, f: int, sub: Dict[int, int], key_map: Tuple) -> int:
        if f < 2:
            return f
        if f & 1:
            return self._vcompose(f ^ 1, sub, key_map) ^ 1
        key = ("vcomp", f, key_map)
        stats = self._op_stats["vcomp"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        idx = f >> 1
        var = self._var[idx]
        lo = self._vcompose(self._lo[idx], sub, key_map)
        hi = self._vcompose(self._hi[idx], sub, key_map)
        g = sub.get(var)
        if g is None:
            g = self.var(var)
        res = self.ite(g, hi, lo)
        self._cache_insert(key, res)
        return res

    # ------------------------------------------------------------------
    # Cofactors and don't-care minimization
    # ------------------------------------------------------------------

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``f`` with respect to a partial variable assignment."""
        if not assignment:
            return f
        key_map = tuple(sorted(assignment.items()))
        self._ensure_depth()
        return self._restrict(f, assignment, key_map)

    def _restrict(self, f: int, assignment: Dict[int, bool], key_map: Tuple) -> int:
        if f < 2:
            return f
        if f & 1:
            return self._restrict(f ^ 1, assignment, key_map) ^ 1
        key = ("restr", f, key_map)
        stats = self._op_stats["restr"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        idx = f >> 1
        var = self._var[idx]
        if var in assignment:
            res = self._restrict(
                self._hi[idx] if assignment[var] else self._lo[idx],
                assignment, key_map,
            )
        else:
            res = self._mk(
                var,
                self._restrict(self._lo[idx], assignment, key_map),
                self._restrict(self._hi[idx], assignment, key_map),
            )
        self._cache_insert(key, res)
        return res

    def cofactor_cube(self, f: int, cube: int) -> int:
        """Cofactor ``f`` by a (possibly negative-literal) cube BDD."""
        assignment: Dict[int, bool] = {}
        while cube >= 2:
            c = cube & 1
            idx = cube >> 1
            var = self._var[idx]
            lo = self._lo[idx] ^ c
            if lo == FALSE:
                assignment[var] = True
                cube = self._hi[idx] ^ c
            else:
                assignment[var] = False
                cube = lo
        return self.restrict(f, assignment)

    def constrain(self, f: int, c: int) -> int:
        """Generalized cofactor (constrain) of ``f`` by care set ``c``.

        ``constrain(f, c)`` agrees with ``f`` on ``c`` and is free to take
        any value outside; it maps each minterm outside ``c`` to the value
        of ``f`` on the nearest minterm inside ``c`` (Coudert-Madre).
        """
        if c == FALSE:
            raise BddError("constrain by the empty care set is undefined")
        self._ensure_depth()
        return self._constrain(f, c)

    def _constrain(self, f: int, c: int) -> int:
        if c == TRUE or f < 2:
            return f
        if f & 1:
            return self._constrain(f ^ 1, c) ^ 1
        if f == c:
            return TRUE
        if f == (c ^ 1):
            return FALSE
        key = ("constrain", f, c)
        stats = self._op_stats["constrain"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        var = self.top_var(f, c)
        f0, f1 = self._cofactors(f, var)
        c0, c1 = self._cofactors(c, var)
        if c0 == FALSE:
            res = self._constrain(f1, c1)
        elif c1 == FALSE:
            res = self._constrain(f0, c0)
        else:
            res = self._mk(var, self._constrain(f0, c0), self._constrain(f1, c1))
        self._cache_insert(key, res)
        return res

    def restrict_dc(self, f: int, c: int) -> int:
        """Coudert-Madre *restrict*: minimize ``f`` using care set ``c``.

        Like :meth:`constrain` but quantifies variables absent from ``f``
        out of the care set first, which guarantees the result's support
        is a subset of ``f``'s support and usually yields smaller BDDs.
        HSIS uses this to shrink intermediate BDDs with reached-state
        don't cares (paper §1 item 3).
        """
        if c == FALSE:
            raise BddError("restrict by the empty care set is undefined")
        self._ensure_depth()
        return self._restrict_dc(f, c)

    def _restrict_dc(self, f: int, c: int) -> int:
        if c == TRUE or f < 2:
            return f
        if f & 1:
            return self._restrict_dc(f ^ 1, c) ^ 1
        key = ("restrdc", f, c)
        stats = self._op_stats["restrdc"]
        stats[0] += 1
        res = self._cache.get(key)
        if res is not None:
            stats[1] += 1
            return res
        lf, lc = self._node_level(f), self._node_level(c)
        if lc < lf:
            cidx = c >> 1
            cc = c & 1
            res = self._restrict_dc(
                f, self.or_(self._lo[cidx] ^ cc, self._hi[cidx] ^ cc)
            )
        else:
            idx = f >> 1
            var = self._var[idx]
            f0, f1 = self._lo[idx], self._hi[idx]
            c0, c1 = self._cofactors(c, var)
            if c0 == FALSE:
                res = self._restrict_dc(f1, c1)
            elif c1 == FALSE:
                res = self._restrict_dc(f0, c0)
            else:
                res = self._mk(
                    var, self._restrict_dc(f0, c0), self._restrict_dc(f1, c1)
                )
        self._cache_insert(key, res)
        return res

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def support(self, f: int) -> List[int]:
        """Variable indices in the support of ``f``, in order."""
        seen = set()
        sup = set()
        stack = [f >> 1]
        while stack:
            idx = stack.pop()
            if idx == 0 or idx in seen:
                continue
            seen.add(idx)
            sup.add(self._var[idx])
            stack.append(self._lo[idx] >> 1)
            stack.append(self._hi[idx] >> 1)
        return sorted(sup, key=lambda v: self._level_of_var[v])

    def size(self, f) -> int:
        """Number of distinct nodes in the DAG(s) rooted at ``f``.

        ``f`` may be a single handle or an iterable of handles (shared
        size).  Terminal polarities are counted as reached — so
        ``size(FALSE) == size(TRUE) == 1``, a literal has size 3, and
        ``size(f) == size(not_(f))`` always (they share every node).
        """
        roots = [f] if isinstance(f, int) else list(f)
        seen = set()
        terminals = set()
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n < 2:
                terminals.add(n)
                continue
            idx = n >> 1
            if idx in seen:
                continue
            seen.add(idx)
            c = n & 1
            stack.append(self._lo[idx] ^ c)
            stack.append(self._hi[idx] ^ c)
        return len(seen) + len(terminals)

    def var_population(self, var) -> int:
        """Number of live unique-table nodes labelled with ``var``."""
        v = var if isinstance(var, int) else self.var_index(var)
        return len(self._unique[v])

    def complement_edge_count(self) -> int:
        """Number of live nodes whose stored else-edge is complemented."""
        var_arr = self._var
        lo_arr = self._lo
        return sum(
            1 for i in range(1, len(var_arr))
            if var_arr[i] >= 0 and (lo_arr[i] & 1)
        )

    def eval(self, f: int, assignment: Dict) -> bool:
        """Evaluate ``f`` under a total assignment (name or index keys)."""
        norm = {
            (k if isinstance(k, int) else self.var_index(k)): bool(v)
            for k, v in assignment.items()
        }
        while f >= 2:
            idx = f >> 1
            var = self._var[idx]
            if var not in norm:
                raise BddError(f"assignment misses variable {self.var_name(var)!r}")
            f = (self._hi[idx] if norm[var] else self._lo[idx]) ^ (f & 1)
        return f == TRUE

    def sat_count(self, f: int, care_vars: Optional[Sequence] = None) -> int:
        """Exact model count of ``f`` over ``care_vars``.

        ``care_vars`` defaults to all declared variables; it must contain
        the support of ``f``.  Exact arbitrary-precision arithmetic.
        Complement edges are handled by counting regular nodes and taking
        the complement against the suffix space at each complemented arc.
        """
        import bisect

        self._ensure_depth()
        if care_vars is None:
            care = list(range(self.var_count))
        else:
            care = [v if isinstance(v, int) else self.var_index(v) for v in care_vars]
        care_levels = sorted(self._level_of_var[v] for v in care)
        care_set = set(care_levels)
        for v in self.support(f):
            if self._level_of_var[v] not in care_set:
                raise BddError("care_vars must contain the support of f")
        n = len(care_levels)

        def rank(level: int) -> int:
            """Number of care variables with level < ``level``."""
            return bisect.bisect_left(care_levels, level)

        memo: Dict[int, int] = {}

        def count_from(handle: int, from_rank: int) -> int:
            # Models of ``handle`` over care vars of rank >= from_rank.
            if handle == TRUE:
                return 1 << (n - from_rank)
            if handle == FALSE:
                return 0
            idx = handle >> 1
            node_rank = rank(self._level_of_var[self._var[idx]])
            c = walk(idx)
            if handle & 1:
                c = (1 << (n - node_rank)) - c
            return c << (node_rank - from_rank)

        def walk(idx: int) -> int:
            # Models of the *regular* node over ranks >= its own rank.
            got = memo.get(idx)
            if got is not None:
                return got
            r = rank(self._level_of_var[self._var[idx]])
            total = (
                count_from(self._lo[idx], r + 1)
                + count_from(self._hi[idx], r + 1)
            )
            memo[idx] = total
            return total

        return count_from(f, 0)

    def pick_cube(self, f: int, care_vars: Optional[Sequence] = None) -> Optional[Dict[int, bool]]:
        """Return one satisfying partial assignment, or None if ``f`` is FALSE.

        Variables in ``care_vars`` (indices or names) absent from the
        chosen path are assigned ``False`` to make the cube total over the
        care set.  Prefers low branches (lexicographically smallest cube).
        """
        if f == FALSE:
            return None
        cube: Dict[int, bool] = {}
        node = f
        while node >= 2:
            c = node & 1
            idx = node >> 1
            var = self._var[idx]
            lo = self._lo[idx] ^ c
            if lo != FALSE:
                cube[var] = False
                node = lo
            else:
                cube[var] = True
                node = self._hi[idx] ^ c
        if care_vars is not None:
            for v in care_vars:
                idx = v if isinstance(v, int) else self.var_index(v)
                cube.setdefault(idx, False)
        return cube

    def sat_iter(self, f: int, care_vars: Sequence) -> Iterator[Dict[int, bool]]:
        """Enumerate all total satisfying assignments over ``care_vars``."""
        self._ensure_depth()
        care = [v if isinstance(v, int) else self.var_index(v) for v in care_vars]
        care_sorted = sorted(care, key=lambda v: self._level_of_var[v])

        def expand(node: int, idx: int, acc: Dict[int, bool]) -> Iterator[Dict[int, bool]]:
            if node == FALSE:
                return
            if idx == len(care_sorted):
                if node == TRUE:
                    yield dict(acc)
                return
            var = care_sorted[idx]
            node_var = self._var[node >> 1] if node >= 2 else None
            if node_var == var:
                c = node & 1
                n_idx = node >> 1
                lo, hi = self._lo[n_idx] ^ c, self._hi[n_idx] ^ c
                for val, child in ((False, lo), (True, hi)):
                    acc[var] = val
                    yield from expand(child, idx + 1, acc)
                del acc[var]
            else:
                # node does not test var (or is TRUE): both branches.
                for val in (False, True):
                    acc[var] = val
                    yield from expand(node, idx + 1, acc)
                del acc[var]

        yield from expand(f, 0, {})

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def register_root(self, name: str, node: int) -> None:
        """Register/overwrite an external GC root under ``name``."""
        self._roots[name] = node

    def deregister_root(self, name: str) -> None:
        """Drop a previously registered root (missing names are ignored)."""
        self._roots.pop(name, None)

    def register_root_group(self, prefix: str, nodes: Iterable[int]) -> None:
        """Register a family of roots under ``prefix.<i>`` names.

        Any previously registered roots with the same prefix are dropped
        first, so re-registering a shrinking family does not leak stale
        roots.
        """
        stale = [k for k in self._roots if k.startswith(prefix + ".")]
        for k in stale:
            del self._roots[k]
        for i, node in enumerate(nodes):
            self._roots[f"{prefix}.{i}"] = node

    def gc(self, extra_roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep collection; returns the number of nodes freed.

        Keeps every node reachable from registered roots plus
        ``extra_roots``.  Node indices of live nodes are stable (marking
        masks off the complement bit, so both polarities survive
        together).  The computed cache is cleared only when nodes were
        actually freed (a no-op sweep cannot leave dangling entries).
        """
        marked = set()
        stack = [h >> 1 for h in self._roots.values()]
        stack.extend(h >> 1 for h in extra_roots)
        while stack:
            idx = stack.pop()
            if idx == 0 or idx in marked:
                continue
            marked.add(idx)
            stack.append(self._lo[idx] >> 1)
            stack.append(self._hi[idx] >> 1)
        freed = 0
        for node in range(1, len(self._var)):
            if node in marked or self._var[node] < 0:
                continue
            table = self._unique[self._var[node]]
            table.pop((self._lo[node], self._hi[node]), None)
            self._var[node] = -1
            self._free.append(node)
            freed += 1
        if freed:
            self._cache.clear()
        self.gc_count += 1
        self._gc_pending = False
        self._nodes_since_gc = 0
        self.tracer.instant(
            "bdd.gc", cat="bdd",
            freed=freed, live=len(self), roots=len(self._roots),
            runs=self.gc_count,
        )
        return freed

    def maybe_gc(self, extra_roots: Iterable[int] = ()) -> int:
        """Run pending collections/reorders iff auto-managed ones are due.

        Engines call this at *safe points* — moments where every node
        they hold is either a registered root or passed via
        ``extra_roots`` — so intermediates held only in operator locals
        are never swept.  A pending dynamic reorder (see ``auto_reorder``)
        runs here too, under the same contract: in-place sifting keeps
        every root handle valid.  Returns the number of nodes freed by
        GC (0 when no collection ran).
        """
        if not (self._gc_pending or self._reorder_pending):
            return 0
        extra = list(extra_roots)
        freed = 0
        if self._gc_pending:
            freed = self.gc(extra_roots=extra)
        if self._reorder_pending and not self._in_reorder:
            self.reorder_now(extra_roots=extra)
        return freed

    def reorder_now(self, extra_roots: Iterable[int] = ()) -> int:
        """Sift the variable order in place; returns nodes saved.

        Must only be called at a safe point (everything live registered
        as a root or passed via ``extra_roots``).  Root handles remain
        valid — swaps relabel nodes without moving their indices.
        """
        from repro.bdd.ordering import sift_in_place

        if self._in_reorder:
            return 0
        extra = list(extra_roots)
        self._in_reorder = True
        try:
            with self.tracer.span("bdd.reorder", cat="bdd"):
                # Sifting frees dead nodes eagerly via refcounts, so start
                # from a collected heap for an accurate count.
                self.gc(extra_roots=extra)
                before = len(self)
                stats = sift_in_place(self, extra_roots=extra)
                after = len(self)
                # Swaps invalidate structure-keyed cache entries.
                self._cache.clear()
        finally:
            self._in_reorder = False
            self._reorder_pending = False
        self.reorder_count += 1
        self.sift_swaps += stats["swaps"]
        self.sift_fast_swaps += stats["fast_swaps"]
        self.sift_lb_skips += stats["lb_skips"]
        if self.auto_reorder is not None:
            self._reorder_watermark = max(self.auto_reorder, 2 * after)
        self.tracer.instant(
            "bdd.reorder_done", cat="bdd",
            before=before, after=after,
            swaps=stats["swaps"], fast_swaps=stats["fast_swaps"],
            runs=self.reorder_count,
        )
        return before - after

    # ------------------------------------------------------------------
    # In-place level-swap primitives (used by repro.bdd.ordering.sift_in_place)
    # ------------------------------------------------------------------

    def _build_refcounts(self, extra_roots: Iterable[int] = ()) -> List[int]:
        """Per-index reference counts from live nodes and roots.

        Valid only at a safe point right after :meth:`gc`: every live
        node is then reachable from the counted references, so sifting
        can free nodes eagerly the moment their count drops to zero.
        """
        refs = [0] * len(self._var)
        var_arr = self._var
        for idx in range(1, len(var_arr)):
            if var_arr[idx] < 0:
                continue
            refs[self._lo[idx] >> 1] += 1
            refs[self._hi[idx] >> 1] += 1
        for h in self._roots.values():
            refs[h >> 1] += 1
        for h in extra_roots:
            refs[h >> 1] += 1
        return refs

    def _deref(self, handle: int, refs: List[int]) -> None:
        """Drop one reference; recursively free nodes reaching zero."""
        stack = [handle >> 1]
        while stack:
            idx = stack.pop()
            if idx == 0:
                continue
            refs[idx] -= 1
            if refs[idx] == 0 and self._var[idx] >= 0:
                table = self._unique[self._var[idx]]
                table.pop((self._lo[idx], self._hi[idx]), None)
                stack.append(self._lo[idx] >> 1)
                stack.append(self._hi[idx] >> 1)
                self._var[idx] = -1
                self._free.append(idx)

    def _mk_ref(self, var: int, lo: int, hi: int, refs: List[int]) -> int:
        """Refcount-aware :meth:`_mk` used during in-place swaps.

        Newly created nodes charge one reference to each child; found
        nodes charge nothing (the caller accounts for its own reference).
        Never arms auto-GC/auto-reorder — we are inside the reorder.
        """
        if lo == hi:
            return lo
        neg = hi & 1
        if neg:
            lo ^= 1
            hi ^= 1
        table = self._unique[var]
        key = (lo, hi)
        node = table.get(key)
        if node is None:
            if self._free:
                node = self._free.pop()
                self._var[node] = var
                self._lo[node] = lo
                self._hi[node] = hi
            else:
                node = len(self._var)
                self._var.append(var)
                self._lo.append(lo)
                self._hi.append(hi)
                refs.append(0)
            table[key] = node
            refs[node] = 0
            refs[lo >> 1] += 1
            refs[hi >> 1] += 1
            live = len(self._var) - len(self._free) + 1
            if live > self.peak_live_nodes:
                self.peak_live_nodes = live
        return (node << 1) | neg

    def _swap_levels_only(self, lvl: int) -> None:
        """Bookkeeping-only swap of levels ``lvl`` and ``lvl+1``.

        Correct exactly when the two variables do not interact (no live
        function depends on both), so no node labelled with the upper
        variable reaches one labelled with the lower.
        """
        x = self._var_at_level[lvl]
        y = self._var_at_level[lvl + 1]
        self._var_at_level[lvl], self._var_at_level[lvl + 1] = y, x
        self._level_of_var[x], self._level_of_var[y] = lvl + 1, lvl

    def _swap_adjacent(self, lvl: int, refs: List[int]) -> int:
        """Swap the variables at ``lvl`` and ``lvl+1`` in place.

        The classic sifting primitive: every node labelled ``x`` (upper)
        that reaches a ``y`` node is relabelled ``y`` in place — keeping
        its index, hence every external handle — with freshly built ``x``
        children.  Nodes whose reference count drops to zero are freed
        eagerly.  The canonical form survives because a handle's polarity
        equals its value on the all-ones assignment, which no variable
        order can change.  Returns the number of nodes rewritten.
        """
        x = self._var_at_level[lvl]
        y = self._var_at_level[lvl + 1]
        self._swap_levels_only(lvl)
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        unique_x = self._unique[x]
        unique_y = self._unique[y]
        moved = 0
        for node in list(unique_x.values()):
            lo = lo_arr[node]
            hi = hi_arr[node]
            lo_idx = lo >> 1
            hi_idx = hi >> 1
            lo_tests_y = var_arr[lo_idx] == y
            hi_tests_y = var_arr[hi_idx] == y
            if not (lo_tests_y or hi_tests_y):
                continue
            if lo_tests_y:
                c = lo & 1
                f00 = lo_arr[lo_idx] ^ c
                f01 = hi_arr[lo_idx] ^ c
            else:
                f00 = f01 = lo
            if hi_tests_y:
                c = hi & 1
                f10 = lo_arr[hi_idx] ^ c
                f11 = hi_arr[hi_idx] ^ c
            else:
                f10 = f11 = hi
            new_lo = self._mk_ref(x, f00, f10, refs)
            new_hi = self._mk_ref(x, f01, f11, refs)
            # Relabel in place: same index, same function, y on top now.
            del unique_x[(lo, hi)]
            var_arr[node] = y
            lo_arr[node] = new_lo
            hi_arr[node] = new_hi
            unique_y[(new_lo, new_hi)] = node
            refs[new_lo >> 1] += 1
            refs[new_hi >> 1] += 1
            self._deref(lo, refs)
            self._deref(hi, refs)
            moved += 1
        return moved

    def clear_cache(self) -> None:
        """Drop the computed cache (useful to bound memory in long runs)."""
        self._cache.clear()

    def cache_size(self) -> int:
        """Number of entries in the computed cache."""
        return len(self._cache)

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-operator computed-cache statistics.

        Returns ``{op: {"lookups": n, "hits": n, "hit_rate": r}}`` for
        every cached operator (see :data:`CACHED_OPS`).
        """
        out: Dict[str, Dict[str, float]] = {}
        for op, (lookups, hits) in self._op_stats.items():
            out[op] = {
                "lookups": lookups,
                "hits": hits,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }
        return out

    def cache_hit_rate(self) -> float:
        """Overall computed-cache hit rate across all operators."""
        lookups = sum(s[0] for s in self._op_stats.values())
        hits = sum(s[1] for s in self._op_stats.values())
        return (hits / lookups) if lookups else 0.0

    # ------------------------------------------------------------------
    # Export / debug
    # ------------------------------------------------------------------

    def to_expr(self, f: int) -> str:
        """Render ``f`` as a (possibly large) nested ite expression string."""
        if f == FALSE:
            return "FALSE"
        if f == TRUE:
            return "TRUE"
        idx = f >> 1
        c = f & 1
        name = self.var_name(self._var[idx])
        return (
            f"ite({name}, {self.to_expr(self._hi[idx] ^ c)}, "
            f"{self.to_expr(self._lo[idx] ^ c)})"
        )

    def stats(self) -> Dict[str, int]:
        """Manager statistics (live nodes, cache entries, variables, GCs)."""
        return {
            "live_nodes": len(self),
            "allocated_nodes": len(self._var) + 1,
            "cache_entries": len(self._cache),
            "cache_evictions": self.cache_evictions,
            "peak_live_nodes": self.peak_live_nodes,
            "variables": self.var_count,
            "gc_runs": self.gc_count,
            "not_calls": self.not_calls,
            "std_rewrites": self.std_rewrites,
            "complement_edges": self.complement_edge_count(),
            "reorder_runs": self.reorder_count,
            "reorder_swaps": self.sift_swaps,
            "reorder_fast_swaps": self.sift_fast_swaps,
        }
