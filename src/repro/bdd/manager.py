"""Reduced Ordered Binary Decision Diagram (ROBDD) manager.

This is the symbolic kernel of the HSIS reproduction.  HSIS (DAC 1994)
manipulated transition systems implicitly with BDDs in the style of
Coudert-Madre and SMV; this module provides the same primitives in pure
Python:

* a unique table guaranteeing canonicity of nodes,
* a computed cache shared by all operations,
* the ``ite`` operator and the boolean connectives derived from it,
* existential/universal quantification and the fused relational product
  ``and_exists`` (the workhorse of symbolic image computation),
* variable renaming (for present-state/next-state substitution),
* functional composition, generalized cofactor (``constrain``) and the
  Coudert-Madre ``restrict`` don't-care minimizer,
* satisfiability helpers (counting, cube enumeration, evaluation),
* a mark-and-sweep garbage collector driven by explicitly registered roots,
* dynamic variable reordering (sifting) at the same GC safe points.

Node storage follows the Brace-Rudell-Bryant efficient-package layout
(the one CUDD later standardized): nodes live in flat ``int64`` numpy
columns ``var``/``lo``/``hi`` with geometric growth, a single
open-addressing unique table (a linear-probe ``int64`` hash array keyed
on the ``(var, lo, hi)`` triple) guarantees canonicity, and the computed
cache is a direct-mapped array of ``(signature, value)`` rows rather
than a Python dict.  Hot scalar accesses go through ``memoryview``
wrappers over the columns (cheaper per element than ndarray indexing);
bulk passes — GC marking, sweep, unique-table rehash, batch evaluation —
operate on the numpy arrays directly and are vectorized.

Handles are *complemented edges*: a function handle is
``(node_index << 1) | complement_bit``.  There is a single terminal node
at index 0 (the constant one); ``TRUE`` is its regular handle ``0`` and
``FALSE`` its complemented handle ``1``.  Stored nodes keep their
then-edge regular (the canonical form), so every function and its
negation share one subgraph and ``not_`` is a constant-time bit flip
that allocates nothing.  Canonicity invariant: a handle is regular
exactly when its function evaluates to ``TRUE`` on the all-ones
assignment — a property independent of the variable order, which is what
makes in-place level swaps (sifting) safe under this encoding.
"""

from __future__ import annotations

import os

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.tracer import Tracer

#: Shared disabled tracer; replaced per-manager via the ``tracer``
#: attribute when structured tracing is on (see repro.trace).
_NULL_TRACER = Tracer(enabled=False)

TRUE = 0
FALSE = 1

_LEAF_LEVEL = 1 << 30

# Frame tags for the explicit-stack operators.
_EXPAND = 0
_REDUCE = 1
_COMBINE_OR = 2
_SHORT_CIRCUIT = 3
_REDUCE1 = 4

# Multiplicative hash constants shared by the scalar probe loops and the
# vectorized (uint64, silently wrapping) rehash passes.  The scalar side
# masks with _M64 so both sides compute identical slots.
_H1 = 0x9E3779B1
_H2 = 0x85EBCA77
_H3 = 0xC2B2AE3D
_M64 = (1 << 64) - 1

# Opcodes folded into computed-cache signatures: a = (handle << 6) | op.
_OP_ITE = 1
_OP_EXIST = 2
_OP_ANDEX = 3
_OP_RENAME = 4
_OP_VCOMP = 5
_OP_RESTR = 6
_OP_CONSTRAIN = 7
_OP_RESTRDC = 8

# Every computed-cache-keyed operation, for per-op hit/miss accounting.
# "and"/"or"/"xor" share the standardized "ite" cache but keep their own
# lookup/hit attribution so callers can still see which entry point pays.
CACHED_OPS = (
    "ite", "and", "or", "xor", "exist", "andex",
    "rename", "vcomp", "restr", "constrain", "restrdc",
)

_INITIAL_NODE_CAPACITY = 1 << 10
_INITIAL_UNIQUE_SIZE = 1 << 11
_INITIAL_CACHE_SIZE = 1 << 12
_MAX_CACHE_SIZE = 1 << 20


class BddError(Exception):
    """Raised for misuse of the BDD manager (unknown variables, etc.)."""


class BDD:
    """A manager owning a shared pool of ROBDD nodes.

    All functions returned by manager methods are plain ``int`` handles
    (``index << 1 | complement``); they are only meaningful together with
    the manager that produced them.  Handles stay valid across garbage
    collections and in-place reorders as long as they are reachable from
    a registered root (see :meth:`gc`).  Only the explicit
    :meth:`compact` safe-point operation moves nodes (and remaps the
    registered roots while doing so).

    The manager manages its own resources:

    * ``cache_limit`` bounds the computed cache: the cache is a
      direct-mapped array of at most ``cache_limit`` rows (rounded down
      to a power of two); a conflicting insertion overwrites the old row
      and counts as an eviction.  Correctness never depends on the
      cache.
    * ``auto_gc`` arms automatic collection: once more than ``auto_gc``
      nodes have been created since the last collection, :meth:`_mk`
      flags a pending GC which runs at the next *safe point* — a
      :meth:`maybe_gc` call from an engine loop where everything live is
      either a registered root or passed as an extra root.  The
      collection can never run in the middle of an operation because
      intermediate results held in Python locals are invisible to the
      mark phase.
    * ``auto_reorder`` arms dynamic sifting the same way: when the live
      node count grows past an adaptive watermark, :meth:`_mk` flags a
      pending reorder which also runs at the next :meth:`maybe_gc` safe
      point (in-place level swaps keep all root handles valid).  After a
      sift the watermark re-arms at twice the post-sift size, so a
      well-ordered manager is never sifted twice in a row.
    """

    def __init__(
        self,
        auto_gc: Optional[int] = None,
        cache_limit: Optional[int] = None,
        auto_reorder: Optional[int] = None,
        batch_apply: Optional[bool] = None,
    ) -> None:
        if auto_gc is not None and auto_gc < 1:
            raise BddError("auto_gc threshold must be positive (or None)")
        if cache_limit is not None and cache_limit < 1:
            raise BddError("cache_limit must be positive (or None)")
        if auto_reorder is not None and auto_reorder < 1:
            raise BddError("auto_reorder threshold must be positive (or None)")
        # Flat node columns.  Index 0 is the single terminal (constant
        # one); unallocated slots keep var == -1 so column scans can skip
        # them without consulting the free list.
        self._cap = _INITIAL_NODE_CAPACITY
        self._var_np = np.full(self._cap, -1, dtype=np.int64)
        self._lo_np = np.zeros(self._cap, dtype=np.int64)
        self._hi_np = np.zeros(self._cap, dtype=np.int64)
        self._n = 1  # high-water allocation mark (terminal included)
        self._free: List[int] = []
        # Single open-addressing unique table over (var, lo, hi):
        # slot values are 0 = empty, -1 = tombstone, else a node index
        # (node 0, the terminal, never enters the table).
        self._ut_size = _INITIAL_UNIQUE_SIZE
        self._ut_mask = self._ut_size - 1
        self._ut_np = np.zeros(self._ut_size, dtype=np.int64)
        self._ut_used = 0    # live entries
        self._ut_filled = 0  # live entries + tombstones
        # Direct-mapped computed cache: signature columns a/b/c and the
        # result column r.  a == -1 marks an empty row (signatures are
        # always non-negative: a = (handle << 6) | opcode).
        if cache_limit is not None:
            ck_size = 1 << (cache_limit.bit_length() - 1)
            self._ck_growable = False
        else:
            ck_size = _INITIAL_CACHE_SIZE
            self._ck_growable = True
        self._ck_cap = ck_size
        self._ck_mask = ck_size - 1
        self._ck_a_np = np.full(ck_size, -1, dtype=np.int64)
        self._ck_b_np = np.zeros(ck_size, dtype=np.int64)
        self._ck_c_np = np.zeros(ck_size, dtype=np.int64)
        self._ck_r_np = np.zeros(ck_size, dtype=np.int64)
        self._ck_used = 0
        # Interned ids for rename/compose/restrict argument maps so their
        # cache signatures fit the three int64 columns.  Entries may
        # mention node handles, but the cache is cleared whenever nodes
        # are freed, so a stale id can never produce a false hit.
        self._map_ids: Dict[Tuple, int] = {}
        self._refresh_views()
        # Variable bookkeeping.
        self._name_of_var: List[str] = []
        self._var_of_name: Dict[str, int] = {}
        self._level_of_var: List[int] = []
        self._var_at_level: List[int] = []
        # Live unique-table population per variable (sifting cost model).
        self._pop: List[int] = []
        # Externally registered GC roots (name -> handle).
        self._roots: Dict[str, int] = {}
        self.gc_count = 0
        self.compact_count = 0
        # Resource management knobs and telemetry.
        self.auto_gc = auto_gc
        self.cache_limit = cache_limit
        self.auto_reorder = auto_reorder
        self.cache_evictions = 0
        self.peak_live_nodes = 2
        self._gc_pending = False
        self._nodes_since_gc = 0
        self._reorder_pending = False
        self._in_reorder = False
        self._reorder_watermark = auto_reorder if auto_reorder is not None else 0
        self.reorder_count = 0
        self.sift_swaps = 0
        self.sift_fast_swaps = 0
        self.sift_lb_skips = 0
        # O(1) negation / ITE standardization telemetry.
        self.not_calls = 0
        self.std_rewrites = 0
        # Frontier-batched apply knob (see repro.bdd.batch) + telemetry.
        if batch_apply is None:
            batch_apply = os.environ.get("HSIS_BATCH_APPLY", "1") != "0"
        self.batch_apply = bool(batch_apply)
        self.batch_calls = 0
        self.batch_requests = 0
        self.batch_scalar_requests = 0
        self.batch_frontiers = 0
        self.batch_frontier_nodes = 0
        self.batch_max_width = 0
        # op -> [lookups, hits] for the computed cache.
        self._op_stats: Dict[str, List[int]] = {op: [0, 0] for op in CACHED_OPS}
        # Structured event sink (GC sweeps, reorders, compactions).
        self.tracer: Tracer = _NULL_TRACER

    # ------------------------------------------------------------------
    # Array plumbing
    # ------------------------------------------------------------------

    def _refresh_views(self) -> None:
        """(Re)wrap the numpy columns in memoryviews for scalar access."""
        self._var = memoryview(self._var_np)
        self._lo = memoryview(self._lo_np)
        self._hi = memoryview(self._hi_np)
        self._ut = memoryview(self._ut_np)
        self._ck_a = memoryview(self._ck_a_np)
        self._ck_b = memoryview(self._ck_b_np)
        self._ck_c = memoryview(self._ck_c_np)
        self._ck_r = memoryview(self._ck_r_np)

    def __getstate__(self):
        # memoryviews cannot be pickled; rebuild them on load.
        state = self.__dict__.copy()
        for key in ("_var", "_lo", "_hi", "_ut",
                    "_ck_a", "_ck_b", "_ck_c", "_ck_r"):
            state.pop(key, None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._refresh_views()

    def _grow_nodes(self) -> None:
        """Double the node columns, refreshing the scalar views.

        Hot loops that cache the views in locals must re-check identity
        (``self._var is not var_arr``) after any call that can allocate.
        """
        cap = self._cap * 2
        var2 = np.full(cap, -1, dtype=np.int64)
        lo2 = np.zeros(cap, dtype=np.int64)
        hi2 = np.zeros(cap, dtype=np.int64)
        n = self._n
        var2[:n] = self._var_np[:n]
        lo2[:n] = self._lo_np[:n]
        hi2[:n] = self._hi_np[:n]
        self._var_np, self._lo_np, self._hi_np = var2, lo2, hi2
        self._cap = cap
        self._var = memoryview(var2)
        self._lo = memoryview(lo2)
        self._hi = memoryview(hi2)

    # ------------------------------------------------------------------
    # Open-addressing unique table
    # ------------------------------------------------------------------

    def _ut_bulk_insert(self, idxs: "np.ndarray") -> None:
        """Vectorized batch insert of node indices into a tombstone-free
        table (used by rehash/rebuild; all keys are distinct).

        Batch linear probing: sort pending entries by slot, let the first
        entry of each slot group claim the slot if it is empty, advance
        everyone else by one and repeat.  Placements only ever fill
        slots, so every placed key remains reachable by probing from its
        home slot.
        """
        table = self._ut_np
        v = self._var_np[idxs].astype(np.uint64)
        lo = self._lo_np[idxs].astype(np.uint64)
        hi = self._hi_np[idxs].astype(np.uint64)
        h = v * _H1 + lo * _H2 + hi * _H3
        h ^= h >> np.uint64(16)
        slots = (h & np.uint64(self._ut_mask)).astype(np.int64)
        pending = idxs.astype(np.int64)
        mask = np.int64(self._ut_mask)
        one = np.int64(1)
        while pending.size:
            order = np.argsort(slots, kind="stable")
            slots = slots[order]
            pending = pending[order]
            first = np.empty(slots.size, dtype=bool)
            first[0] = True
            if slots.size > 1:
                first[1:] = slots[1:] != slots[:-1]
            place = first & (table[slots] == 0)
            table[slots[place]] = pending[place]
            keep = ~place
            slots = (slots[keep] + one) & mask
            pending = pending[keep]

    def _ut_rebuild(self, min_size: Optional[int] = None) -> None:
        """Rebuild the unique table from the live node columns.

        Drops all tombstones; grows (doubling) until the live load
        factor is below 3/4.  Called after GC sweeps, compaction and
        when the probe loops detect the table filling up.
        """
        n = self._n
        live = np.flatnonzero(self._var_np[:n] >= 0)
        size = self._ut_size if min_size is None else min_size
        while int(live.size) * 4 >= size * 3:
            size *= 2
        self._ut_np = np.zeros(size, dtype=np.int64)
        self._ut_size = size
        self._ut_mask = size - 1
        self._ut = memoryview(self._ut_np)
        self._ut_used = self._ut_filled = int(live.size)
        if live.size:
            self._ut_bulk_insert(live)

    def _ut_delete(self, idx: int) -> None:
        """Tombstone the unique-table entry of node ``idx`` (pre-relabel:
        the node's columns must still hold the stored triple)."""
        var = self._var[idx]
        lo = self._lo[idx]
        hi = self._hi[idx]
        ut = self._ut
        mask = self._ut_mask
        h = (var * _H1 + lo * _H2 + hi * _H3) & _M64
        h ^= h >> 16
        slot = h & mask
        while True:
            e = ut[slot]
            if e == idx:
                ut[slot] = -1
                self._ut_used -= 1
                return
            if e == 0:
                return
            slot = (slot + 1) & mask

    def _ut_insert_node(self, idx: int) -> None:
        """Insert an existing node index under its (relabelled) triple.

        The caller guarantees the triple is not already present (swap
        relabels preserve function distinctness, so a collision would
        mean two nodes computing the same function).
        """
        var = self._var[idx]
        lo = self._lo[idx]
        hi = self._hi[idx]
        ut = self._ut
        mask = self._ut_mask
        h = (var * _H1 + lo * _H2 + hi * _H3) & _M64
        h ^= h >> 16
        slot = h & mask
        while True:
            e = ut[slot]
            if e == 0:
                ut[slot] = idx
                self._ut_filled += 1
                break
            if e < 0:
                ut[slot] = idx
                break
            slot = (slot + 1) & mask
        self._ut_used += 1
        if self._ut_filled * 4 >= self._ut_size * 3:
            self._ut_rebuild()

    # ------------------------------------------------------------------
    # Direct-mapped computed cache
    # ------------------------------------------------------------------

    def _ck_get(self, a: int, b: int, c: int) -> int:
        """Computed-cache lookup; returns the cached handle or -1."""
        h = (a * _H1 + b * _H2 + c * _H3) & _M64
        h ^= h >> 16
        slot = h & self._ck_mask
        if (
            self._ck_a[slot] == a
            and self._ck_b[slot] == b
            and self._ck_c[slot] == c
        ):
            return self._ck_r[slot]
        return -1

    def _ck_put(self, a: int, b: int, c: int, r: int) -> None:
        """Computed-cache insert; a conflicting row is overwritten (and
        counted as an eviction).  Never frees or moves nodes, so indices
        held by in-flight operator stacks stay valid."""
        if (
            self._ck_growable
            and self._ck_cap < _MAX_CACHE_SIZE
            and (self._ck_used + 1) * 4 >= self._ck_cap * 3
        ):
            self._ck_grow()
        h = (a * _H1 + b * _H2 + c * _H3) & _M64
        h ^= h >> 16
        slot = h & self._ck_mask
        ck_a = self._ck_a
        prev = ck_a[slot]
        if prev == -1:
            self._ck_used += 1
        elif (
            prev != a
            or self._ck_b[slot] != b
            or self._ck_c[slot] != c
        ):
            self.cache_evictions += 1
        ck_a[slot] = a
        self._ck_b[slot] = b
        self._ck_c[slot] = c
        self._ck_r[slot] = r

    def _ck_grow(self) -> None:
        """Quadruple the cache, rehashing the live rows vectorized.

        Rows that collide in the new table keep the last writer — it is
        a cache, losing entries is always safe.
        """
        cap = self._ck_cap * 4
        mask = np.uint64(cap - 1)
        old_a, old_b = self._ck_a_np, self._ck_b_np
        old_c, old_r = self._ck_c_np, self._ck_r_np
        valid = np.flatnonzero(old_a != -1)
        new_a = np.full(cap, -1, dtype=np.int64)
        new_b = np.zeros(cap, dtype=np.int64)
        new_c = np.zeros(cap, dtype=np.int64)
        new_r = np.zeros(cap, dtype=np.int64)
        if valid.size:
            a = old_a[valid].astype(np.uint64)
            b = old_b[valid].astype(np.uint64)
            c = old_c[valid].astype(np.uint64)
            h = a * _H1 + b * _H2 + c * _H3
            h ^= h >> np.uint64(16)
            slots = (h & mask).astype(np.int64)
            new_a[slots] = old_a[valid]
            new_b[slots] = old_b[valid]
            new_c[slots] = old_c[valid]
            new_r[slots] = old_r[valid]
            self._ck_used = int(np.unique(slots).size)
        else:
            self._ck_used = 0
        self._ck_a_np, self._ck_b_np = new_a, new_b
        self._ck_c_np, self._ck_r_np = new_c, new_r
        self._ck_cap = cap
        self._ck_mask = cap - 1
        self._ck_a = memoryview(new_a)
        self._ck_b = memoryview(new_b)
        self._ck_c = memoryview(new_c)
        self._ck_r = memoryview(new_r)

    def _map_id(self, key_map: Tuple) -> int:
        """Intern an argument-map tuple for cache signatures."""
        got = self._map_ids.get(key_map)
        if got is None:
            got = len(self._map_ids)
            self._map_ids[key_map] = got
        return got

    def clear_cache(self) -> None:
        """Drop the computed cache (useful to bound memory in long runs)."""
        self._ck_a_np.fill(-1)
        self._ck_used = 0

    def cache_size(self) -> int:
        """Number of live rows in the computed cache."""
        return self._ck_used

    # ------------------------------------------------------------------
    # Variables and ordering
    # ------------------------------------------------------------------

    def add_var(self, name: str, level: Optional[int] = None) -> int:
        """Declare a new variable, optionally inserted at ``level``.

        Returns the variable index.  By default the variable is appended
        at the bottom of the current order.
        """
        if name in self._var_of_name:
            raise BddError(f"variable {name!r} already declared")
        var = len(self._name_of_var)
        self._name_of_var.append(name)
        self._var_of_name[name] = var
        self._pop.append(0)
        if level is None:
            level = len(self._var_at_level)
        if not 0 <= level <= len(self._var_at_level):
            raise BddError(f"level {level} out of range")
        if level == len(self._var_at_level):
            # Appending at the bottom shifts nobody.
            self._var_at_level.append(var)
            self._level_of_var.append(level)
        else:
            self._var_at_level.insert(level, var)
            self._level_of_var.append(0)
            for lvl, v in enumerate(self._var_at_level):
                self._level_of_var[v] = lvl
        return var

    @property
    def var_count(self) -> int:
        """Number of declared variables."""
        return len(self._name_of_var)

    def var_index(self, name: str) -> int:
        """Return the variable index for ``name``."""
        try:
            return self._var_of_name[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def var_name(self, var: int) -> str:
        """Return the name of variable index ``var``."""
        return self._name_of_var[var]

    def level(self, var: int) -> int:
        """Return the current level (order position) of variable ``var``."""
        return self._level_of_var[var]

    def var_at(self, level: int) -> int:
        """Return the variable currently sitting at ``level``."""
        return self._var_at_level[level]

    @property
    def order(self) -> Tuple[int, ...]:
        """Variables from top level to bottom level."""
        return tuple(self._var_at_level)

    def set_order(self, order: Sequence[int]) -> None:
        """Install a new variable order.

        Every declared variable must appear exactly once.  Existing node
        handles are *not* remapped: callers should re-derive functions or
        use :meth:`repro.bdd.ordering.reorder` which rebuilds registered
        roots under the new order.  This method is only safe when the
        manager holds no live nodes besides constants.
        """
        if sorted(order) != list(range(self.var_count)):
            raise BddError("new order must be a permutation of all variables")
        if len(self) > 2:
            raise BddError(
                "set_order on a non-empty manager would break canonicity; "
                "use repro.bdd.ordering.reorder instead"
            )
        self._var_at_level = list(order)
        for lvl, v in enumerate(self._var_at_level):
            self._level_of_var[v] = lvl
        self.clear_cache()

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _node_level(self, f: int) -> int:
        v = self._var[f >> 1]
        return _LEAF_LEVEL if v < 0 else self._level_of_var[v]

    def _mk(self, var: int, lo: int, hi: int) -> int:
        """Find-or-create the canonical handle for ``(var, lo, hi)``.

        Enforces the complement-edge canonical form: if the then-edge is
        complemented, both children are flipped and the returned handle
        carries the complement instead, so stored then-edges are always
        regular and ``f``/``not f`` resolve to the same node.
        """
        if lo == hi:
            return lo
        neg = hi & 1
        if neg:
            lo ^= 1
            hi ^= 1
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        ut = self._ut
        mask = self._ut_mask
        h = (var * _H1 + lo * _H2 + hi * _H3) & _M64
        h ^= h >> 16
        slot = h & mask
        tomb = -1
        while True:
            e = ut[slot]
            if e == 0:
                break
            if e < 0:
                if tomb < 0:
                    tomb = slot
            elif var_arr[e] == var and lo_arr[e] == lo and hi_arr[e] == hi:
                return (e << 1) | neg
            slot = (slot + 1) & mask
        if self._free:
            node = self._free.pop()
        else:
            node = self._n
            if node == self._cap:
                self._grow_nodes()
                var_arr = self._var
                lo_arr = self._lo
                hi_arr = self._hi
            self._n = node + 1
        var_arr[node] = var
        lo_arr[node] = lo
        hi_arr[node] = hi
        if tomb >= 0:
            ut[tomb] = node
        else:
            ut[slot] = node
            self._ut_filled += 1
        self._ut_used += 1
        self._pop[var] += 1
        if self._ut_filled * 4 >= self._ut_size * 3:
            self._ut_rebuild()
        self._nodes_since_gc += 1
        live = self._n - len(self._free) + 1
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live
        if (
            self.auto_gc is not None
            and not self._gc_pending
            and self._nodes_since_gc >= self.auto_gc
        ):
            # Flag only: collecting here would sweep intermediates held in
            # the in-flight operation's locals.  maybe_gc() runs it at the
            # next engine safe point.
            self._gc_pending = True
        if (
            self.auto_reorder is not None
            and not self._reorder_pending
            and not self._in_reorder
            and live > self._reorder_watermark
        ):
            self._reorder_pending = True
        return (node << 1) | neg

    def var(self, name_or_index) -> int:
        """Return the function of a single positive literal."""
        var = name_or_index if isinstance(name_or_index, int) else self.var_index(name_or_index)
        return self._mk(var, FALSE, TRUE)

    def nvar(self, name_or_index) -> int:
        """Return the function of a single negative literal."""
        return self.var(name_or_index) ^ 1

    @property
    def true(self) -> int:
        return TRUE

    @property
    def false(self) -> int:
        return FALSE

    def __len__(self) -> int:
        """Total live nodes in the pool.

        The single terminal counts as two (both polarities), keeping the
        node accounting comparable with two-terminal kernels.
        """
        return self._n - len(self._free) + 1

    # ------------------------------------------------------------------
    # Core operators
    # ------------------------------------------------------------------

    def top_var(self, *nodes: int) -> int:
        """Variable with the smallest level among the tops of ``nodes``."""
        best = -1
        best_level = _LEAF_LEVEL
        for f in nodes:
            v = self._var[f >> 1]
            if v >= 0:
                lvl = self._level_of_var[v]
                if lvl < best_level:
                    best_level = lvl
                    best = v
        return best

    def _cofactors(self, f: int, var: int) -> Tuple[int, int]:
        idx = f >> 1
        if self._var[idx] == var:
            c = f & 1
            return self._lo[idx] ^ c, self._hi[idx] ^ c
        return f, f

    def _ite(self, f: int, g: int, h: int, stats: List[int]) -> int:
        """Standardized, explicit-stack if-then-else.

        Each triple is rewritten to the Brace-Rudell-Bryant standard form
        before the cache lookup — equal/complement arguments collapsed,
        commutative special forms ordered by (level, index), the first
        argument made regular, the complement pushed out of the then
        branch — so every equivalent call shares one cache line.
        ``stats`` attributes the lookups to the calling entry point
        (``ite``/``and``/``or``/``xor``) while the cache key stays shared.

        Cache lookups are inlined against the direct-mapped signature
        columns; locals caching the column views are refreshed whenever
        an allocation or insertion may have reallocated them.
        """
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        ck_a = self._ck_a
        ck_b = self._ck_b
        ck_c = self._ck_c
        ck_r = self._ck_r
        ck_mask = self._ck_mask
        lvl_of = self._level_of_var
        mk = self._mk
        todo: List[Tuple] = [(_EXPAND, f, g, h, 0)]
        results: List[int] = []
        std_rewrites = 0
        while todo:
            frame = todo.pop()
            if frame[0] == _EXPAND:
                _, f, g, h, outneg = frame
                # Collapse branches equal (or complementary) to the test.
                if g == f:
                    g = TRUE
                elif g == (f ^ 1):
                    g = FALSE
                if h == f:
                    h = FALSE
                elif h == (f ^ 1):
                    h = TRUE
                # Terminal cases.
                if f == TRUE:
                    results.append(g ^ outneg)
                    continue
                if f == FALSE:
                    results.append(h ^ outneg)
                    continue
                if g == h:
                    results.append(g ^ outneg)
                    continue
                if g == TRUE and h == FALSE:
                    results.append(f ^ outneg)
                    continue
                if g == FALSE and h == TRUE:
                    results.append(f ^ 1 ^ outneg)
                    continue
                orig_f, orig_g, orig_h = f, g, h
                # Canonical argument order for the commutative forms.  In
                # every branch both compared operands are internal nodes
                # (terminal combinations were all resolved above), so the
                # (level, index) key packs into one int without a leaf
                # check.
                fi = f >> 1
                fkey = (lvl_of[var_arr[fi]] << 32) | fi
                if g == TRUE:  # f | h == h | f
                    oi = h >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, h = h, f
                elif h == FALSE:  # f & g == g & f
                    oi = g >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, g = g, f
                elif h == TRUE:  # f -> g == ~g -> ~f
                    oi = g >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, g = g ^ 1, f ^ 1
                elif g == FALSE:  # ~f & h == ~h & f (operands flipped)
                    oi = h >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, h = h ^ 1, f ^ 1
                elif g == (h ^ 1):  # f <-> g == g <-> f
                    oi = g >> 1
                    if (lvl_of[var_arr[oi]] << 32) | oi < fkey:
                        f, g, h = g, f, f ^ 1
                # First argument regular: ite(~f,g,h) == ite(f,h,g).
                if f & 1:
                    f, g, h = f ^ 1, h, g
                # Then-branch regular: push the complement to the output.
                if g & 1:
                    g ^= 1
                    h ^= 1
                    outneg ^= 1
                if f != orig_f or g != orig_g or h != orig_h:
                    std_rewrites += 1
                a = (f << 6) | _OP_ITE
                stats[0] += 1
                hs = (a * _H1 + g * _H2 + h * _H3) & _M64
                hs ^= hs >> 16
                slot = hs & ck_mask
                if ck_a[slot] == a and ck_b[slot] == g and ck_c[slot] == h:
                    stats[1] += 1
                    results.append(ck_r[slot] ^ outneg)
                    continue
                # Inline top_var + cofactors (f is never terminal here).
                fi = f >> 1
                var = var_arr[fi]
                top = lvl_of[var]
                gi = g >> 1
                vg = var_arr[gi]
                if vg >= 0 and lvl_of[vg] < top:
                    var = vg
                    top = lvl_of[vg]
                hd = h >> 1
                vh = var_arr[hd]
                if vh >= 0 and lvl_of[vh] < top:
                    var = vh
                    top = lvl_of[vh]
                if var_arr[fi] == var:
                    c = f & 1
                    f0 = lo_arr[fi] ^ c
                    f1 = hi_arr[fi] ^ c
                else:
                    f0 = f1 = f
                if vg == var:
                    c = g & 1
                    g0 = lo_arr[gi] ^ c
                    g1 = hi_arr[gi] ^ c
                else:
                    g0 = g1 = g
                if vh == var:
                    c = h & 1
                    h0 = lo_arr[hd] ^ c
                    h1 = hi_arr[hd] ^ c
                else:
                    h0 = h1 = h
                todo.append((_REDUCE, var, a, g, h, outneg))
                todo.append((_EXPAND, f1, g1, h1, 0))
                todo.append((_EXPAND, f0, g0, h0, 0))
            else:
                _, var, a, b, c, outneg = frame
                hi = results.pop()
                lo = results.pop()
                res = mk(var, lo, hi)
                self._ck_put(a, b, c, res)
                if self._var is not var_arr:
                    var_arr = self._var
                    lo_arr = self._lo
                    hi_arr = self._hi
                if self._ck_a is not ck_a:
                    ck_a = self._ck_a
                    ck_b = self._ck_b
                    ck_c = self._ck_c
                    ck_r = self._ck_r
                    ck_mask = self._ck_mask
                results.append(res ^ outneg)
        self.std_rewrites += std_rewrites
        return results.pop()

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f & g | ~f & h``.  The universal connective."""
        return self._ite(f, g, h, self._op_stats["ite"])

    def not_(self, f: int) -> int:
        """Negation: an O(1) complement-bit flip; allocates no nodes."""
        self.not_calls += 1
        return f ^ 1

    def and_(self, f: int, g: int) -> int:
        """Conjunction (standardized ``ite(f, g, FALSE)``)."""
        return self._ite(f, g, FALSE, self._op_stats["and"])

    def or_(self, f: int, g: int) -> int:
        """Disjunction (standardized ``ite(f, TRUE, g)``)."""
        return self._ite(f, TRUE, g, self._op_stats["or"])

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self._ite(f, g ^ 1, g, self._op_stats["xor"])

    def xnor(self, f: int, g: int) -> int:
        """Equivalence."""
        return self._ite(f, g, g ^ 1, self._op_stats["xor"])

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self._ite(f, g, TRUE, self._op_stats["or"])

    def diff(self, f: int, g: int) -> int:
        """Difference ``f & ~g``."""
        return self._ite(f, g ^ 1, FALSE, self._op_stats["and"])

    def conj(self, fs: Iterable[int]) -> int:
        """Conjunction of many functions."""
        res = TRUE
        for f in fs:
            res = self.and_(res, f)
            if res == FALSE:
                return FALSE
        return res

    def disj(self, fs: Iterable[int]) -> int:
        """Disjunction of many functions."""
        res = FALSE
        for f in fs:
            res = self.or_(res, f)
            if res == TRUE:
                return TRUE
        return res

    # ------------------------------------------------------------------
    # Frontier-batched apply (see repro.bdd.batch)
    # ------------------------------------------------------------------

    #: apply_many op name -> ((f, g) -> standardized ite triple, stat op).
    _APPLY_TRIPLES = {
        "and": (lambda f, g: (f, g, FALSE), "and"),
        "or": (lambda f, g: (f, TRUE, g), "or"),
        "xor": (lambda f, g: (f, g ^ 1, g), "xor"),
        "xnor": (lambda f, g: (f, g, g ^ 1), "xor"),
        "implies": (lambda f, g: (f, g, TRUE), "or"),
        "diff": (lambda f, g: (f, g ^ 1, FALSE), "and"),
    }

    def _use_batch(self, n: int) -> bool:
        # Single requests stay scalar: they keep the short-circuit wins
        # and skip the numpy marshalling overhead.
        if self.batch_apply and n >= 2:
            return True
        self.batch_scalar_requests += n
        return False

    def ite_many(self, triples: Iterable[Tuple[int, int, int]]) -> List[int]:
        """Batched :meth:`ite` over many ``(f, g, h)`` triples.

        With ``batch_apply`` on, all requests expand breadth-first as
        shared per-level frontiers (one vectorized cache probe and one
        batched unique-table find-or-create per level) and the results
        are handle-identical to looping :meth:`ite`.  With the knob off
        (or a single request) this is exactly that loop.
        """
        reqs = [(f, g, h) for f, g, h in triples]
        if not self._use_batch(len(reqs)):
            st = self._op_stats["ite"]
            return [self._ite(f, g, h, st) for f, g, h in reqs]
        from repro.bdd import batch

        return batch.ite_many(self, reqs, "ite")

    def apply_many(
        self, op: str, pairs: Iterable[Tuple[int, int]]
    ) -> List[int]:
        """Batched binary connective over many ``(f, g)`` pairs.

        ``op`` is one of ``and``/``or``/``xor``/``xnor``/``implies``/
        ``diff``; each pair maps to its standardized ite triple so all
        ops share the scalar path's cache lines.
        """
        try:
            to_triple, stat_op = self._APPLY_TRIPLES[op]
        except KeyError:
            raise BddError(f"apply_many does not support op {op!r}") from None
        reqs = [to_triple(f, g) for f, g in pairs]
        if not self._use_batch(len(reqs)):
            st = self._op_stats[stat_op]
            return [self._ite(f, g, h, st) for f, g, h in reqs]
        from repro.bdd import batch

        return batch.ite_many(self, reqs, stat_op)

    def and_exists_many(
        self, requests: Iterable[Tuple[int, int, object]]
    ) -> List[int]:
        """Batched fused relational products ``exists vars . f & g``.

        Each request is ``(f, g, cube_or_variables)``; whole image
        schedule steps issue as one call so the and-exists recursion
        runs as shared per-level frontiers.
        """
        reqs = [
            (f, g, c if isinstance(c, int) else self.cube(c))
            for f, g, c in requests
        ]
        if not self._use_batch(len(reqs)):
            return [self._and_exists(f, g, c) for f, g, c in reqs]
        from repro.bdd import batch

        return batch.and_exists_many(self, reqs)

    def rename_many(
        self,
        fs: Sequence[int],
        mapping: Dict[int, int],
        strict: bool = True,
    ) -> List[int]:
        """Batched :meth:`rename` of many roots under one mapping.

        The n-ary entry point for shared-shape instantiation replay:
        all roots traverse as one frontier so isomorphic conjuncts share
        every cache probe and node build.  Falls back to
        :meth:`vector_compose_many` for *all* roots when the mapping is
        order-violating and ``strict`` is False (mirroring
        :meth:`rename`).
        """
        roots = list(fs)
        if not mapping:
            return roots
        pairs = sorted(mapping.items(), key=lambda kv: self._level_of_var[kv[0]])
        images = [self._level_of_var[v] for _, v in pairs]
        if images == sorted(images):
            map_id = self._map_id(("rename",) + tuple(sorted(mapping.items())))
            try:
                if not self._use_batch(len(roots)):
                    return [self._rename(f, mapping, map_id) for f in roots]
                from repro.bdd import batch

                return batch.rename_many(self, roots, mapping, map_id)
            except BddError:
                if strict:
                    raise
        elif strict:
            raise BddError("rename mapping must preserve the variable order")
        return self.vector_compose_many(
            roots, {v: self.var(nv) for v, nv in mapping.items()}
        )

    def vector_compose_many(
        self, fs: Sequence[int], substitution: Dict[int, int]
    ) -> List[int]:
        """Batched simultaneous substitution over many roots."""
        roots = list(fs)
        if not substitution:
            return roots
        map_id = self._map_id(
            ("vcomp",) + tuple(sorted(substitution.items()))
        )
        if not self._use_batch(len(roots)):
            return [self._vcompose(f, substitution, map_id) for f in roots]
        from repro.bdd import batch

        return batch.vcompose_many(self, roots, substitution, map_id)

    # ------------------------------------------------------------------
    # Quantification and relational product
    # ------------------------------------------------------------------

    def cube(self, variables: Iterable) -> int:
        """Positive cube (conjunction of positive literals) over ``variables``.

        Used as the canonical representation of a quantification set.
        """
        vs = sorted(
            (v if isinstance(v, int) else self.var_index(v) for v in variables),
            key=lambda v: self._level_of_var[v],
            reverse=True,
        )
        res = TRUE
        for v in vs:
            res = self._mk(v, FALSE, res)
        return res

    def cube_vars(self, cube: int) -> List[int]:
        """Variable indices appearing in a positive cube."""
        out = []
        while cube >= 2:
            c = cube & 1
            idx = cube >> 1
            out.append(self._var[idx])
            lo = self._lo[idx] ^ c
            cube = (self._hi[idx] ^ c) if lo == FALSE else lo
        return out

    def _cube_next(self, cube: int) -> int:
        """The sub-cube below the top variable of a positive cube."""
        return self._hi[cube >> 1] ^ (cube & 1)

    def exist(self, variables, f: int) -> int:
        """Existentially quantify ``variables`` out of ``f``."""
        cube = variables if isinstance(variables, int) else self.cube(variables)
        return self._exist(cube, f)

    def _exist(self, cube: int, f: int) -> int:
        stats = self._op_stats["exist"]
        todo: List[Tuple] = [(_EXPAND, cube, f)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, cube, f = frame
                if f < 2 or cube == TRUE:
                    results.append(f)
                    continue
                # Skip cube variables above f's top.
                flevel = self._node_level(f)
                while cube != TRUE and self._node_level(cube) < flevel:
                    cube = self._cube_next(cube)
                if cube == TRUE:
                    results.append(f)
                    continue
                a = (cube << 6) | _OP_EXIST
                stats[0] += 1
                res = self._ck_get(a, f, 0)
                if res >= 0:
                    stats[1] += 1
                    results.append(res)
                    continue
                idx = f >> 1
                c = f & 1
                var = self._var[idx]
                lo, hi = self._lo[idx] ^ c, self._hi[idx] ^ c
                if self._var[cube >> 1] == var:
                    sub = self._cube_next(cube)
                    todo.append((_COMBINE_OR, a, f))
                    todo.append((_EXPAND, sub, hi))
                    todo.append((_EXPAND, sub, lo))
                else:
                    todo.append((_REDUCE, var, a, f))
                    todo.append((_EXPAND, cube, hi))
                    todo.append((_EXPAND, cube, lo))
            elif tag == _REDUCE:
                _, var, a, b = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._ck_put(a, b, 0, res)
                results.append(res)
            else:  # _COMBINE_OR
                _, a, b = frame
                hi = results.pop()
                lo = results.pop()
                res = self.or_(lo, hi)
                self._ck_put(a, b, 0, res)
                results.append(res)
        return results.pop()

    def forall(self, variables, f: int) -> int:
        """Universally quantify ``variables`` out of ``f``."""
        return self.exist(variables, f ^ 1) ^ 1

    def and_exists(self, f: int, g: int, variables) -> int:
        """Fused relational product ``exists variables . f & g``.

        Avoids building the full conjunction before quantifying — the
        crucial optimization for symbolic image computation (paper §5.3).
        """
        cube = variables if isinstance(variables, int) else self.cube(variables)
        return self._and_exists(f, g, cube)

    def _and_exists(self, f: int, g: int, cube: int) -> int:
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        ck_a = self._ck_a
        ck_b = self._ck_b
        ck_c = self._ck_c
        ck_r = self._ck_r
        ck_mask = self._ck_mask
        lvl_of = self._level_of_var
        stats = self._op_stats["andex"]
        todo: List[Tuple] = [(_EXPAND, f, g, cube)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, f, g, cube = frame
                if f == FALSE or g == FALSE or f == (g ^ 1):
                    results.append(FALSE)
                    continue
                if cube == TRUE:
                    results.append(self.and_(f, g))
                    if self._var is not var_arr:
                        var_arr = self._var
                        lo_arr = self._lo
                        hi_arr = self._hi
                    if self._ck_a is not ck_a:
                        ck_a = self._ck_a
                        ck_b = self._ck_b
                        ck_c = self._ck_c
                        ck_r = self._ck_r
                        ck_mask = self._ck_mask
                    continue
                if f == TRUE and g == TRUE:
                    results.append(TRUE)
                    continue
                if f > g:
                    f, g = g, f
                # Inline top-level computation; at least one of f, g is an
                # internal node here.
                vf = var_arr[f >> 1]
                vg = var_arr[g >> 1]
                lf = _LEAF_LEVEL if vf < 0 else lvl_of[vf]
                lg = _LEAF_LEVEL if vg < 0 else lvl_of[vg]
                top = lf if lf < lg else lg
                while cube != TRUE and lvl_of[var_arr[cube >> 1]] < top:
                    cube = hi_arr[cube >> 1] ^ (cube & 1)
                if cube == TRUE:
                    results.append(self.and_(f, g))
                    if self._var is not var_arr:
                        var_arr = self._var
                        lo_arr = self._lo
                        hi_arr = self._hi
                    if self._ck_a is not ck_a:
                        ck_a = self._ck_a
                        ck_b = self._ck_b
                        ck_c = self._ck_c
                        ck_r = self._ck_r
                        ck_mask = self._ck_mask
                    continue
                a = (f << 6) | _OP_ANDEX
                stats[0] += 1
                hs = (a * _H1 + g * _H2 + cube * _H3) & _M64
                hs ^= hs >> 16
                slot = hs & ck_mask
                if ck_a[slot] == a and ck_b[slot] == g and ck_c[slot] == cube:
                    stats[1] += 1
                    results.append(ck_r[slot])
                    continue
                var = vf if lf <= lg else vg
                fi = f >> 1
                if vf == var:
                    c = f & 1
                    f0 = lo_arr[fi] ^ c
                    f1 = hi_arr[fi] ^ c
                else:
                    f0 = f1 = f
                gi = g >> 1
                if vg == var:
                    c = g & 1
                    g0 = lo_arr[gi] ^ c
                    g1 = hi_arr[gi] ^ c
                else:
                    g0 = g1 = g
                if var_arr[cube >> 1] == var:
                    sub = self._cube_next(cube)
                    todo.append((_SHORT_CIRCUIT, f1, g1, sub, a, g, cube))
                    todo.append((_EXPAND, f0, g0, sub))
                else:
                    todo.append((_REDUCE, var, a, g, cube))
                    todo.append((_EXPAND, f1, g1, cube))
                    todo.append((_EXPAND, f0, g0, cube))
            elif tag == _REDUCE:
                _, var, a, b, c = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._ck_put(a, b, c, res)
                if self._var is not var_arr:
                    var_arr = self._var
                    lo_arr = self._lo
                    hi_arr = self._hi
                if self._ck_a is not ck_a:
                    ck_a = self._ck_a
                    ck_b = self._ck_b
                    ck_c = self._ck_c
                    ck_r = self._ck_r
                    ck_mask = self._ck_mask
                results.append(res)
            elif tag == _SHORT_CIRCUIT:
                _, f1, g1, sub, a, b, c = frame
                lo = results.pop()
                if lo == TRUE:
                    self._ck_put(a, b, c, TRUE)
                    if self._ck_a is not ck_a:
                        ck_a = self._ck_a
                        ck_b = self._ck_b
                        ck_c = self._ck_c
                        ck_r = self._ck_r
                        ck_mask = self._ck_mask
                    results.append(TRUE)
                else:
                    results.append(lo)
                    todo.append((_COMBINE_OR, a, b, c))
                    todo.append((_EXPAND, f1, g1, sub))
            else:  # _COMBINE_OR
                _, a, b, c = frame
                hi = results.pop()
                lo = results.pop()
                res = self.or_(lo, hi)
                self._ck_put(a, b, c, res)
                if self._var is not var_arr:
                    var_arr = self._var
                    lo_arr = self._lo
                    hi_arr = self._hi
                if self._ck_a is not ck_a:
                    ck_a = self._ck_a
                    ck_b = self._ck_b
                    ck_c = self._ck_c
                    ck_r = self._ck_r
                    ck_mask = self._ck_mask
                results.append(res)
        return results.pop()

    # ------------------------------------------------------------------
    # Substitution
    # ------------------------------------------------------------------

    def rename(self, f: int, mapping: Dict[int, int], strict: bool = True) -> int:
        """Rename variables according to ``mapping`` (var index -> var index).

        The mapping must be order-preserving with respect to the current
        variable order (as is the case for interleaved present/next state
        variables); otherwise a :class:`BddError` is raised — unless
        ``strict`` is False, in which case the rename falls back to a
        simultaneous :meth:`vector_compose`, which is slower but correct
        under any order (dynamic reordering can break the interleave).
        """
        if not mapping:
            return f
        pairs = sorted(mapping.items(), key=lambda kv: self._level_of_var[kv[0]])
        images = [self._level_of_var[v] for _, v in pairs]
        if images == sorted(images):
            # The rename must also not move a variable across an unrenamed
            # variable in f's support in an order-violating way; detected
            # lazily during reconstruction (mk with out-of-order children
            # would break canonicity silently).
            map_id = self._map_id(("rename",) + tuple(sorted(mapping.items())))
            try:
                return self._rename(f, mapping, map_id)
            except BddError:
                if strict:
                    raise
        elif strict:
            raise BddError("rename mapping must preserve the variable order")
        return self.vector_compose(
            f, {v: self.var(nv) for v, nv in mapping.items()}
        )

    def _rename(self, f: int, mapping: Dict[int, int], map_id: int) -> int:
        stats = self._op_stats["rename"]
        todo: List[Tuple] = [(_EXPAND, f)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            if frame[0] == _EXPAND:
                _, f = frame
                if f < 2:
                    results.append(f)
                    continue
                neg = f & 1
                f ^= neg
                a = (f << 6) | _OP_RENAME
                stats[0] += 1
                res = self._ck_get(a, map_id, 0)
                if res >= 0:
                    stats[1] += 1
                    results.append(res ^ neg)
                    continue
                idx = f >> 1
                todo.append((_REDUCE, self._var[idx], a, neg))
                todo.append((_EXPAND, self._hi[idx]))
                todo.append((_EXPAND, self._lo[idx]))
            else:
                _, var, a, neg = frame
                hi = results.pop()
                lo = results.pop()
                nvar = mapping.get(var, var)
                nlvl = self._level_of_var[nvar]
                for child in (lo, hi):
                    if child >= 2 and self._node_level(child) <= nlvl:
                        raise BddError(
                            "rename would reorder variables; use compose instead"
                        )
                res = self._mk(nvar, lo, hi)
                self._ck_put(a, map_id, 0, res)
                results.append(res ^ neg)
        return results.pop()

    def compose(self, f: int, var, g: int) -> int:
        """Substitute function ``g`` for variable ``var`` in ``f``.

        Routed through :meth:`vector_compose` so the substitution runs as
        one cached Shannon recursion instead of two full cofactor
        traversals plus an uncached ``ite``.
        """
        v = var if isinstance(var, int) else self.var_index(var)
        return self.vector_compose(f, {v: g})

    def vector_compose(self, f: int, substitution: Dict[int, int]) -> int:
        """Simultaneously substitute functions for variables in ``f``.

        ``substitution`` maps variable indices to replacement functions.
        Implemented by Shannon recursion from the top; correct for
        simultaneous (non-iterated) substitution.
        """
        if not substitution:
            return f
        map_id = self._map_id(("vcomp",) + tuple(sorted(substitution.items())))
        return self._vcompose(f, substitution, map_id)

    def _vcompose(self, f: int, sub: Dict[int, int], map_id: int) -> int:
        stats = self._op_stats["vcomp"]
        todo: List[Tuple] = [(_EXPAND, f)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            if frame[0] == _EXPAND:
                _, f = frame
                if f < 2:
                    results.append(f)
                    continue
                neg = f & 1
                f ^= neg
                a = (f << 6) | _OP_VCOMP
                stats[0] += 1
                res = self._ck_get(a, map_id, 0)
                if res >= 0:
                    stats[1] += 1
                    results.append(res ^ neg)
                    continue
                idx = f >> 1
                todo.append((_REDUCE, self._var[idx], a, neg))
                todo.append((_EXPAND, self._hi[idx]))
                todo.append((_EXPAND, self._lo[idx]))
            else:
                _, var, a, neg = frame
                hi = results.pop()
                lo = results.pop()
                g = sub.get(var)
                if g is None:
                    g = self.var(var)
                res = self.ite(g, hi, lo)
                self._ck_put(a, map_id, 0, res)
                results.append(res ^ neg)
        return results.pop()

    # ------------------------------------------------------------------
    # Cofactors and don't-care minimization
    # ------------------------------------------------------------------

    def restrict(self, f: int, assignment: Dict[int, bool]) -> int:
        """Cofactor ``f`` with respect to a partial variable assignment."""
        if not assignment:
            return f
        map_id = self._map_id(("restr",) + tuple(sorted(assignment.items())))
        return self._restrict(f, assignment, map_id)

    def _restrict(self, f: int, assignment: Dict[int, bool], map_id: int) -> int:
        stats = self._op_stats["restr"]
        todo: List[Tuple] = [(_EXPAND, f)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, f = frame
                if f < 2:
                    results.append(f)
                    continue
                neg = f & 1
                f ^= neg
                a = (f << 6) | _OP_RESTR
                stats[0] += 1
                res = self._ck_get(a, map_id, 0)
                if res >= 0:
                    stats[1] += 1
                    results.append(res ^ neg)
                    continue
                idx = f >> 1
                var = self._var[idx]
                if var in assignment:
                    todo.append((_REDUCE1, a, neg))
                    todo.append((
                        _EXPAND,
                        self._hi[idx] if assignment[var] else self._lo[idx],
                    ))
                else:
                    todo.append((_REDUCE, var, a, neg))
                    todo.append((_EXPAND, self._hi[idx]))
                    todo.append((_EXPAND, self._lo[idx]))
            elif tag == _REDUCE:
                _, var, a, neg = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._ck_put(a, map_id, 0, res)
                results.append(res ^ neg)
            else:  # _REDUCE1
                _, a, neg = frame
                res = results.pop()
                self._ck_put(a, map_id, 0, res)
                results.append(res ^ neg)
        return results.pop()

    def cofactor_cube(self, f: int, cube: int) -> int:
        """Cofactor ``f`` by a (possibly negative-literal) cube BDD."""
        assignment: Dict[int, bool] = {}
        while cube >= 2:
            c = cube & 1
            idx = cube >> 1
            var = self._var[idx]
            lo = self._lo[idx] ^ c
            if lo == FALSE:
                assignment[var] = True
                cube = self._hi[idx] ^ c
            else:
                assignment[var] = False
                cube = lo
        return self.restrict(f, assignment)

    def constrain(self, f: int, c: int) -> int:
        """Generalized cofactor (constrain) of ``f`` by care set ``c``.

        ``constrain(f, c)`` agrees with ``f`` on ``c`` and is free to take
        any value outside; it maps each minterm outside ``c`` to the value
        of ``f`` on the nearest minterm inside ``c`` (Coudert-Madre).
        """
        if c == FALSE:
            raise BddError("constrain by the empty care set is undefined")
        return self._constrain(f, c)

    def _constrain(self, f: int, c: int) -> int:
        stats = self._op_stats["constrain"]
        todo: List[Tuple] = [(_EXPAND, f, c)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, f, care = frame
                if care == TRUE or f < 2:
                    results.append(f)
                    continue
                neg = f & 1
                f ^= neg
                if f == care:
                    results.append(TRUE ^ neg)
                    continue
                if f == (care ^ 1):
                    results.append(FALSE ^ neg)
                    continue
                a = (f << 6) | _OP_CONSTRAIN
                stats[0] += 1
                res = self._ck_get(a, care, 0)
                if res >= 0:
                    stats[1] += 1
                    results.append(res ^ neg)
                    continue
                var = self.top_var(f, care)
                f0, f1 = self._cofactors(f, var)
                c0, c1 = self._cofactors(care, var)
                if c0 == FALSE:
                    todo.append((_REDUCE1, a, care, neg))
                    todo.append((_EXPAND, f1, c1))
                elif c1 == FALSE:
                    todo.append((_REDUCE1, a, care, neg))
                    todo.append((_EXPAND, f0, c0))
                else:
                    todo.append((_REDUCE, var, a, care, neg))
                    todo.append((_EXPAND, f1, c1))
                    todo.append((_EXPAND, f0, c0))
            elif tag == _REDUCE:
                _, var, a, care, neg = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._ck_put(a, care, 0, res)
                results.append(res ^ neg)
            else:  # _REDUCE1
                _, a, care, neg = frame
                res = results.pop()
                self._ck_put(a, care, 0, res)
                results.append(res ^ neg)
        return results.pop()

    def restrict_dc(self, f: int, c: int) -> int:
        """Coudert-Madre *restrict*: minimize ``f`` using care set ``c``.

        Like :meth:`constrain` but quantifies variables absent from ``f``
        out of the care set first, which guarantees the result's support
        is a subset of ``f``'s support and usually yields smaller BDDs.
        HSIS uses this to shrink intermediate BDDs with reached-state
        don't cares (paper §1 item 3).
        """
        if c == FALSE:
            raise BddError("restrict by the empty care set is undefined")
        return self._restrict_dc(f, c)

    def _restrict_dc(self, f: int, c: int) -> int:
        stats = self._op_stats["restrdc"]
        todo: List[Tuple] = [(_EXPAND, f, c)]
        results: List[int] = []
        while todo:
            frame = todo.pop()
            tag = frame[0]
            if tag == _EXPAND:
                _, f, care = frame
                if care == TRUE or f < 2:
                    results.append(f)
                    continue
                neg = f & 1
                f ^= neg
                a = (f << 6) | _OP_RESTRDC
                stats[0] += 1
                res = self._ck_get(a, care, 0)
                if res >= 0:
                    stats[1] += 1
                    results.append(res ^ neg)
                    continue
                lf, lc = self._node_level(f), self._node_level(care)
                if lc < lf:
                    cidx = care >> 1
                    cc = care & 1
                    quantified = self.or_(
                        self._lo[cidx] ^ cc, self._hi[cidx] ^ cc
                    )
                    todo.append((_REDUCE1, a, care, neg))
                    todo.append((_EXPAND, f, quantified))
                else:
                    idx = f >> 1
                    var = self._var[idx]
                    f0, f1 = self._lo[idx], self._hi[idx]
                    c0, c1 = self._cofactors(care, var)
                    if c0 == FALSE:
                        todo.append((_REDUCE1, a, care, neg))
                        todo.append((_EXPAND, f1, c1))
                    elif c1 == FALSE:
                        todo.append((_REDUCE1, a, care, neg))
                        todo.append((_EXPAND, f0, c0))
                    else:
                        todo.append((_REDUCE, var, a, care, neg))
                        todo.append((_EXPAND, f1, c1))
                        todo.append((_EXPAND, f0, c0))
            elif tag == _REDUCE:
                _, var, a, care, neg = frame
                hi = results.pop()
                lo = results.pop()
                res = self._mk(var, lo, hi)
                self._ck_put(a, care, 0, res)
                results.append(res ^ neg)
            else:  # _REDUCE1
                _, a, care, neg = frame
                res = results.pop()
                self._ck_put(a, care, 0, res)
                results.append(res ^ neg)
        return results.pop()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def support(self, f: int) -> List[int]:
        """Variable indices in the support of ``f``, in order."""
        seen = set()
        sup = set()
        stack = [f >> 1]
        while stack:
            idx = stack.pop()
            if idx == 0 or idx in seen:
                continue
            seen.add(idx)
            sup.add(self._var[idx])
            stack.append(self._lo[idx] >> 1)
            stack.append(self._hi[idx] >> 1)
        return sorted(sup, key=lambda v: self._level_of_var[v])

    def size(self, f) -> int:
        """Number of distinct nodes in the DAG(s) rooted at ``f``.

        ``f`` may be a single handle or an iterable of handles (shared
        size).  Terminal polarities are counted as reached — so
        ``size(FALSE) == size(TRUE) == 1``, a literal has size 3, and
        ``size(f) == size(not_(f))`` always (they share every node).
        """
        roots = [f] if isinstance(f, int) else list(f)
        seen = set()
        terminals = set()
        stack = list(roots)
        while stack:
            n = stack.pop()
            if n < 2:
                terminals.add(n)
                continue
            idx = n >> 1
            if idx in seen:
                continue
            seen.add(idx)
            c = n & 1
            stack.append(self._lo[idx] ^ c)
            stack.append(self._hi[idx] ^ c)
        return len(seen) + len(terminals)

    def var_population(self, var) -> int:
        """Number of live unique-table nodes labelled with ``var``."""
        v = var if isinstance(var, int) else self.var_index(var)
        return self._pop[v]

    def complement_edge_count(self) -> int:
        """Number of live nodes whose stored else-edge is complemented."""
        n = self._n
        return int(np.count_nonzero(
            (self._var_np[:n] >= 0) & ((self._lo_np[:n] & 1) == 1)
        ))

    def eval(self, f: int, assignment: Dict) -> bool:
        """Evaluate ``f`` under a total assignment (name or index keys)."""
        norm = {
            (k if isinstance(k, int) else self.var_index(k)): bool(v)
            for k, v in assignment.items()
        }
        while f >= 2:
            idx = f >> 1
            var = self._var[idx]
            if var not in norm:
                raise BddError(f"assignment misses variable {self.var_name(var)!r}")
            f = (self._hi[idx] if norm[var] else self._lo[idx]) ^ (f & 1)
        return f == TRUE

    def eval_batch(self, f: int, assignments, variables=None) -> "np.ndarray":
        """Evaluate ``f`` on many assignments at once (vectorized).

        ``assignments`` is a 2-D boolean array-like, one row per
        assignment.  Columns correspond to all declared variables (by
        index) unless ``variables`` names the column order explicitly.
        Returns a boolean array of results.  All rows walk the DAG in
        lockstep — at most ``var_count`` numpy passes regardless of the
        number of rows.
        """
        bits = np.asarray(assignments, dtype=bool)
        if bits.ndim != 2:
            raise BddError("assignments must be a 2-D boolean array")
        if variables is None:
            if bits.shape[1] != self.var_count:
                raise BddError(
                    "assignment width must equal var_count "
                    f"({bits.shape[1]} != {self.var_count})"
                )
            full = bits
            covered = None
        else:
            cols = [
                v if isinstance(v, int) else self.var_index(v)
                for v in variables
            ]
            if len(cols) != bits.shape[1]:
                raise BddError("variables must match the assignment width")
            full = np.zeros((bits.shape[0], self.var_count), dtype=bool)
            full[:, cols] = bits
            covered = set(cols)
        if covered is not None:
            for v in self.support(f):
                if v not in covered:
                    raise BddError(
                        f"assignment misses variable {self.var_name(v)!r}"
                    )
        rows = full.shape[0]
        handles = np.full(rows, f, dtype=np.int64)
        var_np = self._var_np
        lo_np = self._lo_np
        hi_np = self._hi_np
        active = np.flatnonzero(handles >= 2)
        while active.size:
            ha = handles[active]
            idx = ha >> 1
            branch = full[active, var_np[idx]]
            child = np.where(branch, hi_np[idx], lo_np[idx]) ^ (ha & 1)
            handles[active] = child
            active = active[child >= 2]
        return handles == TRUE

    def sat_count(self, f: int, care_vars: Optional[Sequence] = None) -> int:
        """Exact model count of ``f`` over ``care_vars``.

        ``care_vars`` defaults to all declared variables; it must contain
        the support of ``f``.  Exact arbitrary-precision arithmetic.
        Complement edges are handled by counting regular nodes and taking
        the complement against the suffix space at each complemented arc.
        The node walk is an explicit-stack postorder, so deep chains never
        touch the interpreter recursion limit.
        """
        import bisect

        if care_vars is None:
            care = list(range(self.var_count))
        else:
            care = [v if isinstance(v, int) else self.var_index(v) for v in care_vars]
        care_levels = sorted(self._level_of_var[v] for v in care)
        care_set = set(care_levels)
        for v in self.support(f):
            if self._level_of_var[v] not in care_set:
                raise BddError("care_vars must contain the support of f")
        n = len(care_levels)
        lvl_of = self._level_of_var
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi

        def rank(level: int) -> int:
            """Number of care variables with level < ``level``."""
            return bisect.bisect_left(care_levels, level)

        # memo: regular node index -> model count over ranks >= its rank.
        memo: Dict[int, int] = {}

        def count_from(handle: int, from_rank: int) -> int:
            # Models of ``handle`` over care vars of rank >= from_rank;
            # the regular node's count must already be memoized.
            if handle == TRUE:
                return 1 << (n - from_rank)
            if handle == FALSE:
                return 0
            idx = handle >> 1
            node_rank = rank(lvl_of[var_arr[idx]])
            c = memo[idx]
            if handle & 1:
                c = (1 << (n - node_rank)) - c
            return c << (node_rank - from_rank)

        root_idx = f >> 1
        if root_idx:
            stack: List[Tuple[int, bool]] = [(root_idx, False)]
            while stack:
                idx, ready = stack.pop()
                if idx in memo:
                    continue
                if ready:
                    r = rank(lvl_of[var_arr[idx]])
                    memo[idx] = (
                        count_from(lo_arr[idx], r + 1)
                        + count_from(hi_arr[idx], r + 1)
                    )
                    continue
                stack.append((idx, True))
                for child in (lo_arr[idx], hi_arr[idx]):
                    ci = child >> 1
                    if ci and ci not in memo:
                        stack.append((ci, False))
        return count_from(f, 0)

    def pick_cube(self, f: int, care_vars: Optional[Sequence] = None) -> Optional[Dict[int, bool]]:
        """Return one satisfying partial assignment, or None if ``f`` is FALSE.

        Variables in ``care_vars`` (indices or names) absent from the
        chosen path are assigned ``False`` to make the cube total over the
        care set.  Prefers low branches (lexicographically smallest cube).
        """
        if f == FALSE:
            return None
        cube: Dict[int, bool] = {}
        node = f
        while node >= 2:
            c = node & 1
            idx = node >> 1
            var = self._var[idx]
            lo = self._lo[idx] ^ c
            if lo != FALSE:
                cube[var] = False
                node = lo
            else:
                cube[var] = True
                node = self._hi[idx] ^ c
        if care_vars is not None:
            for v in care_vars:
                idx = v if isinstance(v, int) else self.var_index(v)
                cube.setdefault(idx, False)
        return cube

    def sat_iter(self, f: int, care_vars: Sequence) -> Iterator[Dict[int, bool]]:
        """Enumerate all total satisfying assignments over ``care_vars``.

        Iterative DFS: each stack frame records the branch value taken
        into it, applied to a shared prefix assignment when the frame is
        popped (sibling subtrees only ever rewrite deeper positions, so
        the prefix stays valid).
        """
        care = [v if isinstance(v, int) else self.var_index(v) for v in care_vars]
        care_sorted = sorted(care, key=lambda v: self._level_of_var[v])
        m = len(care_sorted)
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        acc: Dict[int, bool] = {}
        # (node, depth, branch): branch is the value of care_sorted[depth-1].
        stack: List[Tuple[int, int, bool]] = [(f, 0, False)]
        while stack:
            node, depth, branch = stack.pop()
            if depth:
                acc[care_sorted[depth - 1]] = branch
            if node == FALSE:
                continue
            if depth == m:
                if node == TRUE:
                    yield dict(acc)
                continue
            var = care_sorted[depth]
            node_var = var_arr[node >> 1] if node >= 2 else -1
            if node_var == var:
                c = node & 1
                idx = node >> 1
                stack.append((hi_arr[idx] ^ c, depth + 1, True))
                stack.append((lo_arr[idx] ^ c, depth + 1, False))
            else:
                # node does not test var (or is TRUE): both branches.
                stack.append((node, depth + 1, True))
                stack.append((node, depth + 1, False))

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def register_root(self, name: str, node: int) -> None:
        """Register/overwrite an external GC root under ``name``."""
        self._roots[name] = node

    def deregister_root(self, name: str) -> None:
        """Drop a previously registered root (missing names are ignored)."""
        self._roots.pop(name, None)

    def register_root_group(self, prefix: str, nodes: Iterable[int]) -> None:
        """Register a family of roots under ``prefix.<i>`` names.

        Any previously registered roots with the same prefix are dropped
        first, so re-registering a shrinking family does not leak stale
        roots.
        """
        stale = [k for k in self._roots if k.startswith(prefix + ".")]
        for k in stale:
            del self._roots[k]
        for i, node in enumerate(nodes):
            self._roots[f"{prefix}.{i}"] = node

    def _mark(self, extra_roots: Iterable[int]) -> "np.ndarray":
        """Vectorized reachability: boolean mask over node indices.

        Frontier BFS over the numpy columns — each wave gathers the
        children of the newly marked nodes in one pass (marking masks off
        the complement bit, so both polarities survive together).
        """
        n = self._n
        lo_np = self._lo_np[:n]
        hi_np = self._hi_np[:n]
        marked = np.zeros(n, dtype=bool)
        marked[0] = True
        roots = [h >> 1 for h in self._roots.values()]
        roots.extend(h >> 1 for h in extra_roots)
        if roots:
            frontier = np.unique(np.asarray(roots, dtype=np.int64))
            frontier = frontier[~marked[frontier]]
            while frontier.size:
                marked[frontier] = True
                kids = np.unique(np.concatenate(
                    (lo_np[frontier] >> 1, hi_np[frontier] >> 1)
                ))
                frontier = kids[~marked[kids]]
        return marked

    def _recount_populations(self) -> None:
        """Rebuild the per-variable live node counts from the columns."""
        n = self._n
        var_np = self._var_np[:n]
        live = np.flatnonzero(var_np >= 0)
        counts = np.bincount(var_np[live], minlength=self.var_count)
        self._pop = [int(x) for x in counts]

    def gc(self, extra_roots: Iterable[int] = ()) -> int:
        """Mark-and-sweep collection; returns the number of nodes freed.

        Keeps every node reachable from registered roots plus
        ``extra_roots``.  Node indices of live nodes are stable — the
        sweep only blanks dead slots and recycles them through the free
        list, so handles held in engine locals survive.  Mark, sweep and
        the unique-table rebuild are vectorized numpy passes.  The
        computed cache is cleared only when nodes were actually freed (a
        no-op sweep cannot leave dangling entries).
        """
        n = self._n
        var_np = self._var_np[:n]
        marked = self._mark(extra_roots)
        dead = np.flatnonzero((var_np >= 0) & ~marked)
        freed = int(dead.size)
        if freed:
            var_np[dead] = -1
            self._free.extend(dead.tolist())
            self._ut_rebuild()
            self._recount_populations()
            self.clear_cache()
        self.gc_count += 1
        self._gc_pending = False
        self._nodes_since_gc = 0
        self.tracer.instant(
            "bdd.gc", cat="bdd",
            freed=freed, live=len(self), roots=len(self._roots),
            runs=self.gc_count,
        )
        return freed

    def compact(self, extra_roots: Iterable[int] = ()) -> List[int]:
        """Compacting collection: drop dead nodes AND close the gaps.

        Unlike :meth:`gc` (index-stable), compaction *moves* nodes: live
        nodes are renumbered contiguously from the bottom of the columns
        in one vectorized sweep (old -> new index map, children/roots
        remapped through it, unique table rebuilt).  Every handle not
        reachable from a registered root or ``extra_roots`` is
        invalidated; registered roots are remapped in place and the
        remapped ``extra_roots`` are returned in order.  Strictly a
        safe-point operation — callers must re-read every handle they
        keep from the remapped roots (see docs/kernel.md).
        """
        extra = list(extra_roots)
        n = self._n
        var_np, lo_np, hi_np = self._var_np, self._lo_np, self._hi_np
        marked = self._mark(extra)
        live = np.flatnonzero(marked)  # index 0 is always first
        new_n = int(live.size)
        freed = (self._n - len(self._free)) - new_n
        newidx = np.full(n, -1, dtype=np.int64)
        newidx[live] = np.arange(new_n, dtype=np.int64)
        var2 = var_np[live].copy()
        lo_old = lo_np[live]
        hi_old = hi_np[live]
        lo2 = (newidx[lo_old >> 1] << 1) | (lo_old & 1)
        hi2 = (newidx[hi_old >> 1] << 1) | (hi_old & 1)
        var_np[:new_n] = var2
        lo_np[:new_n] = lo2
        hi_np[:new_n] = hi2
        var_np[new_n:n] = -1
        lo_np[new_n:n] = 0
        hi_np[new_n:n] = 0
        self._n = new_n
        self._free = []
        self._roots = {
            name: int((newidx[h >> 1] << 1) | (h & 1))
            for name, h in self._roots.items()
        }
        self._ut_rebuild()
        self._recount_populations()
        self.clear_cache()
        self.compact_count += 1
        self._gc_pending = False
        self._nodes_since_gc = 0
        self.tracer.instant(
            "bdd.compact", cat="bdd",
            freed=freed, live=len(self), roots=len(self._roots),
            runs=self.compact_count,
        )
        return [int((newidx[h >> 1] << 1) | (h & 1)) for h in extra]

    def maybe_gc(self, extra_roots: Iterable[int] = ()) -> int:
        """Run pending collections/reorders iff auto-managed ones are due.

        Engines call this at *safe points* — moments where every node
        they hold is either a registered root or passed via
        ``extra_roots`` — so intermediates held only in operator locals
        are never swept.  A pending dynamic reorder (see ``auto_reorder``)
        runs here too, under the same contract: in-place sifting keeps
        every root handle valid.  Returns the number of nodes freed by
        GC (0 when no collection ran).
        """
        if not (self._gc_pending or self._reorder_pending):
            return 0
        extra = list(extra_roots)
        freed = 0
        if self._gc_pending:
            freed = self.gc(extra_roots=extra)
        if self._reorder_pending and not self._in_reorder:
            self.reorder_now(extra_roots=extra)
        return freed

    def reorder_now(self, extra_roots: Iterable[int] = ()) -> int:
        """Sift the variable order in place; returns nodes saved.

        Must only be called at a safe point (everything live registered
        as a root or passed via ``extra_roots``).  Root handles remain
        valid — swaps relabel nodes without moving their indices.
        """
        from repro.bdd.ordering import sift_in_place

        if self._in_reorder:
            return 0
        extra = list(extra_roots)
        self._in_reorder = True
        try:
            with self.tracer.span("bdd.reorder", cat="bdd"):
                # Sifting frees dead nodes eagerly via refcounts, so start
                # from a collected heap for an accurate count.
                self.gc(extra_roots=extra)
                before = len(self)
                stats = sift_in_place(self, extra_roots=extra)
                after = len(self)
                # Swaps invalidate structure-keyed cache entries.
                self.clear_cache()
        finally:
            self._in_reorder = False
            self._reorder_pending = False
        self.reorder_count += 1
        self.sift_swaps += stats["swaps"]
        self.sift_fast_swaps += stats["fast_swaps"]
        self.sift_lb_skips += stats["lb_skips"]
        if self.auto_reorder is not None:
            self._reorder_watermark = max(self.auto_reorder, 2 * after)
        self.tracer.instant(
            "bdd.reorder_done", cat="bdd",
            before=before, after=after,
            swaps=stats["swaps"], fast_swaps=stats["fast_swaps"],
            runs=self.reorder_count,
        )
        return before - after

    # ------------------------------------------------------------------
    # In-place level-swap primitives (used by repro.bdd.ordering.sift_in_place)
    # ------------------------------------------------------------------

    def _build_refcounts(self, extra_roots: Iterable[int] = ()) -> List[int]:
        """Per-index reference counts from live nodes and roots.

        Valid only at a safe point right after :meth:`gc`: every live
        node is then reachable from the counted references, so sifting
        can free nodes eagerly the moment their count drops to zero.
        Built with one vectorized bincount over the child columns.
        """
        n = self._n
        var_np = self._var_np[:n]
        live = np.flatnonzero(var_np >= 0)
        children = np.concatenate(
            (self._lo_np[live] >> 1, self._hi_np[live] >> 1)
        ) if live.size else np.empty(0, dtype=np.int64)
        refs = np.bincount(children, minlength=n).tolist()
        for h in self._roots.values():
            refs[h >> 1] += 1
        for h in extra_roots:
            refs[h >> 1] += 1
        return refs

    def _deref(self, handle: int, refs: List[int]) -> None:
        """Drop one reference; recursively free nodes reaching zero."""
        stack = [handle >> 1]
        var_arr = self._var
        while stack:
            idx = stack.pop()
            if idx == 0:
                continue
            refs[idx] -= 1
            if refs[idx] == 0 and var_arr[idx] >= 0:
                self._ut_delete(idx)
                self._pop[var_arr[idx]] -= 1
                stack.append(self._lo[idx] >> 1)
                stack.append(self._hi[idx] >> 1)
                var_arr[idx] = -1
                self._free.append(idx)

    def _mk_ref(self, var: int, lo: int, hi: int, refs: List[int]) -> int:
        """Refcount-aware :meth:`_mk` used during in-place swaps.

        Newly created nodes charge one reference to each child; found
        nodes charge nothing (the caller accounts for its own reference).
        Never arms auto-GC/auto-reorder — we are inside the reorder.
        """
        if lo == hi:
            return lo
        neg = hi & 1
        if neg:
            lo ^= 1
            hi ^= 1
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        ut = self._ut
        mask = self._ut_mask
        h = (var * _H1 + lo * _H2 + hi * _H3) & _M64
        h ^= h >> 16
        slot = h & mask
        tomb = -1
        while True:
            e = ut[slot]
            if e == 0:
                break
            if e < 0:
                if tomb < 0:
                    tomb = slot
            elif var_arr[e] == var and lo_arr[e] == lo and hi_arr[e] == hi:
                return (e << 1) | neg
            slot = (slot + 1) & mask
        if self._free:
            node = self._free.pop()
        else:
            node = self._n
            if node == self._cap:
                self._grow_nodes()
                var_arr = self._var
                lo_arr = self._lo
                hi_arr = self._hi
            self._n = node + 1
        var_arr[node] = var
        lo_arr[node] = lo
        hi_arr[node] = hi
        if tomb >= 0:
            ut[tomb] = node
        else:
            ut[slot] = node
            self._ut_filled += 1
        self._ut_used += 1
        self._pop[var] += 1
        if node == len(refs):
            refs.append(0)
        refs[node] = 0
        refs[lo >> 1] += 1
        refs[hi >> 1] += 1
        live = self._n - len(self._free) + 1
        if live > self.peak_live_nodes:
            self.peak_live_nodes = live
        if self._ut_filled * 4 >= self._ut_size * 3:
            self._ut_rebuild()
        return (node << 1) | neg

    def _swap_levels_only(self, lvl: int) -> None:
        """Bookkeeping-only swap of levels ``lvl`` and ``lvl+1``.

        Correct exactly when the two variables do not interact (no live
        function depends on both), so no node labelled with the upper
        variable reaches one labelled with the lower.
        """
        x = self._var_at_level[lvl]
        y = self._var_at_level[lvl + 1]
        self._var_at_level[lvl], self._var_at_level[lvl + 1] = y, x
        self._level_of_var[x], self._level_of_var[y] = lvl + 1, lvl

    def _swap_adjacent(self, lvl: int, refs: List[int]) -> int:
        """Swap the variables at ``lvl`` and ``lvl+1`` in place.

        The classic sifting primitive: every node labelled ``x`` (upper)
        that reaches a ``y`` node is relabelled ``y`` in place — keeping
        its index, hence every external handle — with freshly built ``x``
        children.  Nodes whose reference count drops to zero are freed
        eagerly.  The canonical form survives because a handle's polarity
        equals its value on the all-ones assignment, which no variable
        order can change.  Returns the number of nodes rewritten.

        The snapshot of ``x``-labelled nodes is a vectorized column scan;
        nodes created during the loop are x-labelled children below the
        swap window and must not be revisited, and nodes freed mid-loop
        are always below ``x`` (only children are dereferenced), so the
        snapshot stays valid.
        """
        x = self._var_at_level[lvl]
        y = self._var_at_level[lvl + 1]
        self._swap_levels_only(lvl)
        snapshot = np.flatnonzero(self._var_np[:self._n] == x).tolist()
        var_arr = self._var
        lo_arr = self._lo
        hi_arr = self._hi
        moved = 0
        for node in snapshot:
            lo = lo_arr[node]
            hi = hi_arr[node]
            lo_idx = lo >> 1
            hi_idx = hi >> 1
            lo_tests_y = var_arr[lo_idx] == y
            hi_tests_y = var_arr[hi_idx] == y
            if not (lo_tests_y or hi_tests_y):
                continue
            if lo_tests_y:
                c = lo & 1
                f00 = lo_arr[lo_idx] ^ c
                f01 = hi_arr[lo_idx] ^ c
            else:
                f00 = f01 = lo
            if hi_tests_y:
                c = hi & 1
                f10 = lo_arr[hi_idx] ^ c
                f11 = hi_arr[hi_idx] ^ c
            else:
                f10 = f11 = hi
            new_lo = self._mk_ref(x, f00, f10, refs)
            new_hi = self._mk_ref(x, f01, f11, refs)
            if self._var is not var_arr:
                var_arr = self._var
                lo_arr = self._lo
                hi_arr = self._hi
            # Relabel in place: same index, same function, y on top now.
            self._ut_delete(node)
            var_arr[node] = y
            lo_arr[node] = new_lo
            hi_arr[node] = new_hi
            self._ut_insert_node(node)
            self._pop[x] -= 1
            self._pop[y] += 1
            refs[new_lo >> 1] += 1
            refs[new_hi >> 1] += 1
            self._deref(lo, refs)
            self._deref(hi, refs)
            moved += 1
        return moved

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-operator computed-cache statistics.

        Returns ``{op: {"lookups": n, "hits": n, "hit_rate": r}}`` for
        every cached operator (see :data:`CACHED_OPS`).
        """
        out: Dict[str, Dict[str, float]] = {}
        for op, (lookups, hits) in self._op_stats.items():
            out[op] = {
                "lookups": lookups,
                "hits": hits,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            }
        return out

    def cache_hit_rate(self) -> float:
        """Overall computed-cache hit rate across all operators."""
        lookups = sum(s[0] for s in self._op_stats.values())
        hits = sum(s[1] for s in self._op_stats.values())
        return (hits / lookups) if lookups else 0.0

    # ------------------------------------------------------------------
    # Export / debug
    # ------------------------------------------------------------------

    def to_expr(self, f: int) -> str:
        """Render ``f`` as a (possibly large) nested ite expression string."""
        if f == FALSE:
            return "FALSE"
        if f == TRUE:
            return "TRUE"
        idx = f >> 1
        c = f & 1
        name = self.var_name(self._var[idx])
        return (
            f"ite({name}, {self.to_expr(self._hi[idx] ^ c)}, "
            f"{self.to_expr(self._lo[idx] ^ c)})"
        )

    def stats(self) -> Dict[str, int]:
        """Manager statistics (live nodes, cache entries, variables, GCs)."""
        return {
            "live_nodes": len(self),
            "allocated_nodes": self._n + 1,
            "node_capacity": self._cap,
            "cache_entries": self._ck_used,
            "cache_capacity": self._ck_cap,
            "cache_evictions": self.cache_evictions,
            "unique_slots": self._ut_size,
            "unique_used": self._ut_used,
            "peak_live_nodes": self.peak_live_nodes,
            "variables": self.var_count,
            "gc_runs": self.gc_count,
            "compact_runs": self.compact_count,
            "not_calls": self.not_calls,
            "std_rewrites": self.std_rewrites,
            "complement_edges": self.complement_edge_count(),
            "reorder_runs": self.reorder_count,
            "reorder_swaps": self.sift_swaps,
            "reorder_fast_swaps": self.sift_fast_swaps,
            "batch_calls": self.batch_calls,
            "batch_requests": self.batch_requests,
            "batch_scalar_requests": self.batch_scalar_requests,
            "batch_frontiers": self.batch_frontiers,
            "batch_frontier_nodes": self.batch_frontier_nodes,
            "batch_max_width": self.batch_max_width,
        }



