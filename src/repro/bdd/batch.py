"""Frontier-batched breadth-first apply engine for the BDD kernel.

The scalar operators in :mod:`repro.bdd.manager` pay a Python-level
call, hash and probe per node.  This module amortizes that overhead
across whole *frontiers*: a batch of requests is expanded level by
level (top-variable binning over the numpy ``var`` column), the
computed cache is probed for an entire frontier with one vectorized
gather, in-frontier duplicates are collapsed with a lexsort-based
``unique`` over packed ``(f, g, h)`` keys, and find-or-create against
the open-addressing unique table runs as a batched linear-probe loop
(vectorized hash plus masked probe rounds).  Results are resolved
bottom-up with the same vectorized reduction rules the scalar path
applies per node (equal-cofactor collapse, complement-edge
normalization, Brace-Rudell-Bryant standardization), so the two paths
build the *same* unique table and return identical handles.

Contract highlights (see docs/kernel.md for the full writeup):

* No GC, reorder or compaction can run mid-frontier — the engine never
  calls ``maybe_gc``; it only ever *flags* pending work exactly like
  scalar ``_mk`` does, and the flags fire at the caller's next safe
  point.
* Unique-table growth is hoisted: before each batched find-or-create
  the table is rebuilt large enough for the worst case, so the probe
  rounds themselves never rehash and always terminate.
* Batched inserts only ever fill *empty* slots (tombstones are skipped,
  not reused) which preserves every existing probe chain; the load
  accounting is identical, so health invariants hold mid-batch.
* The computed cache is written during the bottom-up resolution phase
  only, with the same standardized signatures the scalar operators use
  — batched and scalar calls share cache lines both ways.

The manager-facing entry points at the bottom (:func:`ite_many`,
:func:`and_exists_many`, :func:`rename_many`, :func:`vcompose_many`)
are called from :class:`repro.bdd.manager.BDD` when ``batch_apply`` is
on; they convert request lists to int64 arrays, update the batch
telemetry counters and emit ``bdd.batch_apply`` tracer instants.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bdd.manager import (
    BddError,
    FALSE,
    TRUE,
    _H1,
    _H2,
    _H3,
    _LEAF_LEVEL,
    _MAX_CACHE_SIZE,
    _OP_ANDEX,
    _OP_ITE,
    _OP_RENAME,
    _OP_VCOMP,
)

_UH1 = np.uint64(_H1)
_UH2 = np.uint64(_H2)
_UH3 = np.uint64(_H3)
_U16 = np.uint64(16)

#: Frontiers narrower than this resolve through the scalar recursion
#: instead of the vectorized wave: each vectorized level costs a fixed
#: few dozen small-array numpy dispatches, which only amortizes once a
#: level carries a few dozen unique triples.  Both strategies build the
#: same canonical nodes and share the same computed cache, so the
#: choice is invisible to callers (handles, counts and verdicts are
#: identical either way).
SCALAR_FRONTIER_CUTOFF = 32


# ----------------------------------------------------------------------
# Shared vectorized primitives
# ----------------------------------------------------------------------

def _levels(bdd) -> np.ndarray:
    """Level-of-var lookup padded so ``lvl[var]`` works for the terminal.

    The terminal's var column holds -1; indexing the padded array at -1
    lands on the appended ``_LEAF_LEVEL`` sentinel.
    """
    return np.append(
        np.asarray(bdd._level_of_var, dtype=np.int64), _LEAF_LEVEL
    )


def _hash3(a: np.ndarray, b: np.ndarray, c: np.ndarray, mask: int) -> np.ndarray:
    """Vectorized triple hash, bit-identical to the scalar probe hash."""
    h = (
        a.astype(np.uint64) * _UH1
        + b.astype(np.uint64) * _UH2
        + c.astype(np.uint64) * _UH3
    )
    h ^= h >> _U16
    return (h & np.uint64(mask)).astype(np.int64)


def _unique_triples(
    f: np.ndarray, g: np.ndarray, h: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate rows of ``(f, g, h)``; returns uniques + inverse map."""
    order = np.lexsort((h, g, f))
    sf, sg, sh = f[order], g[order], h[order]
    first = np.empty(order.size, dtype=bool)
    first[0] = True
    if order.size > 1:
        first[1:] = (
            (sf[1:] != sf[:-1]) | (sg[1:] != sg[:-1]) | (sh[1:] != sh[:-1])
        )
    group = np.cumsum(first) - 1
    inv = np.empty(order.size, dtype=np.int64)
    inv[order] = group
    sel = order[first]
    return f[sel], g[sel], h[sel], inv


def _group_by_level(lvls: np.ndarray):
    """Yield ``(level, row_indices)`` groups of a level array."""
    order = np.argsort(lvls, kind="stable")
    sl = lvls[order]
    bounds = np.flatnonzero(sl[1:] != sl[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.int64), bounds))
    ends = np.concatenate((bounds, np.asarray([sl.size], dtype=np.int64)))
    for s, e in zip(starts, ends):
        yield int(sl[s]), order[s:e]


def _alloc_nodes(bdd, k: int) -> np.ndarray:
    """Claim ``k`` node indices: free list first (end-first, like the
    scalar allocator), then fresh indices past the high-water mark."""
    free = bdd._free
    nf = min(len(free), k)
    taken: List[int] = []
    if nf:
        taken = free[len(free) - nf:]
        taken.reverse()
        del free[len(free) - nf:]
    rest = k - nf
    if rest:
        while bdd._n + rest > bdd._cap:
            bdd._grow_nodes()
        start = bdd._n
        bdd._n = start + rest
        fresh = np.arange(start, start + rest, dtype=np.int64)
        if nf:
            return np.concatenate(
                (np.asarray(taken, dtype=np.int64), fresh)
            )
        return fresh
    return np.asarray(taken, dtype=np.int64)


def _mk_many(bdd, var: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Vectorized find-or-create over ``(var, lo, hi)`` rows.

    Applies the same canonical reductions as scalar ``_mk`` (equal
    cofactors collapse, complemented then-edges push the complement to
    the output), dedupes the batch, pre-grows the unique table so the
    probe rounds cannot trigger a rehash, then resolves every row with
    masked linear-probe rounds: matches return existing indices, the
    first prober of each empty slot claims it with a freshly allocated
    node, everyone else advances one slot and retries.
    """
    n = var.size
    out = np.empty(n, dtype=np.int64)
    triv = lo == hi
    if triv.any():
        out[triv] = lo[triv]
    act = np.flatnonzero(~triv)
    if act.size == 0:
        return out
    av = var[act]
    alo = lo[act].copy()
    ahi = hi[act].copy()
    neg = ahi & 1
    flip = neg == 1
    if flip.any():
        alo[flip] ^= 1
        ahi[flip] ^= 1
    uv, ulo, uhi, inv = _unique_triples(av, alo, ahi)
    k = uv.size
    # Pre-grow: guarantee at least k empty slots remain below the 3/4
    # load watermark so every probe round terminates without a rehash.
    if (bdd._ut_filled + k) * 4 >= bdd._ut_size * 3:
        size = bdd._ut_size
        while (bdd._ut_used + k) * 4 >= size * 3:
            size *= 2
        bdd._ut_rebuild(min_size=size)
    ut = bdd._ut_np
    mask = np.int64(bdd._ut_mask)
    one = np.int64(1)
    var_np = bdd._var_np
    lo_np = bdd._lo_np
    hi_np = bdd._hi_np
    res = np.empty(k, dtype=np.int64)
    slots = _hash3(uv, ulo, uhi, bdd._ut_mask)
    pend = np.arange(k, dtype=np.int64)
    created_rows: List[np.ndarray] = []
    while pend.size:
        e = ut[slots]
        pv = uv[pend]
        pl = ulo[pend]
        ph = uhi[pend]
        match = (e > 0) & (var_np[e] == pv) & (lo_np[e] == pl) & (hi_np[e] == ph)
        if match.any():
            res[pend[match]] = e[match] << 1
        claimed = np.zeros(pend.size, dtype=bool)
        empty = e == 0
        if empty.any():
            cand = np.flatnonzero(empty)
            cs = slots[cand]
            order = np.argsort(cs, kind="stable")
            cand = cand[order]
            cs = cs[order]
            first = np.empty(cand.size, dtype=bool)
            first[0] = True
            if cand.size > 1:
                first[1:] = cs[1:] != cs[:-1]
            win = cand[first]
            nodes = _alloc_nodes(bdd, int(win.size))
            if bdd._var_np is not var_np:
                var_np = bdd._var_np
                lo_np = bdd._lo_np
                hi_np = bdd._hi_np
            rows = pend[win]
            var_np[nodes] = uv[rows]
            lo_np[nodes] = ulo[rows]
            hi_np[nodes] = uhi[rows]
            ut[slots[win]] = nodes
            res[rows] = nodes << 1
            claimed[win] = True
            created_rows.append(rows)
        keep = ~match & ~claimed
        pend = pend[keep]
        slots = (slots[keep] + one) & mask
    if created_rows:
        rows = (
            created_rows[0] if len(created_rows) == 1
            else np.concatenate(created_rows)
        )
        created = int(rows.size)
        bdd._ut_filled += created
        bdd._ut_used += created
        counts = np.bincount(uv[rows], minlength=len(bdd._pop))
        pop = bdd._pop
        for vv in np.flatnonzero(counts):
            pop[vv] += int(counts[vv])
        bdd._nodes_since_gc += created
        live = bdd._n - len(bdd._free) + 1
        if live > bdd.peak_live_nodes:
            bdd.peak_live_nodes = live
        if (
            bdd.auto_gc is not None
            and not bdd._gc_pending
            and bdd._nodes_since_gc >= bdd.auto_gc
        ):
            bdd._gc_pending = True
        if (
            bdd.auto_reorder is not None
            and not bdd._reorder_pending
            and not bdd._in_reorder
            and live > bdd._reorder_watermark
        ):
            bdd._reorder_pending = True
        if bdd._ut_filled * 4 >= bdd._ut_size * 3:
            bdd._ut_rebuild()
    out[act] = res[inv] ^ neg
    return out


def _ck_put_many(
    bdd, a: np.ndarray, b: np.ndarray, c: np.ndarray, r: np.ndarray
) -> None:
    """Vectorized computed-cache insert (direct-mapped scatter).

    Duplicate slots within one batch keep the last writer — it is a
    cache, losing entries is always safe.
    """
    k = a.size
    if k == 0:
        return
    if bdd._ck_growable:
        while (
            bdd._ck_cap < _MAX_CACHE_SIZE
            and (bdd._ck_used + k) * 4 >= bdd._ck_cap * 3
        ):
            bdd._ck_grow()
    slot = _hash3(a, b, c, bdd._ck_mask)
    ck_a = bdd._ck_a_np
    prev = ck_a[slot]
    same = (
        (prev == a) & (bdd._ck_b_np[slot] == b) & (bdd._ck_c_np[slot] == c)
    )
    bdd.cache_evictions += int(np.count_nonzero((prev != -1) & ~same))
    uslot = np.unique(slot)
    fresh = int(np.count_nonzero(ck_a[uslot] == -1))
    ck_a[slot] = a
    bdd._ck_b_np[slot] = b
    bdd._ck_c_np[slot] = c
    bdd._ck_r_np[slot] = r
    bdd._ck_used += fresh


# ----------------------------------------------------------------------
# ITE wave engine
# ----------------------------------------------------------------------

def _intake_ite(bdd, f, g, h, stats, lvl_pad):
    """Vectorized mirror of the scalar ``_ite`` pre-expansion phase.

    Applies the equal/complement collapses, the terminal cases, the full
    BRB standardization and one computed-cache probe, in exactly the
    scalar rule order.  Returns ``(vals, pend, pf, pg, ph, pneg, plvl)``
    where ``vals`` holds resolved handles (valid everywhere except at
    the ``pend`` row indices) and the ``p*`` arrays are the
    standardized still-pending triples with their output complements
    and top levels.
    """
    n = f.size
    vals = np.empty(n, dtype=np.int64)
    empty_i = np.empty(0, dtype=np.int64)
    if n == 0:
        return vals, empty_i, empty_i, empty_i, empty_i, empty_i, empty_i
    f = f.copy()
    g = g.copy()
    h = h.copy()
    var_np = bdd._var_np
    # Collapse branches equal (or complementary) to the test.
    m = g == f
    g[m] = TRUE
    m = ~m & (g == (f ^ 1))
    g[m] = FALSE
    m = h == f
    h[m] = FALSE
    m = ~m & (h == (f ^ 1))
    h[m] = TRUE
    # Terminal cases, in scalar rule order.
    done = f == TRUE
    vals[done] = g[done]
    m = ~done & (f == FALSE)
    vals[m] = h[m]
    done |= m
    m = ~done & (g == h)
    vals[m] = g[m]
    done |= m
    m = ~done & (g == TRUE) & (h == FALSE)
    vals[m] = f[m]
    done |= m
    m = ~done & (g == FALSE) & (h == TRUE)
    vals[m] = f[m] ^ 1
    done |= m
    pi = np.flatnonzero(~done)
    if pi.size == 0:
        return vals, empty_i, empty_i, empty_i, empty_i, empty_i, empty_i
    pf = f[pi]
    pg = g[pi]
    ph = h[pi]
    of = pf.copy()
    og = pg.copy()
    oh = ph.copy()
    # Canonical argument order for the commutative forms; in every
    # branch both compared operands are internal (terminal combinations
    # all resolved above), matching the scalar if/elif chain.
    fkey = (lvl_pad[var_np[pf >> 1]] << 32) | (pf >> 1)
    m1 = pg == TRUE
    m2 = ~m1 & (ph == FALSE)
    m3 = ~m1 & ~m2 & (ph == TRUE)
    m4 = ~m1 & ~m2 & ~m3 & (pg == FALSE)
    m5 = ~m1 & ~m2 & ~m3 & ~m4 & (pg == (ph ^ 1))
    other = np.where(m1 | m4, ph, pg)
    okey = (lvl_pad[var_np[other >> 1]] << 32) | (other >> 1)
    swap = (m1 | m2 | m3 | m4 | m5) & (okey < fkey)
    if swap.any():
        s = m1 & swap  # f | h == h | f
        pf[s] = oh[s]
        ph[s] = of[s]
        s = m2 & swap  # f & g == g & f
        pf[s] = og[s]
        pg[s] = of[s]
        s = m3 & swap  # f -> g == ~g -> ~f
        pf[s] = og[s] ^ 1
        pg[s] = of[s] ^ 1
        s = m4 & swap  # ~f & h == ~h & f
        pf[s] = oh[s] ^ 1
        ph[s] = of[s] ^ 1
        s = m5 & swap  # f <-> g == g <-> f
        pf[s] = og[s]
        pg[s] = of[s]
        ph[s] = of[s] ^ 1
    # First argument regular: ite(~f, g, h) == ite(f, h, g).
    w = (pf & 1) == 1
    if w.any():
        pf[w] ^= 1
        tmp = pg[w].copy()
        pg[w] = ph[w]
        ph[w] = tmp
    # Then-branch regular: push the complement to the output.
    tn = (pg & 1) == 1
    pneg = tn.astype(np.int64)
    if tn.any():
        pg[tn] ^= 1
        ph[tn] ^= 1
    bdd.std_rewrites += int(np.count_nonzero(
        (pf != of) | (pg != og) | (ph != oh)
    ))
    # One whole-frontier computed-cache probe (vectorized gather).
    a = (pf << 6) | _OP_ITE
    stats[0] += int(pf.size)
    slot = _hash3(a, pg, ph, bdd._ck_mask)
    hit = (
        (bdd._ck_a_np[slot] == a)
        & (bdd._ck_b_np[slot] == pg)
        & (bdd._ck_c_np[slot] == ph)
    )
    nhits = int(np.count_nonzero(hit))
    if nhits:
        stats[1] += nhits
        vals[pi[hit]] = bdd._ck_r_np[slot[hit]] ^ pneg[hit]
        miss = ~hit
        pi = pi[miss]
        pf = pf[miss]
        pg = pg[miss]
        ph = ph[miss]
        pneg = pneg[miss]
    plvl = np.minimum(
        np.minimum(lvl_pad[var_np[pf >> 1]], lvl_pad[var_np[pg >> 1]]),
        lvl_pad[var_np[ph >> 1]],
    )
    return vals, pi, pf, pg, ph, pneg, plvl


def _run_ite(bdd, f, g, h, stats) -> np.ndarray:
    """Breadth-first batched ``ite`` over aligned request arrays.

    Expansion walks levels top-down, one deduplicated frontier per
    level; resolution walks back bottom-up, building each level's nodes
    with one :func:`_mk_many` call and caching each unique triple.
    Returns an int64 array of result handles aligned with the inputs.
    """
    n = f.size
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    if n < SCALAR_FRONTIER_CUTOFF:
        # Small request batch: skip the numpy machinery entirely.
        ite = bdd._ite
        for i in range(n):
            out[i] = ite(int(f[i]), int(g[i]), int(h[i]), stats)
        return out
    lvl_pad = _levels(bdd)
    nlev = len(bdd._var_at_level)
    var_at = bdd._var_at_level
    # buckets[L]: inflow chunks (pf, pg, ph, pneg, sink) awaiting level L.
    # recs[L]:    [uf, ug, uh, lo_vals, hi_vals] for the processed frontier.
    # links[L]:   (sink, pneg, inv_slice) scatter specs per inflow chunk.
    buckets: List[List[tuple]] = [[] for _ in range(nlev)]
    recs: List = [None] * nlev
    links: List[List[tuple]] = [[] for _ in range(nlev)]

    def submit(fa, ga, ha, sink_rows, sink_kind):
        # sink_kind: ("out",) writes to out[rows]; (side, L) writes into
        # recs[L]'s lo (side 0) or hi (side 1) column at rows.
        vals, pend, pf, pg, ph, pneg, plvl = _intake_ite(
            bdd, fa, ga, ha, stats, lvl_pad
        )
        if sink_kind[0] == "out":
            resolved = np.ones(fa.size, dtype=bool)
            resolved[pend] = False
            rr = np.flatnonzero(resolved)
            out[sink_rows[rr]] = vals[rr]
        else:
            side, parent = sink_kind
            col = recs[parent][3 + side]
            resolved = np.ones(fa.size, dtype=bool)
            resolved[pend] = False
            rr = np.flatnonzero(resolved)
            col[sink_rows[rr]] = vals[rr]
        if pend.size:
            rows = sink_rows[pend]
            for lv, sel in _group_by_level(plvl):
                buckets[lv].append(
                    (pf[sel], pg[sel], ph[sel], pneg[sel],
                     sink_kind + (rows[sel],))
                )

    submit(f, g, h, np.arange(n, dtype=np.int64), ("out",))
    processed: List[int] = []
    for L in range(nlev):
        chunks = buckets[L]
        if not chunks:
            continue
        buckets[L] = []
        cf = np.concatenate([c[0] for c in chunks])
        cg = np.concatenate([c[1] for c in chunks])
        ch = np.concatenate([c[2] for c in chunks])
        uf, ug, uh, inv = _unique_triples(cf, cg, ch)
        k = int(uf.size)
        if k < SCALAR_FRONTIER_CUTOFF:
            # Narrow level: the scalar recursion is cheaper than the
            # vectorized wave machinery.  It computes the very same
            # canonical results through the shared cache, so we scatter
            # them straight into the waiting sinks and skip the level.
            ite = bdd._ite
            res = np.fromiter(
                (ite(int(uf[i]), int(ug[i]), int(uh[i]), stats)
                 for i in range(k)),
                dtype=np.int64, count=k,
            )
            bdd.batch_frontiers += 1
            bdd.batch_frontier_nodes += k
            if k > bdd.batch_max_width:
                bdd.batch_max_width = k
            pos = 0
            for c in chunks:
                sz = c[0].size
                sink = c[4]
                vals = res[inv[pos:pos + sz]] ^ c[3]
                if sink[0] == "out":
                    out[sink[1]] = vals
                else:
                    recs[sink[1]][3 + sink[0]][sink[2]] = vals
                pos += sz
            continue
        lo_vals = np.empty(k, dtype=np.int64)
        hi_vals = np.empty(k, dtype=np.int64)
        recs[L] = [uf, ug, uh, lo_vals, hi_vals]
        pos = 0
        for c in chunks:
            sz = c[0].size
            links[L].append((c[4], c[3], inv[pos:pos + sz]))
            pos += sz
        processed.append(L)
        bdd.batch_frontiers += 1
        bdd.batch_frontier_nodes += k
        if k > bdd.batch_max_width:
            bdd.batch_max_width = k
        v = var_at[L]
        var_np = bdd._var_np
        lo_np = bdd._lo_np
        hi_np = bdd._hi_np
        fi = uf >> 1
        gi = ug >> 1
        hd = uh >> 1
        f_is = var_np[fi] == v
        g_is = var_np[gi] == v
        h_is = var_np[hd] == v
        cf_ = uf & 1
        cg_ = ug & 1
        ch_ = uh & 1
        f0 = np.where(f_is, lo_np[fi] ^ cf_, uf)
        f1 = np.where(f_is, hi_np[fi] ^ cf_, uf)
        g0 = np.where(g_is, lo_np[gi] ^ cg_, ug)
        g1 = np.where(g_is, hi_np[gi] ^ cg_, ug)
        h0 = np.where(h_is, lo_np[hd] ^ ch_, uh)
        h1 = np.where(h_is, hi_np[hd] ^ ch_, uh)
        rows = np.arange(k, dtype=np.int64)
        submit(f0, g0, h0, rows, (0, L))
        submit(f1, g1, h1, rows, (1, L))
    for L in reversed(processed):
        uf, ug, uh, lo_vals, hi_vals = recs[L]
        k = uf.size
        v = var_at[L]
        res = _mk_many(
            bdd, np.full(k, v, dtype=np.int64), lo_vals, hi_vals
        )
        _ck_put_many(bdd, (uf << 6) | _OP_ITE, ug, uh, res)
        for sink, pneg, inv_sl in links[L]:
            vals = res[inv_sl] ^ pneg
            if sink[0] == "out":
                out[sink[1]] = vals
            else:
                side, parent = sink[0], sink[1]
                recs[parent][3 + side][sink[2]] = vals
        recs[L] = None
        links[L] = []
    return out


# ----------------------------------------------------------------------
# and-exists (relational product) wave engine
# ----------------------------------------------------------------------

def _intake_andex(bdd, f, g, cube, stats, lvl_pad):
    """Vectorized mirror of the scalar ``_and_exists`` pre-expansion.

    Returns ``(vals, and_rows, af, ag, pend, pf, pg, pc, plvl)``:
    ``vals`` holds terminal resolutions, ``and_rows`` the request rows
    that degenerate to a plain conjunction (their operands in
    ``af``/``ag``), and the ``p*`` arrays the still-pending
    standardized ``(f, g, cube)`` triples at levels ``plvl``.
    """
    n = f.size
    vals = np.empty(n, dtype=np.int64)
    empty_i = np.empty(0, dtype=np.int64)
    if n == 0:
        return (vals, empty_i, empty_i, empty_i,
                empty_i, empty_i, empty_i, empty_i, empty_i)
    var_np = bdd._var_np
    hi_np = bdd._hi_np
    false_m = (f == FALSE) | (g == FALSE) | (f == (g ^ 1))
    vals[false_m] = FALSE
    and_m = ~false_m & (cube == TRUE)
    true_m = ~false_m & ~and_m & (f == TRUE) & (g == TRUE)
    vals[true_m] = TRUE
    pi = np.flatnonzero(~(false_m | and_m | true_m))
    and_rows = np.flatnonzero(and_m)
    af = f[and_rows]
    ag = g[and_rows]
    if pi.size == 0:
        return (vals, and_rows, af, ag,
                empty_i, empty_i, empty_i, empty_i, empty_i)
    pf = f[pi].copy()
    pg = g[pi].copy()
    pc = cube[pi].copy()
    sw = pf > pg
    if sw.any():
        tmp = pf[sw].copy()
        pf[sw] = pg[sw]
        pg[sw] = tmp
    top = np.minimum(lvl_pad[var_np[pf >> 1]], lvl_pad[var_np[pg >> 1]])
    # Skip cube variables above the operands' top level (rounds of the
    # scalar while loop, vectorized across the frontier).
    while True:
        adv = (pc >= 2) & (lvl_pad[var_np[pc >> 1]] < top)
        if not adv.any():
            break
        ci = pc[adv] >> 1
        pc[adv] = hi_np[ci] ^ (pc[adv] & 1)
    dropped = pc == TRUE
    if dropped.any():
        and_rows = np.concatenate((and_rows, pi[dropped]))
        af = np.concatenate((af, pf[dropped]))
        ag = np.concatenate((ag, pg[dropped]))
        keep = ~dropped
        pi = pi[keep]
        pf = pf[keep]
        pg = pg[keep]
        pc = pc[keep]
        top = top[keep]
    a = (pf << 6) | _OP_ANDEX
    stats[0] += int(pf.size)
    slot = _hash3(a, pg, pc, bdd._ck_mask)
    hit = (
        (bdd._ck_a_np[slot] == a)
        & (bdd._ck_b_np[slot] == pg)
        & (bdd._ck_c_np[slot] == pc)
    )
    nhits = int(np.count_nonzero(hit))
    if nhits:
        stats[1] += nhits
        vals[pi[hit]] = bdd._ck_r_np[slot[hit]]
        miss = ~hit
        pi = pi[miss]
        pf = pf[miss]
        pg = pg[miss]
        pc = pc[miss]
        top = top[miss]
    return vals, and_rows, af, ag, pi, pf, pg, pc, top


def _run_andex(bdd, f, g, cube) -> np.ndarray:
    """Breadth-first batched ``and_exists`` over aligned request arrays.

    Requests that degenerate to plain conjunctions (cube exhausted) are
    collected during expansion and resolved with one nested
    :func:`_run_ite` batch; quantified levels combine their cofactors
    with a nested batched OR during resolution.  The scalar path's
    lo==TRUE short circuit is intentionally absent — breadth-first
    expansion computes both cofactors before either resolves (the
    results are still identical, see docs/kernel.md).
    """
    stats = bdd._op_stats["andex"]
    n = f.size
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    if n < SCALAR_FRONTIER_CUTOFF:
        andex = bdd._and_exists
        for i in range(n):
            out[i] = andex(int(f[i]), int(g[i]), int(cube[i]))
        return out
    lvl_pad = _levels(bdd)
    nlev = len(bdd._var_at_level)
    var_at = bdd._var_at_level
    buckets: List[List[tuple]] = [[] for _ in range(nlev)]
    recs: List = [None] * nlev
    links: List[List[tuple]] = [[] for _ in range(nlev)]
    # Deferred plain-AND leftovers: (f_chunk, g_chunk, sink) specs.
    and_chunks: List[tuple] = []

    def submit(fa, ga, ca, sink_rows, sink_kind):
        vals, and_rows, af, ag, pend, pf, pg, pc, plvl = _intake_andex(
            bdd, fa, ga, ca, stats, lvl_pad
        )
        resolved = np.ones(fa.size, dtype=bool)
        resolved[pend] = False
        resolved[and_rows] = False
        rr = np.flatnonzero(resolved)
        if sink_kind[0] == "out":
            out[sink_rows[rr]] = vals[rr]
        else:
            recs[sink_kind[1]][3 + sink_kind[0]][sink_rows[rr]] = vals[rr]
        if and_rows.size:
            and_chunks.append((af, ag, sink_kind + (sink_rows[and_rows],)))
        if pend.size:
            rows = sink_rows[pend]
            for lv, sel in _group_by_level(plvl):
                buckets[lv].append(
                    (pf[sel], pg[sel], pc[sel], sink_kind + (rows[sel],))
                )

    submit(f, g, cube, np.arange(n, dtype=np.int64), ("out",))
    processed: List[int] = []
    for L in range(nlev):
        chunks = buckets[L]
        if not chunks:
            continue
        buckets[L] = []
        cf = np.concatenate([c[0] for c in chunks])
        cg = np.concatenate([c[1] for c in chunks])
        cc = np.concatenate([c[2] for c in chunks])
        uf, ug, uc, inv = _unique_triples(cf, cg, cc)
        k = int(uf.size)
        if k < SCALAR_FRONTIER_CUTOFF:
            # Narrow level: resolve scalar (same canonical results via
            # the shared cache) and scatter straight into the sinks.
            andex = bdd._and_exists
            res = np.fromiter(
                (andex(int(uf[i]), int(ug[i]), int(uc[i]))
                 for i in range(k)),
                dtype=np.int64, count=k,
            )
            bdd.batch_frontiers += 1
            bdd.batch_frontier_nodes += k
            if k > bdd.batch_max_width:
                bdd.batch_max_width = k
            pos = 0
            for c in chunks:
                sz = c[0].size
                sink = c[3]
                vals = res[inv[pos:pos + sz]]
                if sink[0] == "out":
                    out[sink[1]] = vals
                else:
                    recs[sink[1]][3 + sink[0]][sink[2]] = vals
                pos += sz
            continue
        lo_vals = np.empty(k, dtype=np.int64)
        hi_vals = np.empty(k, dtype=np.int64)
        v = var_at[L]
        var_np = bdd._var_np
        lo_np = bdd._lo_np
        hi_np = bdd._hi_np
        quant = var_np[uc >> 1] == v
        recs[L] = [uf, ug, uc, lo_vals, hi_vals, quant]
        pos = 0
        for c in chunks:
            sz = c[0].size
            links[L].append((c[3], inv[pos:pos + sz]))
            pos += sz
        processed.append(L)
        bdd.batch_frontiers += 1
        bdd.batch_frontier_nodes += k
        if k > bdd.batch_max_width:
            bdd.batch_max_width = k
        sub = np.where(quant, hi_np[uc >> 1] ^ (uc & 1), uc)
        fi = uf >> 1
        gi = ug >> 1
        f_is = var_np[fi] == v
        g_is = var_np[gi] == v
        cf_ = uf & 1
        cg_ = ug & 1
        f0 = np.where(f_is, lo_np[fi] ^ cf_, uf)
        f1 = np.where(f_is, hi_np[fi] ^ cf_, uf)
        g0 = np.where(g_is, lo_np[gi] ^ cg_, ug)
        g1 = np.where(g_is, hi_np[gi] ^ cg_, ug)
        rows = np.arange(k, dtype=np.int64)
        submit(f0, g0, sub, rows, (0, L))
        submit(f1, g1, sub, rows, (1, L))
    if and_chunks:
        af = np.concatenate([c[0] for c in and_chunks])
        ag = np.concatenate([c[1] for c in and_chunks])
        ares = _run_ite(
            bdd, af, ag, np.full(af.size, FALSE, dtype=np.int64),
            bdd._op_stats["and"],
        )
        pos = 0
        for c in and_chunks:
            sz = c[0].size
            sink = c[2]
            vals = ares[pos:pos + sz]
            if sink[0] == "out":
                out[sink[1]] = vals
            else:
                recs[sink[1]][3 + sink[0]][sink[2]] = vals
            pos += sz
    for L in reversed(processed):
        uf, ug, uc, lo_vals, hi_vals, quant = recs[L]
        k = uf.size
        v = var_at[L]
        res = np.empty(k, dtype=np.int64)
        nq = np.flatnonzero(~quant)
        if nq.size:
            res[nq] = _mk_many(
                bdd, np.full(nq.size, v, dtype=np.int64),
                lo_vals[nq], hi_vals[nq],
            )
        qq = np.flatnonzero(quant)
        if qq.size:
            # exists v . node == lo | hi, as one nested batched OR.
            res[qq] = _run_ite(
                bdd, lo_vals[qq],
                np.full(qq.size, TRUE, dtype=np.int64), hi_vals[qq],
                bdd._op_stats["or"],
            )
        _ck_put_many(bdd, (uf << 6) | _OP_ANDEX, ug, uc, res)
        for sink, inv_sl in links[L]:
            vals = res[inv_sl]
            if sink[0] == "out":
                out[sink[1]] = vals
            else:
                recs[sink[1]][3 + sink[0]][sink[2]] = vals
        recs[L] = None
        links[L] = []
    return out


# ----------------------------------------------------------------------
# Unary traversal engines: rename / vector_compose
# ----------------------------------------------------------------------

def _intake_unary(bdd, f, opcode, key_b, stats, lvl_pad):
    """Shared unary intake: terminals, complement split, cache probe.

    Returns ``(vals, pend, pf, pneg, plvl)`` with ``pf`` regular.
    """
    n = f.size
    vals = np.empty(n, dtype=np.int64)
    empty_i = np.empty(0, dtype=np.int64)
    if n == 0:
        return vals, empty_i, empty_i, empty_i, empty_i
    done = f < 2
    vals[done] = f[done]
    pi = np.flatnonzero(~done)
    if pi.size == 0:
        return vals, empty_i, empty_i, empty_i, empty_i
    pf = f[pi]
    pneg = pf & 1
    pf = pf ^ pneg
    a = (pf << 6) | opcode
    stats[0] += int(pf.size)
    kb = np.full(pf.size, key_b, dtype=np.int64)
    zero = np.zeros(pf.size, dtype=np.int64)
    slot = _hash3(a, kb, zero, bdd._ck_mask)
    hit = (
        (bdd._ck_a_np[slot] == a)
        & (bdd._ck_b_np[slot] == key_b)
        & (bdd._ck_c_np[slot] == 0)
    )
    nhits = int(np.count_nonzero(hit))
    if nhits:
        stats[1] += nhits
        vals[pi[hit]] = bdd._ck_r_np[slot[hit]] ^ pneg[hit]
        miss = ~hit
        pi = pi[miss]
        pf = pf[miss]
        pneg = pneg[miss]
    plvl = lvl_pad[bdd._var_np[pf >> 1]]
    return vals, pi, pf, pneg, plvl


def _run_unary(bdd, fs, opcode, key_b, stats, resolve, scalar) -> np.ndarray:
    """Breadth-first batched unary traversal (rename / vector-compose).

    ``resolve(level, var, lo_vals, hi_vals)`` builds the level's result
    handles from the (already resolved) children of the frontier's
    unique regular nodes.  ``scalar(handle)`` is the equivalent scalar
    recursion, used for frontiers below the width cutoff.
    """
    n = fs.size
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    if n < SCALAR_FRONTIER_CUTOFF:
        for i in range(n):
            out[i] = scalar(int(fs[i]))
        return out
    lvl_pad = _levels(bdd)
    nlev = len(bdd._var_at_level)
    var_at = bdd._var_at_level
    buckets: List[List[tuple]] = [[] for _ in range(nlev)]
    recs: List = [None] * nlev
    links: List[List[tuple]] = [[] for _ in range(nlev)]

    def submit(fa, sink_rows, sink_kind):
        vals, pend, pf, pneg, plvl = _intake_unary(
            bdd, fa, opcode, key_b, stats, lvl_pad
        )
        resolved = np.ones(fa.size, dtype=bool)
        resolved[pend] = False
        rr = np.flatnonzero(resolved)
        if sink_kind[0] == "out":
            out[sink_rows[rr]] = vals[rr]
        else:
            recs[sink_kind[1]][1 + sink_kind[0]][sink_rows[rr]] = vals[rr]
        if pend.size:
            rows = sink_rows[pend]
            for lv, sel in _group_by_level(plvl):
                buckets[lv].append(
                    (pf[sel], pneg[sel], sink_kind + (rows[sel],))
                )

    submit(fs, np.arange(n, dtype=np.int64), ("out",))
    processed: List[int] = []
    for L in range(nlev):
        chunks = buckets[L]
        if not chunks:
            continue
        buckets[L] = []
        cf = np.concatenate([c[0] for c in chunks])
        uf, inv = np.unique(cf, return_inverse=True)
        k = int(uf.size)
        if k < SCALAR_FRONTIER_CUTOFF:
            res = np.fromiter(
                (scalar(int(uf[i])) for i in range(k)),
                dtype=np.int64, count=k,
            )
            bdd.batch_frontiers += 1
            bdd.batch_frontier_nodes += k
            if k > bdd.batch_max_width:
                bdd.batch_max_width = k
            pos = 0
            for c in chunks:
                sz = c[0].size
                sink = c[2]
                vals = res[inv[pos:pos + sz]] ^ c[1]
                if sink[0] == "out":
                    out[sink[1]] = vals
                else:
                    recs[sink[1]][1 + sink[0]][sink[2]] = vals
                pos += sz
            continue
        lo_vals = np.empty(k, dtype=np.int64)
        hi_vals = np.empty(k, dtype=np.int64)
        recs[L] = [uf, lo_vals, hi_vals]
        pos = 0
        for c in chunks:
            sz = c[0].size
            links[L].append((c[2], c[1], inv[pos:pos + sz]))
            pos += sz
        processed.append(L)
        bdd.batch_frontiers += 1
        bdd.batch_frontier_nodes += k
        if k > bdd.batch_max_width:
            bdd.batch_max_width = k
        fi = uf >> 1
        rows = np.arange(k, dtype=np.int64)
        # Children are the raw stored edges (uf is regular).
        submit(bdd._lo_np[fi].copy(), rows, (0, L))
        submit(bdd._hi_np[fi].copy(), rows, (1, L))
    for L in reversed(processed):
        uf, lo_vals, hi_vals = recs[L]
        res = resolve(L, var_at[L], lo_vals, hi_vals)
        _ck_put_many(
            bdd, (uf << 6) | opcode,
            np.full(uf.size, key_b, dtype=np.int64),
            np.zeros(uf.size, dtype=np.int64), res,
        )
        for sink, pneg, inv_sl in links[L]:
            vals = res[inv_sl] ^ pneg
            if sink[0] == "out":
                out[sink[1]] = vals
            else:
                recs[sink[1]][1 + sink[0]][sink[2]] = vals
        recs[L] = None
        links[L] = []
    return out


def _run_rename(bdd, fs, mapping: Dict[int, int], map_id: int) -> np.ndarray:
    """Batched order-preserving variable rename over many roots."""
    lvl_pad = _levels(bdd)

    def resolve(level, v, lo_vals, hi_vals):
        nvar = mapping.get(v, v)
        nlvl = bdd._level_of_var[nvar]
        var_np = bdd._var_np
        bad = (
            ((lo_vals >= 2) & (lvl_pad[var_np[lo_vals >> 1]] <= nlvl))
            | ((hi_vals >= 2) & (lvl_pad[var_np[hi_vals >> 1]] <= nlvl))
        )
        if bad.any():
            raise BddError(
                "rename would reorder variables; use compose instead"
            )
        return _mk_many(
            bdd, np.full(lo_vals.size, nvar, dtype=np.int64),
            lo_vals, hi_vals,
        )

    return _run_unary(
        bdd, fs, _OP_RENAME, map_id, bdd._op_stats["rename"], resolve,
        lambda h: bdd._rename(h, mapping, map_id),
    )


def _run_vcompose(bdd, fs, sub: Dict[int, int], map_id: int) -> np.ndarray:
    """Batched simultaneous functional composition over many roots."""

    def resolve(level, v, lo_vals, hi_vals):
        gfn = sub.get(v)
        if gfn is None:
            gfn = bdd.var(v)
        return _run_ite(
            bdd, np.full(lo_vals.size, gfn, dtype=np.int64),
            hi_vals, lo_vals, bdd._op_stats["ite"],
        )

    return _run_unary(
        bdd, fs, _OP_VCOMP, map_id, bdd._op_stats["vcomp"], resolve,
        lambda h: bdd._vcompose(h, sub, map_id),
    )


# ----------------------------------------------------------------------
# Manager-facing entry points
# ----------------------------------------------------------------------

def _columns(requests: Sequence, width: int) -> List[np.ndarray]:
    arr = np.asarray(requests, dtype=np.int64)
    arr = arr.reshape(len(requests), width)
    return [np.ascontiguousarray(arr[:, i]) for i in range(width)]


def _finish(bdd, kind: str, nreq: int, fr0: int, nd0: int) -> None:
    bdd.batch_calls += 1
    bdd.batch_requests += nreq
    bdd.tracer.instant(
        "bdd.batch_apply", cat="bdd", kind=kind, requests=nreq,
        frontiers=bdd.batch_frontiers - fr0,
        frontier_nodes=bdd.batch_frontier_nodes - nd0,
    )


def ite_many(bdd, triples: Sequence, op: str = "ite") -> List[int]:
    """Batched standardized ``ite`` over ``(f, g, h)`` triples.

    ``op`` names the entry point for cache-stat attribution (the cache
    key stays the shared standardized ITE signature).
    """
    f, g, h = _columns(triples, 3)
    fr0, nd0 = bdd.batch_frontiers, bdd.batch_frontier_nodes
    out = _run_ite(bdd, f, g, h, bdd._op_stats[op])
    _finish(bdd, op, len(triples), fr0, nd0)
    return out.tolist()


def and_exists_many(bdd, requests: Sequence) -> List[int]:
    """Batched fused relational products over ``(f, g, cube)`` triples."""
    f, g, cube = _columns(requests, 3)
    fr0, nd0 = bdd.batch_frontiers, bdd.batch_frontier_nodes
    out = _run_andex(bdd, f, g, cube)
    _finish(bdd, "andex", len(requests), fr0, nd0)
    return out.tolist()


def rename_many(
    bdd, fs: Sequence[int], mapping: Dict[int, int], map_id: int
) -> List[int]:
    """Batched rename of many roots under one shared mapping."""
    arr = np.asarray(list(fs), dtype=np.int64)
    fr0, nd0 = bdd.batch_frontiers, bdd.batch_frontier_nodes
    out = _run_rename(bdd, arr, mapping, map_id)
    _finish(bdd, "rename", int(arr.size), fr0, nd0)
    return out.tolist()


def vcompose_many(
    bdd, fs: Sequence[int], sub: Dict[int, int], map_id: int
) -> List[int]:
    """Batched simultaneous composition of many roots."""
    arr = np.asarray(list(fs), dtype=np.int64)
    fr0, nd0 = bdd.batch_frontiers, bdd.batch_frontier_nodes
    out = _run_vcompose(bdd, arr, sub, map_id)
    _finish(bdd, "vcomp", int(arr.size), fr0, nd0)
    return out.tolist()
