"""Multi-valued decision-diagram layer over binary BDDs.

BLIF-MV variables range over finite symbolic domains ("multi-valued
variables").  HSIS represents each relation over such variables as a BDD
by log-encoding every multi-valued variable onto ``ceil(log2 |domain|)``
boolean variables.  This module provides:

* :class:`MvVar` — a named multi-valued variable with its domain, its
  boolean encoding bits and literal construction,
* :class:`MddManager` — a thin owner coupling a :class:`~repro.bdd.BDD`
  manager with the set of declared multi-valued variables, including
  interleaved declaration of present/next-state pairs (the ordering that
  the HSIS variable-ordering paper [Aziz-Tasiran-Brayton, DAC94]
  prescribes for FSM traversal).

Domains whose size is not a power of two leave unused binary codes; every
:class:`MvVar` carries a ``domain_constraint`` BDD excluding them, and the
manager can provide the conjunction over any variable set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bdd.manager import BDD, BddError

Value = Union[str, int]


def bits_for(n: int) -> int:
    """Number of bits needed to encode ``n`` distinct values (min 1)."""
    if n < 1:
        raise ValueError("domain must be non-empty")
    return max(1, (n - 1).bit_length())


class MvVar:
    """A multi-valued variable log-encoded on boolean BDD variables.

    Values keep their declaration order; value *i* is encoded as the
    binary code *i* over ``bits`` (bit 0 = least significant).
    """

    def __init__(self, bdd: BDD, name: str, values: Sequence[Value], bit_vars: Sequence[int]):
        if len(set(values)) != len(values):
            raise BddError(f"duplicate values in domain of {name!r}")
        self.bdd = bdd
        self.name = name
        self.values: Tuple[Value, ...] = tuple(values)
        self.bits: Tuple[int, ...] = tuple(bit_vars)
        if len(self.bits) != bits_for(len(self.values)):
            raise BddError(f"wrong bit count for {name!r}")
        self._code: Dict[Value, int] = {v: i for i, v in enumerate(self.values)}
        self.domain_constraint = self._compute_domain_constraint()

    @property
    def nvalues(self) -> int:
        return len(self.values)

    def code_of(self, value: Value) -> int:
        """Binary code of a domain value."""
        try:
            return self._code[value]
        except KeyError:
            raise BddError(
                f"{value!r} not in domain of {self.name!r} ({self.values})"
            ) from None

    def value_of(self, code: int) -> Value:
        """Domain value of a binary code (raises on unused codes)."""
        if not 0 <= code < self.nvalues:
            raise BddError(f"code {code} outside domain of {self.name!r}")
        return self.values[code]

    def _cube_for_code(self, code: int) -> int:
        bdd = self.bdd
        f = bdd.true
        for i in reversed(range(len(self.bits))):
            bit = self.bits[i]
            lit = bdd.var(bit) if (code >> i) & 1 else bdd.nvar(bit)
            f = bdd.and_(lit, f)
        return f

    def _compute_domain_constraint(self) -> int:
        bdd = self.bdd
        full = 1 << len(self.bits)
        if self.nvalues == full:
            return bdd.true
        return bdd.disj(self._cube_for_code(c) for c in range(self.nvalues))

    def literal(self, values: Union[Value, Iterable[Value]]) -> int:
        """BDD of ``self in values`` (a single value or an iterable)."""
        if isinstance(values, (str, int)) and values in self._code:
            return self._cube_for_code(self._code[values])
        if isinstance(values, (str, int)):
            raise BddError(f"{values!r} not in domain of {self.name!r}")
        return self.bdd.disj(self._cube_for_code(self.code_of(v)) for v in values)

    def eq_var(self, other: "MvVar") -> int:
        """BDD of ``self == other`` (domains must match)."""
        if self.values != other.values:
            raise BddError(
                f"domain mismatch between {self.name!r} and {other.name!r}"
            )
        bdd = self.bdd
        f = bdd.true
        for a, b in zip(self.bits, other.bits):
            f = bdd.and_(f, bdd.xnor(bdd.var(a), bdd.var(b)))
        # Exclude unused codes on either side so equality only holds on
        # valid encodings.
        f = bdd.and_(f, self.domain_constraint)
        return bdd.and_(f, other.domain_constraint)

    def decode(self, assignment: Dict[int, bool]) -> Value:
        """Read this variable's value out of a boolean assignment."""
        code = 0
        for i, bit in enumerate(self.bits):
            if assignment.get(bit, False):
                code |= 1 << i
        return self.value_of(code)

    def __repr__(self) -> str:
        return f"MvVar({self.name!r}, {len(self.values)} values)"


class MddManager:
    """Owner of multi-valued variables over a shared boolean BDD manager."""

    def __init__(self, bdd: Optional[BDD] = None):
        self.bdd = bdd if bdd is not None else BDD()
        self._vars: Dict[str, MvVar] = {}

    def declare(self, name: str, values: Sequence[Value]) -> MvVar:
        """Declare a multi-valued variable, appending its bits to the order."""
        if name in self._vars:
            raise BddError(f"mv variable {name!r} already declared")
        nbits = bits_for(len(values))
        bit_vars = [self.bdd.add_var(f"{name}.{i}") for i in range(nbits)]
        var = MvVar(self.bdd, name, values, bit_vars)
        self._vars[name] = var
        # Domain-constraint BDDs live as long as the variable; make them
        # GC roots so auto-GC can never sweep them.
        self.bdd.register_root(f"mdd.domain.{name}", var.domain_constraint)
        return var

    def declare_pair(
        self, name_a: str, name_b: str, values: Sequence[Value]
    ) -> Tuple[MvVar, MvVar]:
        """Declare two same-domain variables with *interleaved* bits.

        Used for present-state/next-state latch pairs: interleaving keeps
        the transition-relation BDD small and makes present<->next
        renaming order-preserving.
        """
        for name in (name_a, name_b):
            if name in self._vars:
                raise BddError(f"mv variable {name!r} already declared")
        nbits = bits_for(len(values))
        bits_a, bits_b = [], []
        for i in range(nbits):
            bits_a.append(self.bdd.add_var(f"{name_a}.{i}"))
            bits_b.append(self.bdd.add_var(f"{name_b}.{i}"))
        var_a = MvVar(self.bdd, name_a, values, bits_a)
        var_b = MvVar(self.bdd, name_b, values, bits_b)
        self._vars[name_a] = var_a
        self._vars[name_b] = var_b
        self.bdd.register_root(f"mdd.domain.{name_a}", var_a.domain_constraint)
        self.bdd.register_root(f"mdd.domain.{name_b}", var_b.domain_constraint)
        return var_a, var_b

    def __contains__(self, name: str) -> bool:
        return name in self._vars

    def __getitem__(self, name: str) -> MvVar:
        try:
            return self._vars[name]
        except KeyError:
            raise BddError(f"unknown mv variable {name!r}") from None

    def get(self, name: str) -> Optional[MvVar]:
        return self._vars.get(name)

    @property
    def variables(self) -> List[MvVar]:
        return list(self._vars.values())

    def cube(self, mv_vars: Iterable[MvVar]) -> int:
        """Boolean quantification cube covering all bits of ``mv_vars``."""
        bits: List[int] = []
        for v in mv_vars:
            bits.extend(v.bits)
        return self.bdd.cube(bits)

    def rename_map(
        self, pairs: Iterable[Tuple[MvVar, MvVar]]
    ) -> Dict[int, int]:
        """Boolean variable mapping renaming each pair's bits a -> b."""
        mapping: Dict[int, int] = {}
        for a, b in pairs:
            if len(a.bits) != len(b.bits):
                raise BddError(f"bit-width mismatch: {a.name} vs {b.name}")
            for ba, bb in zip(a.bits, b.bits):
                mapping[ba] = bb
        return mapping

    def domain_constraint(self, mv_vars: Iterable[MvVar]) -> int:
        """Conjunction of domain constraints of ``mv_vars``."""
        return self.bdd.conj(v.domain_constraint for v in mv_vars)

    def assignment_cube(self, assignment: Dict[str, Value]) -> int:
        """BDD cube for a partial assignment of mv variables to values."""
        f = self.bdd.true
        for name, value in assignment.items():
            f = self.bdd.and_(f, self[name].literal(value))
        return f

    def decode(self, assignment: Dict[int, bool], names: Iterable[str]) -> Dict[str, Value]:
        """Decode a boolean assignment into mv values for ``names``."""
        return {n: self[n].decode(assignment) for n in names}
