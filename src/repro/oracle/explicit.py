"""Explicit Kripke structure of a flat BLIF-MV model, by enumeration.

The reference semantics against which the symbolic engines are checked.
Nothing here touches a BDD: states are tuples of latch values, table
membership is decided by walking the rows of the AST directly, and the
transition relation is materialized by enumerating every assignment of
the non-state variables.  Obviously correct, exponentially slow — the
constructor refuses models whose total assignment space exceeds ``cap``
(default 2^14), which is exactly the regime the fuzzer generates.

Semantics mirrored from the symbolic stack:

* a total assignment satisfies a table iff some explicit row matches its
  inputs *and* outputs, or no explicit row matches the inputs and the
  ``.default`` outputs match (:func:`repro.network.encode.encode_table`),
* each latch's next value is the current value of its input wire (fully
  synchronous c/s semantics; synchrony trees are rejected),
* atoms over combinational nets use the "may" reading: the atom holds in
  a state iff *some* resolution of the tables makes it true
  (:meth:`repro.ctl.modelcheck.ModelChecker._atom_states`).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.blifmv.ast import Any_, Eq, Model, Table, ValueSet

State = Tuple[str, ...]
Assignment = Dict[str, str]

DEFAULT_CAP = 1 << 14


class OracleCapExceeded(Exception):
    """The model's assignment space is too large for explicit enumeration."""


def _entry_matches(entry, value: str, env: Assignment) -> bool:
    """Does a single row pattern entry accept ``value`` under ``env``?"""
    if isinstance(entry, Any_):
        return True
    if isinstance(entry, Eq):
        return value == env[entry.name]
    if isinstance(entry, ValueSet):
        return value in entry.values
    return value == entry


def table_satisfied(table: Table, env: Assignment) -> bool:
    """Relation membership of a total assignment, straight off the AST."""
    input_covered = False
    for row in table.rows:
        if all(
            _entry_matches(e, env[name], env)
            for e, name in zip(row.inputs, table.inputs)
        ):
            input_covered = True
            if all(
                _entry_matches(e, env[name], env)
                for e, name in zip(row.outputs, table.outputs)
            ):
                return True
    if not input_covered and table.default is not None:
        return all(
            _entry_matches(e, env[name], env)
            for e, name in zip(table.default, table.outputs)
        )
    return False


class ExplicitKripke:
    """Explicit-state view of a flat, fully synchronous BLIF-MV model.

    ``states`` enumerates every *valid* latch valuation (reachable or
    not) because the symbolic checkers label the full valid state space,
    not just the reachable part.  ``resolutions[state]`` holds every
    total assignment of the non-state variables consistent with all
    tables — the explicit counterpart of existentially quantifying the
    combinational logic.
    """

    def __init__(self, model: Model, cap: int = DEFAULT_CAP):
        if model.subckts:
            raise ValueError("ExplicitKripke needs a flat model")
        if model.synchrony is not None:
            raise ValueError("ExplicitKripke only supports synchronous models")
        model.validate()
        self.model = model
        self.latch_names: List[str] = [l.output for l in model.latches]
        self.latch_input: Dict[str, str] = {
            l.output: l.input for l in model.latches
        }
        self.domains: Dict[str, Tuple[str, ...]] = {
            name: model.domain(name) for name in model.declared_variables()
        }
        state_vars = set(self.latch_names)
        self.nonstate_names: List[str] = [
            n for n in self.domains if n not in state_vars
        ]

        space = 1
        for name in self.domains:
            space *= len(self.domains[name])
            if space > cap:
                raise OracleCapExceeded(
                    f"assignment space of {model.name!r} exceeds cap {cap}"
                )

        self.states: List[State] = [
            tuple(vals)
            for vals in itertools.product(
                *(self.domains[n] for n in self.latch_names)
            )
        ]
        self._index = {s: i for i, s in enumerate(self.states)}

        self.init_states: FrozenSet[State] = frozenset(
            tuple(vals)
            for vals in itertools.product(
                *(
                    tuple(l.reset) if l.reset else self.domains[l.output]
                    for l in model.latches
                )
            )
        )

        # resolutions[state] = all table-consistent total assignments.
        self.resolutions: Dict[State, List[Assignment]] = {}
        # successors[state] = set of next states.
        self.successors: Dict[State, Set[State]] = {}
        nonstate_domains = [self.domains[n] for n in self.nonstate_names]
        for state in self.states:
            base = dict(zip(self.latch_names, state))
            envs: List[Assignment] = []
            succs: Set[State] = set()
            for vals in itertools.product(*nonstate_domains):
                env = dict(base)
                env.update(zip(self.nonstate_names, vals))
                if all(table_satisfied(t, env) for t in model.tables):
                    envs.append(env)
                    succs.add(
                        tuple(env[self.latch_input[l]] for l in self.latch_names)
                    )
            self.resolutions[state] = envs
            self.successors[state] = succs

    # ------------------------------------------------------------------

    def predecessors(self) -> Dict[State, Set[State]]:
        """Inverted transition relation."""
        pred: Dict[State, Set[State]] = {s: set() for s in self.states}
        for src, dsts in self.successors.items():
            for dst in dsts:
                pred[dst].add(src)
        return pred

    def edges(self) -> Set[Tuple[State, State]]:
        """All transitions as (src, dst) pairs."""
        return {
            (src, dst)
            for src, dsts in self.successors.items()
            for dst in dsts
        }

    def reachable(self) -> Tuple[Set[State], List[Set[State]]]:
        """BFS reachable set plus the depth rings (ring 0 = initial)."""
        reached: Set[State] = set(self.init_states)
        rings: List[Set[State]] = [set(self.init_states)]
        frontier = set(self.init_states)
        while frontier:
            step: Set[State] = set()
            for s in frontier:
                step |= self.successors[s]
            frontier = step - reached
            if frontier:
                reached |= frontier
                rings.append(set(frontier))
        return reached, rings

    # ------------------------------------------------------------------

    def atom_states(self, var: str, values: Iterable[str]) -> Set[State]:
        """States satisfying ``var in values`` ("may" semantics on nets)."""
        wanted = set(values)
        if var in self.latch_input:  # a latch output (state variable)
            idx = self.latch_names.index(var)
            return {s for s in self.states if s[idx] in wanted}
        if var not in self.domains:
            raise KeyError(f"unknown variable {var!r}")
        return {
            s
            for s in self.states
            if any(env[var] in wanted for env in self.resolutions[s])
        }

    def pred_states(self, pred: Dict[str, Sequence[str]]) -> Set[State]:
        """States matching a conjunction of latch-valuation constraints."""
        out = set(self.states)
        for var, values in pred.items():
            out &= self.atom_states(var, values)
        return out

    def state_dict(self, state: State) -> Dict[str, str]:
        return dict(zip(self.latch_names, state))

    def state_of(self, valuation: Dict[str, str]) -> Optional[State]:
        """Tuple form of a latch-name valuation (None if any latch missing)."""
        try:
            return tuple(valuation[l] for l in self.latch_names)
        except KeyError:
            return None
