"""Explicit-state reference oracle for the symbolic verification stack.

HSIS's answers all flow through one BDD kernel, so a single subtle
kernel bug silently corrupts every verdict the tool gives.  This package
is the antidote: a slow-but-obviously-correct *explicit-state* engine
that recomputes the same answers by direct enumeration (capped at small
state spaces), plus seeded random generators and a differential harness
that cross-checks the whole symbolic stack end-to-end:

* :mod:`repro.oracle.explicit` — explicit Kripke structure built by
  enumerating table resolutions of a flat BLIF-MV model,
* :mod:`repro.oracle.graphs` — Tarjan SCCs and Emerson-Lei/Streett fair
  cycle detection on explicit graphs,
* :mod:`repro.oracle.ctl` — explicit fair-CTL labeling,
* :mod:`repro.oracle.containment` — product-automaton language
  containment by direct enumeration,
* :mod:`repro.oracle.truthtable` — a bitmask truth-table model of every
  BDD operator,
* :mod:`repro.oracle.fuzz` — seeded generators (models, CTL formulas,
  fairness constraints, property automata) with greedy shrinking,
* :mod:`repro.oracle.diff` — the differential harness behind the
  ``hsis fuzz`` command and ``tests/test_differential.py``.
"""

from repro.oracle.explicit import ExplicitKripke, OracleCapExceeded
from repro.oracle.graphs import ExplicitFairness, fair_path_states, sccs
from repro.oracle.ctl import ExplicitModelChecker
from repro.oracle.containment import (
    ExplicitLcResult,
    check_containment_explicit,
    validate_lc_trace,
)
from repro.oracle.truthtable import TruthTable
from repro.oracle.diff import (
    Divergence,
    SweepReport,
    TrialReport,
    decode_states,
    replay_corpus_dir,
    replay_corpus_entry,
    run_sweep,
    run_trial,
    state_bits,
)

__all__ = [
    "ExplicitKripke",
    "OracleCapExceeded",
    "ExplicitFairness",
    "fair_path_states",
    "sccs",
    "ExplicitModelChecker",
    "ExplicitLcResult",
    "check_containment_explicit",
    "validate_lc_trace",
    "TruthTable",
    "Divergence",
    "SweepReport",
    "TrialReport",
    "decode_states",
    "replay_corpus_dir",
    "replay_corpus_entry",
    "run_sweep",
    "run_trial",
    "state_bits",
]
