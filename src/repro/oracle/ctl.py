"""Explicit fair-CTL labeling, mirroring :class:`repro.ctl.modelcheck.ModelChecker`.

Works over any explicit graph (nodes + successor sets + an atom
evaluator), so the same checker labels both raw Kripke structures and
bisimulation quotients.  The fixpoints follow the symbolic checker
node-for-node:

* ``fair`` is the whole space when fairness is trivial (*not* the
  infinite-path states — this matches ``ModelChecker.fair_states``),
* ``EX f = pre(f & fair) & space``,
* ``E[f U g] = lfp R . (g & fair) | (f & pre(R))``,
* ``EG f`` is the ν-fixpoint without fairness and the fair-path
  closure (:func:`repro.oracle.graphs.fair_path_states`) with it,
* universal operators go through the same existential duals, including
  ``A[f U g] = !(E[!g U (!f & !g)] | EG !g)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    And,
    Atom,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
)
from repro.ctl.parser import parse_ctl
from repro.oracle.graphs import ExplicitFairness, fair_path_states

Node = object
AtomFn = Callable[[str, Tuple[str, ...]], Set[Node]]


class ExplicitModelChecker:
    """Bottom-up explicit CTL evaluation over an arbitrary finite graph."""

    def __init__(
        self,
        nodes: Iterable[Node],
        successors: Dict[Node, Set[Node]],
        atom_fn: AtomFn,
        fairness: Optional[ExplicitFairness] = None,
    ):
        self.space: Set[Node] = set(nodes)
        self.successors = successors
        self.atom_fn = atom_fn
        self.fairness = fairness or ExplicitFairness()
        self.edges: Set[Tuple[Node, Node]] = {
            (u, v)
            for u in self.space
            for v in successors.get(u, ())
            if v in self.space
        }
        self._fair: Optional[Set[Node]] = None
        self._cache: Dict[Formula, frozenset] = {}

    @classmethod
    def for_kripke(
        cls, kripke, fairness: Optional[ExplicitFairness] = None
    ) -> "ExplicitModelChecker":
        """Checker over an :class:`~repro.oracle.explicit.ExplicitKripke`."""
        return cls(
            kripke.states, kripke.successors, kripke.atom_states, fairness
        )

    # ------------------------------------------------------------------

    @property
    def has_fairness(self) -> bool:
        return not self.fairness.trivial

    def fair_states(self) -> Set[Node]:
        if self._fair is None:
            if self.has_fairness:
                self._fair = fair_path_states(
                    self.space, self.edges, self.fairness
                )
            else:
                self._fair = set(self.space)
        return self._fair

    def _pre(self, target: Set[Node]) -> Set[Node]:
        return {
            u
            for u in self.space
            if any(v in target for v in self.successors.get(u, ()))
        }

    # ------------------------------------------------------------------

    def eval(self, formula) -> frozenset:
        """Set of nodes satisfying ``formula``."""
        if isinstance(formula, str):
            formula = parse_ctl(formula)
        cached = self._cache.get(formula)
        if cached is None:
            cached = frozenset(self._eval(formula))
            self._cache[formula] = cached
        return cached

    def holds_on(self, initial: Iterable[Node]) -> Callable[[object], bool]:
        """Verdict function: does a formula hold on every initial node?"""
        init = set(initial)

        def verdict(formula) -> bool:
            return init <= self.eval(formula)

        return verdict

    def _eval(self, f: Formula) -> Set[Node]:
        if isinstance(f, TrueF):
            return set(self.space)
        if isinstance(f, FalseF):
            return set()
        if isinstance(f, Atom):
            return set(self.atom_fn(f.var, f.values)) & self.space
        if isinstance(f, Not):
            return self.space - self.eval(f.sub)
        if isinstance(f, And):
            return set(self.eval(f.left) & self.eval(f.right))
        if isinstance(f, Or):
            return set(self.eval(f.left) | self.eval(f.right))
        if isinstance(f, Implies):
            return self._eval(Or(Not(f.left), f.right))
        if isinstance(f, Iff):
            return self._eval(Implies(f.left, f.right)) & self._eval(
                Implies(f.right, f.left)
            )
        if isinstance(f, EX):
            return self.ex(set(self.eval(f.sub)))
        if isinstance(f, EU):
            return self.eu(set(self.eval(f.left)), set(self.eval(f.right)))
        if isinstance(f, EG):
            return self.eg(set(self.eval(f.sub)))
        if isinstance(f, EF):
            return self.eu(set(self.space), set(self.eval(f.sub)))
        if isinstance(f, AX):
            return self.space - self.ex(self.space - self.eval(f.sub))
        if isinstance(f, AG):
            ef_not = self.eu(set(self.space), self.space - self.eval(f.sub))
            return self.space - ef_not
        if isinstance(f, AF):
            return self.space - self.eg(self.space - self.eval(f.sub))
        if isinstance(f, AU):
            nf = self.space - self.eval(f.left)
            ng = self.space - self.eval(f.right)
            bad = self.eu(set(ng), nf & ng) | self.eg(set(ng))
            return self.space - bad
        raise TypeError(f"unknown formula node {f!r}")

    # -- fair fixpoint operators ---------------------------------------

    def ex(self, states: Set[Node]) -> Set[Node]:
        return self._pre(states & self.fair_states())

    def eu(self, hold: Set[Node], target: Set[Node]) -> Set[Node]:
        reach = (target & self.fair_states()) & self.space
        while True:
            new = reach | (hold & self._pre(reach) & self.space)
            if new == reach:
                return reach
            reach = new

    def eg(self, states: Set[Node]) -> Set[Node]:
        states = states & self.space
        if self.has_fairness:
            return fair_path_states(states, self.edges, self.fairness)
        z = set(states)
        while True:
            nz = z & self._pre(z)
            if nz == z:
                return z
            z = nz
