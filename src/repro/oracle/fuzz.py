"""Seeded random generators and shrinking for the differential harness.

Everything is driven by an explicit :class:`random.Random` — no module
state, no entropy — so any failure reproduces bit-for-bit from its seed.
The generators produce:

* :func:`gen_model` — small flat BLIF-MV models: multi-valued latches,
  non-deterministic tables (ANY / value-set / ``=input`` entries,
  defaults, partial relations), optional primary inputs and observable
  wires.  Assignment spaces stay within the explicit oracle's cap.
* :func:`gen_ctl` / :func:`gen_prop` — CTL formulas over the model's
  nets (full operator set; ``gen_prop`` is propositional, used to
  exercise the ``AG`` invariant fast path).
* :func:`gen_fairness_descs` — fairness constraints as plain dicts that
  bind to both engines (:func:`fairness_spec_from_descs` symbolically,
  :func:`repro.oracle.containment.system_fairness_from_descs`
  explicitly).
* :func:`gen_automaton_desc` — deterministic, complete property automata
  (decision-list guards) with invariance / recurrence / raw-Rabin
  acceptance, as plain dicts (:func:`automaton_from_desc` rebuilds).

:func:`shrink_case` greedily minimizes a failing case while a caller
predicate keeps failing — drop rows, defaults, fairness constraints and
formulas, narrow value sets and resets — bounded and deterministic.
"""

from __future__ import annotations

import copy
import random
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.automata.automaton import (
    Automaton,
    GAnd,
    GAtom,
    GNot,
    GOr,
    GTrue,
    Guard,
)
from repro.automata.fairness import (
    BuchiState,
    FairnessSpec,
    NegativeStateSet,
    StreettPair,
)
from repro.blifmv import parse, write_model
from repro.blifmv.ast import (
    ANY,
    Any_,
    BlifMvError,
    Eq,
    Latch,
    Model,
    Row,
    Table,
    ValueSet,
)
from repro.ctl.ast import (
    AF,
    AG,
    AU,
    AX,
    And,
    Atom,
    EF,
    EG,
    EU,
    EX,
    FalseF,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueF,
)

DOMAINS: Tuple[Tuple[str, ...], ...] = (
    ("0", "1"),
    ("0", "1"),
    ("0", "1", "2"),
    ("0", "1", "2", "3"),
)

DEFAULT_MAX_SPACE = 4096


# ----------------------------------------------------------------------
# Models
# ----------------------------------------------------------------------


def _subset(rng: random.Random, values: Sequence[str], min_size: int = 1) -> List[str]:
    size = rng.randint(min_size, len(values))
    return sorted(rng.sample(list(values), size))


def _input_entry(rng: random.Random, domain: Tuple[str, ...]):
    r = rng.random()
    if r < 0.55:
        return rng.choice(domain)
    if r < 0.82:
        return ANY
    return ValueSet(tuple(_subset(rng, domain)))


def _output_entry(
    rng: random.Random,
    domain: Tuple[str, ...],
    eq_candidates: Sequence[str],
):
    r = rng.random()
    if r < 0.55:
        return rng.choice(domain)
    if r < 0.70 and eq_candidates:
        return Eq(rng.choice(list(eq_candidates)))
    if r < 0.90:
        return ValueSet(tuple(_subset(rng, domain)))
    return ANY


def _gen_table(
    rng: random.Random,
    model: Model,
    output: str,
    available: Sequence[str],
) -> Table:
    n_in = rng.randint(1, min(3, len(available)))
    inputs = sorted(rng.sample(list(available), n_in))
    out_domain = model.domain(output)
    eq_candidates = [v for v in inputs if model.domain(v) == out_domain]
    table = Table(inputs=inputs, outputs=[output])
    n_rows = rng.randint(0, 3)
    for _ in range(n_rows):
        table.rows.append(
            Row(
                inputs=tuple(
                    _input_entry(rng, model.domain(v)) for v in inputs
                ),
                outputs=(_output_entry(rng, out_domain, eq_candidates),),
            )
        )
    if n_rows == 0 or rng.random() < 0.5:
        table.default = (_output_entry(rng, out_domain, eq_candidates),)
    return table


def gen_model(
    rng: random.Random,
    max_space: int = DEFAULT_MAX_SPACE,
    name: str = "fuzz",
) -> Model:
    """One random flat model whose assignment space fits ``max_space``."""
    for _attempt in range(64):
        model = _gen_model_once(rng, name)
        space = 1
        for v in model.declared_variables():
            space *= len(model.domain(v))
        if space > max_space:
            continue
        try:
            model.validate()
        except BlifMvError:
            continue
        return model
    raise RuntimeError("could not generate a model within the space cap")


def _gen_model_once(rng: random.Random, name: str) -> Model:
    model = Model(name=name)
    n_latch = rng.choice([1, 2, 2, 2, 3])
    latch_domains = [rng.choice(DOMAINS) for _ in range(n_latch)]

    # Primary input (optional).
    has_input = rng.random() < 0.5
    if has_input:
        model.inputs.append("inp")
        model.domains["inp"] = rng.choice(DOMAINS[:3])

    latch_outs = [f"s{i}" for i in range(n_latch)]
    for latch_name, domain in zip(latch_outs, latch_domains):
        model.domains[latch_name] = domain

    # Observable combinational wire (optional), usable downstream.
    available = list(latch_outs) + (["inp"] if has_input else [])
    wires: List[str] = []
    if rng.random() < 0.5:
        model.domains["w0"] = rng.choice(DOMAINS[:3])
        model.tables.append(_gen_table(rng, model, "w0", available))
        wires.append("w0")
        model.outputs.append("w0")

    # Latch next-state functions.
    for i, (latch_name, domain) in enumerate(zip(latch_outs, latch_domains)):
        r = rng.random()
        same_domain = [
            v
            for v in available
            if model.domain(v) == domain and v != latch_name
        ]
        if r < 0.12 and same_domain:
            # Feed the latch straight from an existing net.
            input_name = rng.choice(same_domain)
        else:
            input_name = f"n{i}"
            model.domains[input_name] = domain
            if r < 0.95:
                model.tables.append(
                    _gen_table(rng, model, input_name, available + wires)
                )
            # else: leave the wire undriven — a free non-deterministic
            # value on both engines.
        reset = _subset(rng, domain) if rng.random() < 0.9 else [rng.choice(domain)]
        if rng.random() < 0.7:
            reset = [rng.choice(domain)]
        model.latches.append(
            Latch(input=input_name, output=latch_name, reset=list(reset))
        )

    if not model.outputs:
        model.outputs.append(latch_outs[0])
    return model


# ----------------------------------------------------------------------
# CTL formulas
# ----------------------------------------------------------------------


def _gen_atom(rng: random.Random, model: Model) -> Atom:
    latches = [l.output for l in model.latches]
    others = [v for v in model.declared_variables() if v not in latches]
    if others and rng.random() < 0.35:
        var = rng.choice(sorted(others))
    else:
        var = rng.choice(latches)
    domain = model.domain(var)
    if rng.random() < 0.75:
        values: Tuple[str, ...] = (rng.choice(domain),)
    else:
        values = tuple(_subset(rng, domain))
    return Atom(var, values)


def gen_prop(rng: random.Random, model: Model, depth: int = 2) -> Formula:
    """A propositional (non-temporal) formula over the model's nets."""
    if depth <= 0 or rng.random() < 0.4:
        r = rng.random()
        if r < 0.05:
            return TrueF()
        if r < 0.1:
            return FalseF()
        return _gen_atom(rng, model)
    op = rng.choice(["not", "and", "or", "implies", "iff"])
    if op == "not":
        return Not(gen_prop(rng, model, depth - 1))
    left = gen_prop(rng, model, depth - 1)
    right = gen_prop(rng, model, depth - 1)
    return {"and": And, "or": Or, "implies": Implies, "iff": Iff}[op](left, right)


def gen_ctl(rng: random.Random, model: Model, depth: int = 3) -> Formula:
    """A CTL formula over the model's nets, full operator set."""
    if depth <= 0 or rng.random() < 0.3:
        return gen_prop(rng, model, 1)
    op = rng.choice(
        ["not", "and", "or", "implies",
         "EX", "EF", "EG", "EU", "AX", "AF", "AG", "AU"]
    )
    if op == "not":
        return Not(gen_ctl(rng, model, depth - 1))
    if op in ("and", "or", "implies"):
        left = gen_ctl(rng, model, depth - 1)
        right = gen_ctl(rng, model, depth - 1)
        return {"and": And, "or": Or, "implies": Implies}[op](left, right)
    if op in ("EX", "EF", "EG", "AX", "AF", "AG"):
        unary = {"EX": EX, "EF": EF, "EG": EG, "AX": AX, "AF": AF, "AG": AG}
        return unary[op](gen_ctl(rng, model, depth - 1))
    left = gen_ctl(rng, model, depth - 1)
    right = gen_ctl(rng, model, depth - 1)
    return EU(left, right) if op == "EU" else AU(left, right)


def format_ctl(f: Formula) -> str:
    """Serialize a formula so :func:`repro.ctl.parser.parse_ctl` round-trips.

    ``str(Atom)`` prints multi-value atoms without the space the lexer
    needs, so the corpus uses this writer instead.
    """
    if isinstance(f, TrueF):
        return "TRUE"
    if isinstance(f, FalseF):
        return "FALSE"
    if isinstance(f, Atom):
        if len(f.values) == 1:
            return f"{f.var}={f.values[0]}"
        return "{} in {{{}}}".format(f.var, ",".join(f.values))
    if isinstance(f, Not):
        return f"!({format_ctl(f.sub)})"
    if isinstance(f, And):
        return f"(({format_ctl(f.left)}) & ({format_ctl(f.right)}))"
    if isinstance(f, Or):
        return f"(({format_ctl(f.left)}) | ({format_ctl(f.right)}))"
    if isinstance(f, Implies):
        return f"(({format_ctl(f.left)}) -> ({format_ctl(f.right)}))"
    if isinstance(f, Iff):
        return f"(({format_ctl(f.left)}) <-> ({format_ctl(f.right)}))"
    for cls, tag in ((EX, "EX"), (EF, "EF"), (EG, "EG"),
                     (AX, "AX"), (AF, "AF"), (AG, "AG")):
        if isinstance(f, cls):
            return f"{tag} ({format_ctl(f.sub)})"
    if isinstance(f, EU):
        return f"E[({format_ctl(f.left)}) U ({format_ctl(f.right)})]"
    if isinstance(f, AU):
        return f"A[({format_ctl(f.left)}) U ({format_ctl(f.right)})]"
    raise TypeError(f"unknown formula node {f!r}")


# ----------------------------------------------------------------------
# Fairness constraints (engine-neutral descs)
# ----------------------------------------------------------------------


def _state_pred_desc(rng: random.Random, model: Model) -> Dict[str, List[str]]:
    latches = [l.output for l in model.latches]
    chosen = rng.sample(latches, rng.randint(1, min(2, len(latches))))
    return {
        name: _subset(rng, model.domain(name)) for name in sorted(chosen)
    }


def gen_fairness_descs(rng: random.Random, model: Model) -> List[dict]:
    """0-2 fairness constraints as engine-neutral dicts."""
    descs: List[dict] = []
    for _ in range(rng.choice([0, 0, 0, 1, 1, 2])):
        r = rng.random()
        if r < 0.45:
            descs.append(
                {"kind": "buchi_state", "src": _state_pred_desc(rng, model)}
            )
        elif r < 0.75:
            descs.append(
                {"kind": "negative_state", "src": _state_pred_desc(rng, model)}
            )
        else:
            descs.append(
                {
                    "kind": "streett",
                    "e_src": _state_pred_desc(rng, model),
                    "f_src": _state_pred_desc(rng, model),
                }
            )
    return descs


def fairness_spec_from_descs(fsm, descs: Sequence[dict]) -> FairnessSpec:
    """Bind engine-neutral fairness descs to a symbolic machine."""
    bdd = fsm.bdd

    def state_set(pred: Dict[str, Sequence[str]]) -> int:
        return bdd.conj(
            fsm.var(name).literal(list(values))
            for name, values in sorted(pred.items())
        )

    spec = FairnessSpec()
    for i, desc in enumerate(descs):
        kind = desc["kind"]
        if kind == "buchi_state":
            spec.add(BuchiState(state_set(desc["src"]), label=f"fz{i}"))
        elif kind == "negative_state":
            spec.add(NegativeStateSet(state_set(desc["src"]), label=f"fz{i}"))
        elif kind == "streett":
            spec.add(
                StreettPair(
                    e=state_set(desc["e_src"]),
                    f=state_set(desc["f_src"]),
                    label=f"fz{i}",
                )
            )
        else:
            raise ValueError(f"unknown fairness desc kind {kind!r}")
    return spec


# ----------------------------------------------------------------------
# Property automata (engine-neutral descs)
# ----------------------------------------------------------------------


def _gen_guard_desc(rng: random.Random, model: Model) -> list:
    atom = _gen_atom(rng, model)
    desc: list = ["atom", atom.var, list(atom.values)]
    if rng.random() < 0.25:
        desc = ["not", desc]
    if rng.random() < 0.2:
        other = _gen_atom(rng, model)
        desc = ["and", desc, ["atom", other.var, list(other.values)]]
    return desc


def guard_from_desc(desc: Sequence) -> Guard:
    tag = desc[0]
    if tag == "true":
        return GTrue()
    if tag == "atom":
        return GAtom(desc[1], tuple(desc[2]))
    if tag == "not":
        return GNot(guard_from_desc(desc[1]))
    if tag == "and":
        return GAnd(tuple(guard_from_desc(d) for d in desc[1:]))
    if tag == "or":
        return GOr(tuple(guard_from_desc(d) for d in desc[1:]))
    raise ValueError(f"unknown guard desc {desc!r}")


def gen_automaton_desc(rng: random.Random, model: Model) -> dict:
    """A deterministic, complete property automaton as a plain dict.

    Each state's outgoing edges form a decision list (g1; !g1&g2; else),
    so determinism and completeness hold by construction.
    """
    n_states = rng.choice([2, 2, 2, 3])
    states = [f"q{i}" for i in range(n_states)]
    edges: List[list] = []
    for src in states:
        k = rng.choice([1, 1, 2])
        conds = [_gen_guard_desc(rng, model) for _ in range(k)]
        negated = None
        for cond in conds:
            dst = rng.choice(states)
            guard = cond if negated is None else ["and", negated, cond]
            edges.append([src, dst, guard])
            neg = ["not", cond]
            negated = neg if negated is None else ["and", negated, neg]
        edges.append([src, rng.choice(states), negated])

    desc = {
        "name": "mon",
        "states": states,
        "initial": [states[0]],
        "edges": edges,
    }
    automaton = automaton_from_desc(dict(desc, rabin=[]))
    r = rng.random()
    if r < 0.5:
        good = _subset(rng, states)
        if len(good) == len(states):
            good = good[:-1]
        automaton.accept_invariance(good)
    elif r < 0.8:
        keys = [(e.src, e.dst) for e in automaton.edges]
        automaton.accept_recurrence(
            rng.sample(keys, rng.randint(1, min(3, len(keys))))
        )
    else:
        keys = [(e.src, e.dst) for e in automaton.edges]
        fin = rng.sample(keys, rng.randint(0, min(2, len(keys))))
        inf = rng.sample(keys, rng.randint(1, min(3, len(keys))))
        automaton.accept_rabin(fin, inf)
    desc["rabin"] = [
        [sorted(fin), sorted(inf)] for fin, inf in automaton.rabin_pairs
    ]
    return desc


def automaton_from_desc(desc: dict) -> Automaton:
    automaton = Automaton(
        name=desc["name"],
        states=list(desc["states"]),
        initial=list(desc["initial"]),
    )
    for src, dst, guard in desc["edges"]:
        automaton.add_edge(src, dst, guard_from_desc(guard))
    for fin, inf in desc.get("rabin", []):
        automaton.accept_rabin(
            [tuple(k) for k in fin], [tuple(k) for k in inf]
        )
    return automaton


# ----------------------------------------------------------------------
# Cases (one generated trial's inputs) and shrinking
# ----------------------------------------------------------------------


def gen_case(rng: random.Random, max_space: int = DEFAULT_MAX_SPACE) -> dict:
    """All inputs of one differential trial, generated from one stream."""
    model = gen_model(rng, max_space=max_space)
    formulas = [gen_ctl(rng, model) for _ in range(rng.choice([2, 2, 3]))]
    invariant = AG(gen_prop(rng, model))
    return {
        "model": model,
        "formulas": formulas,
        "invariant": invariant,
        "fairness": gen_fairness_descs(rng, model),
        "automaton": gen_automaton_desc(rng, model),
        "build_method": rng.choice(["greedy", "greedy", "linear", "monolithic"]),
        "partitioned": rng.random() < 0.25,
    }


def case_to_payload(case: dict) -> dict:
    """JSON-ready form of a case (used for corpus entries)."""
    return {
        "model": write_model(case["model"]),
        "formulas": [format_ctl(f) for f in case["formulas"]],
        "invariant": format_ctl(case["invariant"]),
        "fairness": case["fairness"],
        "automaton": case["automaton"],
        "build_method": case["build_method"],
        "partitioned": case["partitioned"],
    }


def case_from_payload(payload: dict) -> dict:
    from repro.ctl.parser import parse_ctl

    return {
        "model": parse(payload["model"]).root_model(),
        "formulas": [parse_ctl(text) for text in payload["formulas"]],
        "invariant": parse_ctl(payload["invariant"]),
        "fairness": payload["fairness"],
        "automaton": payload["automaton"],
        "build_method": payload.get("build_method", "greedy"),
        "partitioned": payload.get("partitioned", False),
    }


def _formula_shrinks(f: Formula) -> Iterator[Formula]:
    if isinstance(f, (Not, EX, EF, EG, AX, AF, AG)):
        yield f.sub
    if isinstance(f, (And, Or, Implies, Iff, EU, AU)):
        yield f.left
        yield f.right
    if not isinstance(f, (TrueF, FalseF, Atom)):
        yield TrueF()


def _case_mutations(case: dict) -> Iterator[Callable[[dict], None]]:
    """Yield in-place simplifications, most aggressive first."""
    model: Model = case["model"]
    for i in range(len(case["fairness"])):
        yield lambda c, i=i: c["fairness"].pop(i)
    if len(case["formulas"]) > 1:
        for i in range(len(case["formulas"])):
            yield lambda c, i=i: c["formulas"].pop(i)
    for i, f in enumerate(case["formulas"]):
        for smaller in _formula_shrinks(f):
            yield lambda c, i=i, s=smaller: c["formulas"].__setitem__(i, s)
    for smaller in _formula_shrinks(case["invariant"].sub):
        yield lambda c, s=smaller: c.__setitem__("invariant", AG(s))
    for ti, table in enumerate(model.tables):
        for ri in range(len(table.rows)):
            yield lambda c, ti=ti, ri=ri: c["model"].tables[ti].rows.pop(ri)
        if table.default is not None:
            yield lambda c, ti=ti: setattr(c["model"].tables[ti], "default", None)
    for ti, table in enumerate(model.tables):
        for ri, row in enumerate(table.rows):
            for col, entry in enumerate(row.inputs):
                if isinstance(entry, (Any_, ValueSet)):
                    value = (
                        entry.values[0]
                        if isinstance(entry, ValueSet)
                        else model.domain(table.inputs[col])[0]
                    )
                    yield lambda c, ti=ti, ri=ri, col=col, v=value: _set_row_entry(
                        c["model"].tables[ti].rows[ri], col, v, output=False
                    )
            for col, entry in enumerate(row.outputs):
                if isinstance(entry, (Any_, ValueSet, Eq)):
                    value = (
                        entry.values[0]
                        if isinstance(entry, ValueSet)
                        else model.domain(table.outputs[col])[0]
                    )
                    yield lambda c, ti=ti, ri=ri, col=col, v=value: _set_row_entry(
                        c["model"].tables[ti].rows[ri], col, v, output=True
                    )
    for li, latch in enumerate(model.latches):
        if len(latch.reset) > 1:
            yield lambda c, li=li: setattr(
                c["model"].latches[li], "reset", c["model"].latches[li].reset[:1]
            )
    automaton = case.get("automaton")
    if automaton and len(automaton.get("rabin", [])) > 1:
        for i in range(len(automaton["rabin"])):
            yield lambda c, i=i: c["automaton"]["rabin"].pop(i)


def _set_row_entry(row: Row, col: int, value: str, output: bool) -> None:
    if output:
        row.outputs = row.outputs[:col] + (value,) + row.outputs[col + 1:]
    else:
        row.inputs = row.inputs[:col] + (value,) + row.inputs[col + 1:]


def shrink_case(
    case: dict,
    still_fails: Callable[[dict], bool],
    max_attempts: int = 200,
) -> dict:
    """Greedy minimization: apply any simplification that keeps failing.

    ``still_fails`` must swallow its own exceptions (a mutation can
    produce a model the engines reject); treat errors as "not failing".
    """
    current = copy.deepcopy(case)
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for mutate in _case_mutations(current):
            if attempts >= max_attempts:
                break
            candidate = copy.deepcopy(current)
            try:
                mutate(candidate)
                candidate["model"].validate()
            except Exception:
                continue
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
    return current
