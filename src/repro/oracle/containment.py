"""Explicit product-automaton language containment, by direct enumeration.

Mirrors :func:`repro.lc.containment.check_containment`: build the product
of the explicit Kripke structure with the (deterministic) property
automaton, complement its edge-Rabin acceptance into Streett pairs, and
search the reachable product for a fair cycle.  A fair cycle is a
counterexample run; none means containment holds.

The monitor's guard and the system step share one resolution of the
combinational logic — exactly like the symbolic product, where the
monitor conjunct joins the table conjuncts before quantification.
Incomplete automata fall into an implicit rejecting trap, matching the
automatic :meth:`~repro.automata.automaton.Automaton.completed` call in
``attach``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.automata.automaton import (
    Automaton,
    GAnd,
    GAtom,
    GNot,
    GOr,
    GTrue,
    Guard,
)
from repro.oracle.explicit import Assignment, ExplicitKripke, State
from repro.oracle.graphs import ExplicitFairness, fair_sccs

TRAP = "_trap"

ProductState = Tuple[State, str]


def eval_guard(guard: Guard, env: Assignment) -> bool:
    """Evaluate a monitor guard under one total assignment."""
    if isinstance(guard, GTrue):
        return True
    if isinstance(guard, GAtom):
        return env[guard.var] in guard.values
    if isinstance(guard, GAnd):
        return all(eval_guard(p, env) for p in guard.parts)
    if isinstance(guard, GOr):
        return any(eval_guard(p, env) for p in guard.parts)
    if isinstance(guard, GNot):
        return not eval_guard(guard.part, env)
    raise TypeError(f"unknown guard node {guard!r}")


@dataclass
class ExplicitLcResult:
    """Outcome of one explicit containment check."""

    holds: bool
    reachable: Set[ProductState]
    fair_scc: Optional[Set[ProductState]]
    product: "ExplicitProduct"

    @property
    def failed(self) -> bool:
        return not self.holds


@dataclass
class ExplicitProduct:
    """The system × monitor product graph, built lazily over the
    reachable part only."""

    kripke: ExplicitKripke
    automaton: Automaton
    init: FrozenSet[ProductState] = field(init=False)
    successors: Dict[ProductState, Set[ProductState]] = field(
        init=False, default_factory=dict
    )
    _by_src: Dict[str, list] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._by_src = {s: [] for s in self.automaton.states}
        for e in self.automaton.edges:
            self._by_src[e.src].append(e)
        self.init = frozenset(
            (s, m)
            for s in self.kripke.init_states
            for m in self.automaton.initial
        )

    def succ(self, node: ProductState) -> Set[ProductState]:
        cached = self.successors.get(node)
        if cached is not None:
            return cached
        state, mstate = node
        out: Set[ProductState] = set()
        if mstate == TRAP and TRAP not in self._by_src:
            # Implicit rejecting trap: self-loop on every system move.
            for nxt in self.kripke.successors[state]:
                out.add((nxt, TRAP))
        else:
            for env in self.kripke.resolutions[state]:
                nxt = tuple(
                    env[self.kripke.latch_input[l]]
                    for l in self.kripke.latch_names
                )
                matched = False
                for edge in self._by_src[mstate]:
                    if eval_guard(edge.guard, env):
                        matched = True
                        out.add((nxt, edge.dst))
                if not matched:
                    out.add((nxt, TRAP))
        self.successors[node] = out
        return out

    def reachable(self) -> Set[ProductState]:
        reached: Set[ProductState] = set(self.init)
        frontier = list(self.init)
        while frontier:
            node = frontier.pop()
            for nxt in self.succ(node):
                if nxt not in reached:
                    reached.add(nxt)
                    frontier.append(nxt)
        return reached

    def combined_fairness(
        self, system_fairness: Optional[ExplicitFairness]
    ) -> ExplicitFairness:
        """System fairness lifted to product edges, plus the complemented
        Rabin acceptance as Streett pairs (``inf(I) -> inf(F)``)."""

        def lift(pred):
            return lambda u, v: pred(u[0], v[0])

        sysf = system_fairness or ExplicitFairness()
        buchi = [lift(p) for p in sysf.buchi]
        streett = [(lift(e), lift(f)) for (e, f) in sysf.streett]
        for fin, inf in self.automaton.rabin_pairs:

            def e_pred(u, v, keys=inf):
                return (u[1], v[1]) in keys

            def f_pred(u, v, keys=fin):
                return (u[1], v[1]) in keys

            streett.append((e_pred, f_pred))
        return ExplicitFairness(buchi=buchi, streett=streett)


def check_containment_explicit(
    kripke: ExplicitKripke,
    automaton: Automaton,
    system_fairness: Optional[ExplicitFairness] = None,
) -> ExplicitLcResult:
    """Explicit-state verdict for ``L(system) ⊆ L(automaton)``.

    ``system_fairness`` predicates operate on *system* state tuples; they
    are lifted to product edges internally.
    """
    product = ExplicitProduct(kripke, automaton)
    reached = product.reachable()
    edges = {(u, v) for u in reached for v in product.succ(u)}
    fairness = product.combined_fairness(system_fairness)
    fair = fair_sccs(reached, edges, fairness)
    return ExplicitLcResult(
        holds=not fair,
        reachable=reached,
        fair_scc=fair[0] if fair else None,
        product=product,
    )


def validate_lc_trace(
    kripke: ExplicitKripke,
    automaton: Automaton,
    trace,
    monitor_var: Optional[str] = None,
) -> List[str]:
    """Check a symbolic counterexample lasso against the explicit product.

    ``trace`` is a :class:`repro.debug.trace.Trace` (prefix + cycle of
    steps whose ``state`` dicts carry latch values plus the monitor
    variable).  Returns a list of problem descriptions; empty means the
    lasso is a genuine run of the product (starts initial, every hop is a
    product transition, and the cycle closes).
    """
    monitor_var = monitor_var or f"{automaton.name}.state"
    product = ExplicitProduct(kripke, automaton)
    problems: List[str] = []

    def decode(step, pos: str) -> Optional[ProductState]:
        state = kripke.state_of(step.state)
        if state is None:
            problems.append(f"{pos}: missing latch values in {step.state!r}")
            return None
        mstate = step.state.get(monitor_var)
        if mstate is None:
            problems.append(f"{pos}: missing monitor variable {monitor_var!r}")
            return None
        if mstate not in automaton.states and mstate != TRAP:
            problems.append(f"{pos}: unknown monitor state {mstate!r}")
            return None
        return (state, mstate)

    steps: List[Tuple[str, object]] = []
    for i, step in enumerate(trace.prefix):
        steps.append((f"prefix[{i}]", step))
    for i, step in enumerate(trace.cycle):
        steps.append((f"cycle[{i}]", step))
    if not trace.cycle:
        problems.append("trace has an empty cycle")
        return problems

    nodes: List[Optional[ProductState]] = [
        decode(step, pos) for pos, step in steps
    ]
    if any(n is None for n in nodes):
        return problems

    first = nodes[0]
    if first[0] not in kripke.init_states or first[1] not in automaton.initial:
        problems.append(f"{steps[0][0]}: {first!r} is not an initial product state")
    for i in range(1, len(nodes)):
        if nodes[i] not in product.succ(nodes[i - 1]):
            problems.append(
                f"{steps[i - 1][0]} -> {steps[i][0]}: "
                f"{nodes[i - 1]!r} -> {nodes[i]!r} is not a product transition"
            )
    anchor = nodes[len(trace.prefix)]
    if anchor not in product.succ(nodes[-1]):
        problems.append(
            f"cycle does not close: {nodes[-1]!r} -> {anchor!r} "
            "is not a product transition"
        )
    return problems


def system_fairness_from_descs(
    kripke: ExplicitKripke, descs: Sequence[dict]
) -> ExplicitFairness:
    """Build explicit system fairness from serializable constraint descs.

    Each desc is ``{"kind": "buchi_state"|"negative_state"|"streett",
    "src": {latch: [values]}, ...}`` with Streett descs carrying
    ``"e_src"``/``"f_src"``; the same descs bind to the symbolic
    :class:`~repro.automata.fairness.FairnessSpec` in the fuzz harness.
    """
    buchi = []
    streett = []
    for desc in descs:
        kind = desc["kind"]
        if kind == "buchi_state":
            members = kripke.pred_states(desc["src"])
            buchi.append(ExplicitFairness.state_buchi(members.__contains__))
        elif kind == "negative_state":
            members = kripke.pred_states(desc["src"])
            buchi.append(ExplicitFairness.negative_state(members.__contains__))
        elif kind == "streett":
            e_members = kripke.pred_states(desc["e_src"])
            f_members = kripke.pred_states(desc["f_src"])
            streett.append(
                (
                    ExplicitFairness.state_buchi(e_members.__contains__),
                    ExplicitFairness.state_buchi(f_members.__contains__),
                )
            )
        else:
            raise ValueError(f"unknown fairness desc kind {kind!r}")
    return ExplicitFairness(buchi=buchi, streett=streett)
