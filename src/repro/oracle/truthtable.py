"""Bitmask truth tables: the reference model for every BDD operator.

A :class:`TruthTable` over ``n`` variables stores the function as an
integer bitmask of its ``2**n`` outputs — assignment ``a`` (variable
``j`` takes bit ``j`` of ``a``) maps to bit ``a`` of the mask.  Every
operator the kernel exposes has an obvious one-liner here, so the fuzz
harness can grow random operation DAGs and check each BDD node against
its mask exhaustively.  Only useful for small ``n`` (the fuzzer uses
4-6 variables); everything is O(2^n) by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set


@dataclass(frozen=True)
class TruthTable:
    """A boolean function over variables ``0 .. n-1`` as an output bitmask."""

    n: int
    mask: int

    def __post_init__(self) -> None:
        full = (1 << (1 << self.n)) - 1
        if not 0 <= self.mask <= full:
            raise ValueError(f"mask out of range for {self.n} variables")

    # -- constructors ----------------------------------------------------

    @classmethod
    def false(cls, n: int) -> "TruthTable":
        return cls(n, 0)

    @classmethod
    def true(cls, n: int) -> "TruthTable":
        return cls(n, (1 << (1 << n)) - 1)

    @classmethod
    def var(cls, n: int, j: int) -> "TruthTable":
        if not 0 <= j < n:
            raise ValueError(f"variable {j} out of range")
        mask = 0
        for a in range(1 << n):
            if (a >> j) & 1:
                mask |= 1 << a
        return cls(n, mask)

    # -- evaluation --------------------------------------------------------

    def eval(self, assignment: int) -> bool:
        """Value under assignment ``a`` (variable j = bit j of ``a``)."""
        return bool((self.mask >> assignment) & 1)

    def eval_dict(self, assignment: Dict[int, bool]) -> bool:
        a = 0
        for j, val in assignment.items():
            if val:
                a |= 1 << j
        return self.eval(a)

    @property
    def full(self) -> int:
        return (1 << (1 << self.n)) - 1

    def count(self) -> int:
        """Number of satisfying assignments over all ``n`` variables."""
        return bin(self.mask).count("1")

    def support(self) -> Set[int]:
        """Variables the function actually depends on."""
        out = set()
        for j in range(self.n):
            if self.cofactor({j: False}).mask != self.cofactor({j: True}).mask:
                out.add(j)
        return out

    # -- boolean connectives ---------------------------------------------

    def _check(self, other: "TruthTable") -> None:
        if other.n != self.n:
            raise ValueError("mixed variable counts")

    def invert(self) -> "TruthTable":
        return TruthTable(self.n, self.mask ^ self.full)

    def __invert__(self) -> "TruthTable":
        return self.invert()

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n, self.mask & other.mask)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n, self.mask | other.mask)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.n, self.mask ^ other.mask)

    def diff(self, other: "TruthTable") -> "TruthTable":
        return self & ~other

    def implies(self, other: "TruthTable") -> "TruthTable":
        return ~self | other

    def iff(self, other: "TruthTable") -> "TruthTable":
        return ~(self ^ other)

    def ite(self, then: "TruthTable", else_: "TruthTable") -> "TruthTable":
        return (self & then) | (~self & else_)

    # -- structural operators ----------------------------------------------

    def cofactor(self, partial: Dict[int, bool]) -> "TruthTable":
        """Substitute constants for some variables (kernel ``restrict``)."""
        mask = 0
        for a in range(1 << self.n):
            b = a
            for j, val in partial.items():
                b = (b | (1 << j)) if val else (b & ~(1 << j))
            if self.eval(b):
                mask |= 1 << a
        return TruthTable(self.n, mask)

    def exist(self, variables: Iterable[int]) -> "TruthTable":
        out = self
        for j in set(variables):
            out = out.cofactor({j: False}) | out.cofactor({j: True})
        return out

    def forall(self, variables: Iterable[int]) -> "TruthTable":
        out = self
        for j in set(variables):
            out = out.cofactor({j: False}) & out.cofactor({j: True})
        return out

    def and_exists(self, other: "TruthTable", variables: Iterable[int]) -> "TruthTable":
        return (self & other).exist(variables)

    def compose(self, j: int, g: "TruthTable") -> "TruthTable":
        """Substitute ``g`` for variable ``j`` (Shannon expansion)."""
        self._check(g)
        return g.ite(self.cofactor({j: True}), self.cofactor({j: False}))

    def rename(self, mapping: Dict[int, int]) -> "TruthTable":
        """Permute variables (``mapping`` old index -> new index)."""
        mask = 0
        for a in range(1 << self.n):
            b = 0
            for j in range(self.n):
                if (a >> mapping.get(j, j)) & 1:
                    b |= 1 << j
            if self.eval(b):
                mask |= 1 << a
        return TruthTable(self.n, mask)
