"""Explicit-graph SCC decomposition and fair-cycle detection.

The reference counterpart of :mod:`repro.lc.faircycle`.  Fairness is a
list of Büchi edge predicates plus Streett (e, f) pairs, evaluated on
explicit ``(src, dst)`` edges.  A fair SCC is found exactly the way the
symbolic engine's ``_check_scc`` decides it:

* every Büchi predicate must be witnessed by an internal edge of the SCC
  (single-state SCCs need a self-loop),
* for every Streett pair, either no e-edge occurs inside the SCC, or
  some f-edge does; if e-edges occur without any f-edge, the e-edges are
  deleted and the remainder re-decomposed recursively.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Sequence,
    Set,
    Tuple,
)

Node = Hashable
Edge = Tuple[Node, Node]
EdgePred = Callable[[Node, Node], bool]


class ExplicitFairness:
    """Fairness constraints as predicates over explicit edges.

    ``buchi`` — each predicate must hold on infinitely many edges of a
    fair path (mirrors ``NormalizedFairness.buchi`` edge BDDs).
    ``streett`` — (e, f) pairs: if e-edges recur, f-edges must recur
    (mirrors ``NormalizedFairness.streett``).
    """

    def __init__(
        self,
        buchi: Sequence[EdgePred] = (),
        streett: Sequence[Tuple[EdgePred, EdgePred]] = (),
    ):
        self.buchi: List[EdgePred] = list(buchi)
        self.streett: List[Tuple[EdgePred, EdgePred]] = list(streett)

    @property
    def trivial(self) -> bool:
        return not self.buchi and not self.streett

    @staticmethod
    def state_buchi(member: Callable[[Node], bool]) -> EdgePred:
        """A Büchi state set S, read as "edge leaving an S-state"."""
        return lambda u, v: member(u)

    @staticmethod
    def negative_state(member: Callable[[Node], bool]) -> EdgePred:
        """A negative state set S: fair paths leave S infinitely often."""
        return lambda u, v: not member(u)


def sccs(
    nodes: Iterable[Node], succ: Callable[[Node], Iterable[Node]]
) -> List[Set[Node]]:
    """Strongly connected components (iterative Tarjan).

    ``succ`` must stay within ``nodes``.  Returned in reverse
    topological order; includes trivial single-node components.
    """
    nodes = list(nodes)
    node_set = set(nodes)
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    stack: List[Node] = []
    out: List[Set[Node]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # Each frame: (node, iterator over successors).
        work: List[Tuple[Node, Iterable[Node]]] = [
            (root, iter([s for s in succ(root) if s in node_set]))
        ]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for child in it:
                if child not in index:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append(
                        (child, iter([s for s in succ(child) if s in node_set]))
                    )
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp: Set[Node] = set()
                while True:
                    w = stack.pop()
                    on_stack.remove(w)
                    comp.add(w)
                    if w == node:
                        break
                out.append(comp)
    return out


def _internal_edges(comp: Set[Node], edges: Set[Edge]) -> Set[Edge]:
    return {(u, v) for (u, v) in edges if u in comp and v in comp}


def _scc_is_fair(
    comp: Set[Node], edges: Set[Edge], fairness: ExplicitFairness
) -> bool:
    """Mirror of ``faircycle._check_scc`` on one candidate component."""
    internal = _internal_edges(comp, edges)
    if not internal:
        return False  # single state without a self-loop
    for pred in fairness.buchi:
        if not any(pred(u, v) for (u, v) in internal):
            return False
    removed: Set[Edge] = set()
    for e_pred, f_pred in fairness.streett:
        e_edges = {(u, v) for (u, v) in internal if e_pred(u, v)}
        if e_edges and not any(f_pred(u, v) for (u, v) in internal):
            removed |= e_edges
    if not removed:
        return True
    # Delete the offending e-edges and re-decompose what remains.  The
    # component may stay strongly connected; recursion still terminates
    # because each level strictly removes edges.
    remaining = internal - removed
    succ: Dict[Node, List[Node]] = {n: [] for n in comp}
    for u, v in remaining:
        succ[u].append(v)
    for sub in sccs(sorted(comp, key=repr), lambda n: succ[n]):
        if _scc_is_fair(sub, remaining, fairness):
            return True
    return False


def fair_sccs(
    nodes: Iterable[Node],
    edges: Set[Edge],
    fairness: ExplicitFairness,
) -> List[Set[Node]]:
    """All maximal SCCs (within ``nodes``) containing a fair cycle."""
    node_set = set(nodes)
    internal = {(u, v) for (u, v) in edges if u in node_set and v in node_set}
    succ: Dict[Node, List[Node]] = {n: [] for n in node_set}
    for u, v in internal:
        succ[u].append(v)
    out = []
    for comp in sccs(sorted(node_set, key=repr), lambda n: succ[n]):
        if _scc_is_fair(comp, internal, fairness):
            out.append(comp)
    return out


def backward_closure(
    targets: Set[Node], edges: Set[Edge], within: Set[Node]
) -> Set[Node]:
    """States in ``within`` that can reach ``targets`` via ``within``."""
    pred: Dict[Node, List[Node]] = {n: [] for n in within}
    for u, v in edges:
        if u in within and v in within:
            pred[v].append(u)
    reached = set(t for t in targets if t in within)
    frontier = list(reached)
    while frontier:
        node = frontier.pop()
        for p in pred[node]:
            if p not in reached:
                reached.add(p)
                frontier.append(p)
    return reached


def fair_path_states(
    region: Set[Node],
    edges: Set[Edge],
    fairness: ExplicitFairness,
) -> Set[Node]:
    """States in ``region`` with an infinite fair path staying in ``region``.

    The explicit counterpart of ``faircycle.all_fair_states``: find the
    fair SCCs of the region-restricted graph, then take the backward
    closure within the region.  With trivial fairness this degenerates
    to "can reach a cycle", matching EG over a possibly partial
    transition relation.
    """
    fair_cores: Set[Node] = set()
    for comp in fair_sccs(region, edges, fairness):
        fair_cores |= comp
    if not fair_cores:
        return set()
    return backward_closure(fair_cores, edges, region)
